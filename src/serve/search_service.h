#ifndef ORX_SERVE_SEARCH_SERVICE_H_
#define ORX_SERVE_SEARCH_SERVICE_H_

#include <array>
#include <chrono>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/searcher.h"
#include "serve/serve_metrics.h"
#include "serve/snapshot.h"
#include "text/query.h"

namespace orx::serve {

/// One query as submitted to the service.
struct ServeRequest {
  text::QueryVector query;
  /// Per-request option override; unset = the snapshot's defaults. The
  /// numeric option fields participate in the result-cache key, so two
  /// requests only share work when their options agree.
  std::optional<core::SearchOptions> options;
  /// End-to-end budget in seconds, measured from Submit() — queue time
  /// counts against it. 0 = the service default; a negative value
  /// disables the deadline for this request.
  double deadline_seconds = 0.0;
  /// Per-request tier hint: anything other than kAuto overrides the
  /// effective options' tier (whether they came from `options` or the
  /// snapshot defaults). kAuto defers to the options and, when
  /// Options::enable_tier_policy is set, to the adaptive policy.
  core::SearchTier tier = core::SearchTier::kAuto;
};

/// What a fulfilled request carries.
struct ServeResponse {
  core::SearchResult result;
  /// Served from a completed result-cache entry (no execution).
  bool cache_hit = false;
  /// Waited on an identical in-flight execution (single flight).
  bool coalesced = false;
  /// Version of the snapshot the result was computed against.
  uint64_t snapshot_version = 0;
  /// Seconds the leader execution spent queued behind the pool (0 for
  /// cache hits and coalesced waiters). For a batched execution this
  /// includes the collection-window wait.
  double queue_seconds = 0.0;
  /// Submit() -> fulfillment, seconds.
  double total_seconds = 0.0;
  /// Lanes in the block power iteration this result was computed in:
  /// 0 = not executed via the batch scheduler (cache hit, coalesced
  /// waiter, or batching off), >= 1 = ran as one of that many lanes.
  size_t batch_lanes = 0;
};

/// A multi-threaded embedded query service over core::Searcher.
///
/// Requests run on a fixed common::ThreadPool behind a *bounded* admission
/// count: when max_pending executions are already admitted and unfinished,
/// Submit() fails fast with kUnavailable instead of queueing unboundedly —
/// under overload the caller sheds load instead of building an invisible
/// latency backlog. Cache hits and coalesced requests bypass admission
/// (they consume no execution slot).
///
/// Identical concurrent queries are collapsed to a single execution
/// ("single flight"): the first request becomes the leader, later ones
/// attach as waiters and are fulfilled from the leader's result. Completed
/// successful results additionally populate an LRU result cache keyed by
/// the normalized query terms/weights, the numeric search options, and the
/// snapshot version, so repeated queries are served without touching the
/// engine at all.
///
/// The dataset is swapped atomically: each request pins the
/// shared_ptr<const ServeSnapshot> that was current at submission and uses
/// it for its whole lifetime, so SwapSnapshot() never races with queries
/// in flight. A swap bumps the snapshot version; cached results are kept
/// for the Options::result_cache_versions most recent versions (keys
/// embed the version they were computed against) and only entries that
/// slide out of that window are evicted, so a steady read workload keeps
/// its hit rate across hot swaps.
///
/// Per-request deadlines are enforced cooperatively: the service installs
/// a cancellation hook on ObjectRankOptions that trips once the deadline
/// passes, the power iteration stops at the next iteration boundary, and
/// the request completes with kDeadlineExceeded (partial scores are
/// discarded). Requests still queued when their deadline expires fail
/// without executing.
///
/// With Options::max_batch_size > 1 the service additionally runs a
/// dynamic micro-batch scheduler: admitted cache-miss executions whose
/// snapshot version, rates fingerprint, and numeric options agree collect
/// in a bounded window (flushed when full or after max_batch_delay_ms)
/// and run as one block power iteration — the graph is streamed once for
/// all lanes, each lane keeps its own deadline, flight, and result-cache
/// entry, and a lane whose deadline trips retires without aborting the
/// batch. See docs/batching.md.
class SearchService {
 public:
  struct Options {
    /// Worker threads; 0 = one per hardware thread.
    size_t num_threads = 0;
    /// Admission bound: maximum executions admitted but not yet finished
    /// (running + queued). Beyond it Submit() returns kUnavailable.
    size_t max_pending = 64;
    /// Completed-result LRU capacity in entries; 0 disables result
    /// caching (single-flight coalescing is controlled separately).
    size_t result_cache_entries = 512;
    /// How many of the most recent snapshot versions keep their cached
    /// results across SwapSnapshot(). 1 = a swap drops the whole cache
    /// (every hit is computed against the current snapshot); N > 1 =
    /// entries from the previous N-1 versions may still be served — the
    /// response reports the snapshot_version the result was computed
    /// against, and lookups prefer the newest version's entry.
    size_t result_cache_versions = 2;
    /// Collapse identical concurrent queries into one execution.
    bool single_flight = true;
    /// Deadline applied to requests that don't carry their own;
    /// 0 = no default deadline.
    double default_deadline_seconds = 0.0;
    /// Dynamic micro-batching (docs/batching.md): cache-miss executions
    /// whose snapshot version, transfer-rates fingerprint, and numeric
    /// option fingerprint all agree collect in a bounded window and run
    /// as one block power iteration (core::ObjectRankEngine::ComputeBatch)
    /// — the graph is streamed once for all lanes. <= 1 disables
    /// batching (every execution runs alone, the pre-batching behavior).
    size_t max_batch_size = 1;
    /// How long an open batch window waits for more lanes before it
    /// flushes, milliseconds. A window also flushes the moment it reaches
    /// max_batch_size, so lightly loaded services pay at most this much
    /// added latency and saturated ones pay none.
    double max_batch_delay_ms = 2.0;
    /// Adaptive serve-time tier policy (docs/approx_tier.md). When on,
    /// every request whose tier is still kAuto after the per-request hint
    /// is assigned one from its deadline headroom and the instantaneous
    /// admission load:
    ///   headroom <  tier_approx_deadline_seconds          -> kCached
    ///   headroom <  tier_exact_deadline_seconds, or
    ///     pending/max_pending >= tier_load_high            -> kApproximate
    ///   otherwise                                          -> kAuto
    /// (kAuto's execution path *is* the exact tier, fronted by the
    /// certified rank-cache fast path). Requests without a deadline have
    /// infinite headroom — only load can demote them.
    bool enable_tier_policy = false;
    /// Headroom at or above which the policy keeps the exact path.
    double tier_exact_deadline_seconds = 0.25;
    /// Headroom below which even the push kernel is a gamble: prefer the
    /// cache and accept the exact fallback tripping the deadline.
    double tier_approx_deadline_seconds = 0.02;
    /// pending/max_pending fraction at which the policy sheds exact work
    /// onto the approximate tier.
    double tier_load_high = 0.75;
  };

  /// `snapshot` must be Complete(). Worker threads start immediately.
  SearchService(std::shared_ptr<const ServeSnapshot> snapshot,
                Options options);

  /// Drains in-flight requests, then joins the workers.
  ~SearchService();

  SearchService(const SearchService&) = delete;
  SearchService& operator=(const SearchService&) = delete;

  /// Submits a request. The returned future is fulfilled with the
  /// response, or with kUnavailable (admission overflow, already set when
  /// Submit returns), kDeadlineExceeded, or the underlying search error.
  /// Never blocks on the queue.
  std::future<StatusOr<ServeResponse>> Submit(ServeRequest request);

  /// Completion hook for SubmitAsync: invoked exactly once with the same
  /// response Submit()'s future would carry.
  using Callback = std::function<void(StatusOr<ServeResponse>)>;

  /// Callback-style submission for event-driven callers (the network
  /// front end): no future to park a thread on. `done` runs exactly once
  /// — synchronously on the calling thread for requests resolved at
  /// Submit time (cache hits, admission rejections), otherwise on the
  /// pool thread that completes the execution. It runs outside the
  /// service mutex, so it may re-enter the service, but it occupies its
  /// worker while it runs — keep it short (hand heavy work elsewhere).
  void SubmitAsync(ServeRequest request, Callback done);

  /// Blocking convenience: Submit(request).get().
  StatusOr<ServeResponse> Search(ServeRequest request);

  /// Atomically replaces the dataset snapshot for *future* requests;
  /// requests in flight finish against the snapshot they admitted with.
  /// Bumps the snapshot version and evicts only the cached results that
  /// fell out of the Options::result_cache_versions retention window.
  /// `snapshot` must be Complete().
  void SwapSnapshot(std::shared_ptr<const ServeSnapshot> snapshot);

  /// The snapshot new requests would currently use, and its version.
  std::shared_ptr<const ServeSnapshot> snapshot() const;
  uint64_t snapshot_version() const;

  /// Point-in-time counters and latency percentiles, read as one
  /// consistent cut: `completed` is loaded first with acquire ordering
  /// and every completion publishes with release ordering *after* its
  /// action counter (cache hit / coalesced / executed), so a snapshot
  /// never shows a completion whose action counter is missing —
  /// `completed <= cache_hits + coalesced + executed` and
  /// `completed <= submitted` hold in every snapshot, even mid-burst.
  /// Rates (qps, occupancy mean) are derived from this one cut.
  ServeMetrics Snapshot() const;

  size_t num_threads() const { return pool_->num_threads(); }

  /// The intra-query thread budget of one request on a service running
  /// `pool_workers` concurrent executions: `requested` clamped to
  /// [1, hardware_threads / pool_workers]. Submit() applies this to every
  /// request (before the cache key is computed, so oversized requests
  /// still coalesce), guaranteeing requests x intra-query threads never
  /// oversubscribes the host — see "Threading contract" in
  /// docs/serving.md.
  static int CapIntraQueryThreads(int requested, size_t pool_workers);

 private:
  using Clock = std::chrono::steady_clock;
  using ResponseOr = StatusOr<ServeResponse>;

  /// How one request's outcome is delivered: a promise (Submit) or a
  /// callback (SubmitAsync). Exactly one delivery happens per request.
  struct Completion {
    std::optional<std::promise<ResponseOr>> promise;
    Callback callback;

    void Deliver(ResponseOr response) {
      if (callback) {
        callback(std::move(response));
      } else {
        promise->set_value(std::move(response));
      }
    }
  };
  using CompletionPtr = std::shared_ptr<Completion>;

  /// A coalesced request waiting on an in-flight leader.
  struct Waiter {
    CompletionPtr completion;
    Clock::time_point submit_time;
  };

  /// Single-flight record for one key while its leader executes.
  struct Flight {
    std::vector<Waiter> waiters;
  };

  /// Completed result-cache entry (LRU list node).
  struct CachedResult {
    std::string key;
    uint64_t snapshot_version = 0;
    core::SearchResult result;
  };

  /// One admitted cache-miss execution waiting in a batch window. Keeps
  /// everything Execute() would have owned: its own flight key (so
  /// single-flight waiters resolve per lane), promise, and deadline.
  struct BatchLane {
    std::string key;
    text::QueryVector query;
    std::function<bool()> caller_cancel;
    CompletionPtr completion;
    Clock::time_point submit_time;
    Clock::time_point deadline;
    bool has_deadline = false;
  };

  /// An open collection window: lanes with the same batch key gathering
  /// until the window fills or its delay expires. Every field is guarded
  /// by the *service* mu_ (not expressible as ORX_GUARDED_BY, which only
  /// names capabilities reachable from the annotated object — the
  /// runtime validator covers this edge instead); the leader task sleeps
  /// on cv under mu_ until `closed`.
  struct PendingBatch {
    std::shared_ptr<const ServeSnapshot> snapshot;
    uint64_t version = 0;
    /// Shared numeric options (identical across lanes by construction of
    /// the batch key); the cancel hook is per lane, not in here.
    core::SearchOptions options;
    Clock::time_point created;
    std::vector<BatchLane> lanes;
    bool closed = false;
    CondVar cv;
  };

  /// The version-independent part of the cache key: numeric options
  /// fingerprint + term-sorted (term, weight) pairs. The canonical key is
  /// "v<version>|" + suffix; the prefix is kept separable so the cache
  /// lookup can probe the retained older versions too (see
  /// Options::result_cache_versions).
  static std::string RequestKeySuffix(const text::QueryVector& query,
                                      const core::SearchOptions& options);

  /// Probes the result cache for `suffix` under every retained snapshot
  /// version, newest first (caller holds mu_). On a hit promotes the
  /// entry, fills `hit`, and returns true.
  bool LookupCacheLocked(const std::string& suffix, ServeResponse& hit)
      ORX_REQUIRES(mu_);

  /// The batch-compatibility fingerprint: RequestKey minus the query
  /// terms, plus the snapshot's transfer-rates fingerprint. Two
  /// executions may share a block power iteration iff their batch keys
  /// are equal.
  static std::string BatchKey(const core::SearchOptions& options,
                              uint64_t version, uint64_t rates_fingerprint);

  /// Shared body of Submit/SubmitAsync: admission, coalescing, cache
  /// lookup, and dispatch for one request whose delivery target is
  /// already packaged in `completion`.
  void SubmitInternal(ServeRequest request, CompletionPtr completion);

  void Execute(std::string key, ServeRequest request,
               std::shared_ptr<const ServeSnapshot> snapshot,
               uint64_t version, core::SearchOptions options,
               CompletionPtr completion, Clock::time_point submit_time,
               Clock::time_point deadline, bool has_deadline);

  /// Leader task of one batch window: waits (on cv, up to
  /// max_batch_delay_ms) for the window to fill or expire, removes it
  /// from open_batches_, and runs the collected lanes.
  void ExecuteBatch(std::shared_ptr<PendingBatch> batch,
                    std::string batch_key);

  /// Runs the lanes of a flushed window through one
  /// core::Searcher::SearchBatch call and completes each lane.
  void RunBatch(const std::shared_ptr<PendingBatch>& batch,
                std::vector<BatchLane> lanes);

  /// Completes one admitted execution: error counters, slot release,
  /// single-flight waiter resolution, result caching, and fulfillment.
  /// Shared tail of Execute() and RunBatch().
  void FinishExecution(const std::string& key, uint64_t version,
                       const StatusOr<core::SearchResult>& result,
                       const CompletionPtr& completion,
                       Clock::time_point submit_time, double queue_seconds,
                       size_t batch_lanes);

  /// Delivers a response and records the completion metrics.
  void Fulfill(const CompletionPtr& completion, ResponseOr response,
               Clock::time_point submit_time);

  /// Inserts a completed result into the LRU (caller holds mu_).
  void CacheResultLocked(const std::string& key, uint64_t version,
                         const core::SearchResult& result) ORX_REQUIRES(mu_);

  const Options options_;
  const Clock::time_point start_time_;

  mutable Mutex mu_{"search_service.mu"};
  std::shared_ptr<const ServeSnapshot> snapshot_ ORX_GUARDED_BY(mu_);
  uint64_t version_ ORX_GUARDED_BY(mu_) = 1;
  size_t pending_ ORX_GUARDED_BY(mu_) = 0;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_
      ORX_GUARDED_BY(mu_);
  /// Open batch windows by batch key. An entry is always joinable: it is
  /// erased the moment it closes (fills, expires, or service shutdown),
  /// so a late arrival opens a fresh window instead of racing a flush.
  std::unordered_map<std::string, std::shared_ptr<PendingBatch>>
      open_batches_ ORX_GUARDED_BY(mu_);
  std::list<CachedResult> lru_ ORX_GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<std::string, std::list<CachedResult>::iterator> cached_
      ORX_GUARDED_BY(mu_);

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_queries_{0};
  std::atomic<uint64_t> batch_occupancy_max_{0};
  std::atomic<uint64_t> tier_exact_{0};
  std::atomic<uint64_t> tier_approximate_{0};
  std::atomic<uint64_t> tier_cached_{0};
  std::atomic<uint64_t> escalations_{0};
  /// Indexed by core::CacheMissReason (kNone unused but keeps the
  /// indexing direct).
  std::array<std::atomic<uint64_t>, 6> miss_reasons_{};
  LatencyHistogram latency_;
  /// Execution-stage latency per result tier: [0]=exact, [1]=approximate,
  /// [2]=cached.
  std::array<LatencyHistogram, 3> tier_latency_;

  /// Last member: destroyed (drained) first, so tasks never touch dead
  /// state.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace orx::serve

#endif  // ORX_SERVE_SEARCH_SERVICE_H_
