#include "reformulate/reformulator.h"

#include <algorithm>
#include <unordered_map>

#include "common/timer.h"

namespace orx::reform {
namespace {

// Combines per-object term-weight lists under the chosen monotone
// aggregate (Equation 14 generalized beyond summation).
std::vector<std::pair<std::string, double>> AggregateTermWeights(
    const std::vector<std::vector<std::pair<std::string, double>>>& per_object,
    AggregateKind kind) {
  if (kind == AggregateKind::kSum && per_object.size() == 1) {
    return per_object.front();
  }
  struct Acc {
    double sum = 0.0, mn = 0.0, mx = 0.0;
    size_t count = 0;
  };
  std::unordered_map<std::string, Acc> accs;
  for (const auto& object_weights : per_object) {
    for (const auto& [term, w] : object_weights) {
      Acc& a = accs[term];
      if (a.count == 0) {
        a.mn = a.mx = w;
      } else {
        a.mn = std::min(a.mn, w);
        a.mx = std::max(a.mx, w);
      }
      a.sum += w;
      ++a.count;
    }
  }
  std::vector<std::pair<std::string, double>> out;
  out.reserve(accs.size());
  const size_t objects = per_object.size();
  for (const auto& [term, a] : accs) {
    double value = 0.0;
    switch (kind) {
      case AggregateKind::kSum:
        value = a.sum;
        break;
      case AggregateKind::kMin:
        // A term absent from some object's subgraph has weight 0 there.
        value = a.count == objects ? a.mn : 0.0;
        break;
      case AggregateKind::kMax:
        value = a.mx;
        break;
      case AggregateKind::kAvg:
        value = a.sum / static_cast<double>(objects);
        break;
    }
    if (value > 0.0) out.emplace_back(term, value);
  }
  return out;
}

// Combines per-object edge-type flow vectors (Equation 15 generalized).
std::vector<double> AggregateFlows(
    const std::vector<std::vector<double>>& per_object, AggregateKind kind) {
  std::vector<double> out;
  if (per_object.empty()) return out;
  const size_t slots = per_object.front().size();
  out.assign(slots, 0.0);
  for (size_t s = 0; s < slots; ++s) {
    double sum = 0.0, mn = per_object.front()[s], mx = per_object.front()[s];
    for (const auto& flows : per_object) {
      sum += flows[s];
      mn = std::min(mn, flows[s]);
      mx = std::max(mx, flows[s]);
    }
    switch (kind) {
      case AggregateKind::kSum:
        out[s] = sum;
        break;
      case AggregateKind::kMin:
        out[s] = mn;
        break;
      case AggregateKind::kMax:
        out[s] = mx;
        break;
      case AggregateKind::kAvg:
        out[s] = sum / static_cast<double>(per_object.size());
        break;
    }
  }
  return out;
}

}  // namespace

StatusOr<ReformulationResult> Reformulator::Reformulate(
    const text::QueryVector& current_query,
    const graph::TransferRates& current_rates, const core::BaseSet& base,
    const std::vector<double>& scores,
    std::span<const graph::NodeId> feedback_objects,
    const ReformulationOptions& options) const {
  if (feedback_objects.empty()) {
    return InvalidArgumentError("no feedback objects given");
  }

  ReformulationResult result;
  result.query = current_query;
  result.rates = current_rates;

  // Stage 1: explain every feedback object (a user "vote" for object v is
  // a vote for its explaining subgraph, Section 5).
  std::vector<std::vector<std::pair<std::string, double>>> term_weights;
  std::vector<std::vector<double>> flow_vectors;
  const size_t num_slots = data_->schema().num_rate_slots();
  double total_iters = 0.0;
  for (graph::NodeId v : feedback_objects) {
    auto explanation = explainer_.Explain(v, base, scores, current_rates,
                                          options.damping, options.explain);
    if (!explanation.ok()) {
      if (explanation.status().code() == StatusCode::kNotFound) continue;
      return explanation.status();
    }
    result.explain_construction_seconds += explanation->construction_seconds;
    result.explain_adjustment_seconds += explanation->adjustment_seconds;
    total_iters += explanation->iterations;

    Timer reform_timer;
    term_weights.push_back(ExpansionTermWeights(
        explanation->subgraph, *corpus_, options.damping, options.content));
    flow_vectors.push_back(EdgeTypeFlows(explanation->subgraph, num_slots));
    result.reformulation_seconds += reform_timer.ElapsedSeconds();

    result.explanations.push_back(*std::move(explanation));
  }
  if (result.explanations.empty()) {
    // No feedback object is reachable from the base set: nothing to learn.
    return result;
  }
  result.avg_explain_iterations =
      total_iters / static_cast<double>(result.explanations.size());

  // Stage 2: aggregate across feedback objects and reformulate.
  Timer reform_timer;
  auto combined_terms = AggregateTermWeights(term_weights, options.aggregate);
  auto combined_flows = AggregateFlows(flow_vectors, options.aggregate);

  // Record the normalized top expansion terms for diagnostics.
  {
    auto sorted = combined_terms;
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    if (sorted.size() > static_cast<size_t>(options.content.top_terms)) {
      sorted.resize(static_cast<size_t>(options.content.top_terms));
    }
    if (!sorted.empty() && sorted.front().second > 0.0) {
      const double inv = 1.0 / sorted.front().second;
      for (auto& [term, w] : sorted) w *= inv;
    }
    result.top_expansion_terms = std::move(sorted);
  }

  result.query = ReformulateContent(current_query, std::move(combined_terms),
                                    options.content);
  result.rates =
      ReformulateStructure(data_->schema(), current_rates,
                           std::move(combined_flows), options.structure);
  result.reformulation_seconds += reform_timer.ElapsedSeconds();
  return result;
}

}  // namespace orx::reform
