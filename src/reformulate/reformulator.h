#ifndef ORX_REFORMULATE_REFORMULATOR_H_
#define ORX_REFORMULATE_REFORMULATOR_H_

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/base_set.h"
#include "explain/explainer.h"
#include "graph/transfer_rates.h"
#include "reformulate/content_reformulator.h"
#include "reformulate/structure_reformulator.h"
#include "text/corpus.h"
#include "text/query.h"

namespace orx::reform {

/// Monotone aggregation function combining evidence from multiple feedback
/// objects (Section 5.3; the paper uses summation in its experiments).
enum class AggregateKind { kSum, kMin, kMax, kAvg };

/// All reformulation knobs. The three survey settings of Section 6.1.1:
///   content-only:        structure.adjustment = 0,   content.expansion = 0.2
///   content & structure: structure.adjustment = 0.5, content.expansion = 0.2
///   structure-only:      structure.adjustment = 0.5, content.expansion = 0
struct ReformulationOptions {
  ContentOptions content;
  StructureOptions structure;
  explain::ExplainOptions explain;
  /// Damping factor d of the query whose results are being fed back
  /// (enters Equation 5 flows and the target term weight of Equation 11).
  double damping = 0.85;
  AggregateKind aggregate = AggregateKind::kSum;
};

/// Outcome of one reformulation round.
struct ReformulationResult {
  /// The reformulated query vector Q_{i+1} (Equation 12).
  text::QueryVector query;
  /// The reformulated authority transfer rates (Equation 13).
  graph::TransferRates rates;

  /// The expansion terms that were added/boosted, best first (after
  /// normalization, before C_e scaling); diagnostics for the examples.
  std::vector<std::pair<std::string, double>> top_expansion_terms;

  /// Explaining subgraphs of the feedback objects, in input order.
  std::vector<explain::Explanation> explanations;

  /// Stage timings summed over feedback objects (Figures 14-17 stages
  /// "Explaining Subgraph Creation", "Explaining ObjectRank2 Execution",
  /// "Query Reformulation").
  double explain_construction_seconds = 0.0;
  double explain_adjustment_seconds = 0.0;
  double reformulation_seconds = 0.0;

  /// Mean explaining-fixpoint iterations per feedback object (Table 3).
  double avg_explain_iterations = 0.0;
};

/// Turns user relevance feedback into a reformulated query: computes the
/// explaining subgraph of every feedback object, then applies the content-
/// and structure-based reformulations of Section 5 (either can be disabled
/// through its factor).
class Reformulator {
 public:
  Reformulator(const graph::DataGraph& data,
               const graph::AuthorityGraph& graph, const text::Corpus& corpus)
      : data_(&data), graph_(&graph), corpus_(&corpus),
        explainer_(data, graph) {}

  /// Reformulates `current_query`/`current_rates` given the feedback
  /// objects the user marked relevant. `base` and `scores` must come from
  /// the search being refined (they define the explaining flows).
  ///
  /// Feedback objects that no authority reaches (explainer returns
  /// kNotFound) are skipped; if every object is skipped the inputs are
  /// returned unchanged (with empty explanations) — feedback that cannot
  /// be explained cannot reshape the query.
  StatusOr<ReformulationResult> Reformulate(
      const text::QueryVector& current_query,
      const graph::TransferRates& current_rates, const core::BaseSet& base,
      const std::vector<double>& scores,
      std::span<const graph::NodeId> feedback_objects,
      const ReformulationOptions& options = {}) const;

 private:
  const graph::DataGraph* data_;
  const graph::AuthorityGraph* graph_;
  const text::Corpus* corpus_;
  explain::Explainer explainer_;
};

}  // namespace orx::reform

#endif  // ORX_REFORMULATE_REFORMULATOR_H_
