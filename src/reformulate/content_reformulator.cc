#include "reformulate/content_reformulator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace orx::reform {

std::vector<std::pair<std::string, double>> ExpansionTermWeights(
    const explain::ExplainingSubgraph& subgraph, const text::Corpus& corpus,
    double damping, const ContentOptions& options) {
  std::unordered_map<text::TermId, double> weights;
  for (explain::LocalId v = 0; v < subgraph.num_nodes(); ++v) {
    // A node's contribution is the authority it passes toward the target:
    // its adjusted out-flow inside G_v^Q (Equation 11). The target has no
    // out-flow in G_v^Q, so the paper substitutes d * (its in-flow).
    double flow;
    if (v == subgraph.target_local()) {
      flow = damping * subgraph.AdjustedInFlowSum(v);
    } else {
      flow = subgraph.AdjustedOutFlowSum(v);
    }
    if (flow <= 0.0) continue;

    const int dist = subgraph.DistanceToTarget(v);
    if (dist < 0) continue;  // defensive: unreachable nodes contribute 0
    const double decayed = std::pow(options.decay, dist) * flow;
    for (const text::DocTerm& dt : corpus.DocTerms(subgraph.GlobalId(v))) {
      weights[dt.term] += decayed;
    }
  }

  std::vector<std::pair<std::string, double>> out;
  out.reserve(weights.size());
  for (const auto& [term, w] : weights) {
    out.emplace_back(corpus.TermString(term), w);
  }
  return out;
}

std::vector<std::pair<std::string, double>> SumTermWeights(
    const std::vector<std::vector<std::pair<std::string, double>>>&
        per_object) {
  std::unordered_map<std::string, double> sums;
  for (const auto& object_weights : per_object) {
    for (const auto& [term, w] : object_weights) sums[term] += w;
  }
  std::vector<std::pair<std::string, double>> out(sums.begin(), sums.end());
  return out;
}

text::QueryVector ReformulateContent(
    const text::QueryVector& current,
    std::vector<std::pair<std::string, double>> term_weights,
    const ContentOptions& options) {
  if (options.expansion <= 0.0 || term_weights.empty()) return current;

  // Top-Z selection; ties break lexicographically for determinism.
  std::sort(term_weights.begin(), term_weights.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (term_weights.size() > static_cast<size_t>(options.top_terms)) {
    term_weights.resize(static_cast<size_t>(options.top_terms));
  }

  // Normalization (Section 5.1): scale so the heaviest expansion term
  // weighs a_w = the average weight of the current query vector.
  const double avg = current.AverageWeight();
  const double max_w = term_weights.front().second;
  if (max_w > 0.0 && avg > 0.0) {
    const double factor = avg / max_w;
    for (auto& [term, w] : term_weights) w *= factor;
  }

  // Equation 12: Q_{i+1} = Q_i + C_e * sum_t w'(t) * t-hat. Existing terms
  // get their weight bumped; new terms are appended.
  text::QueryVector next = current;
  for (const auto& [term, w] : term_weights) {
    next.AddWeight(term, options.expansion * w);
  }
  return next;
}

}  // namespace orx::reform
