#ifndef ORX_REFORMULATE_STRUCTURE_REFORMULATOR_H_
#define ORX_REFORMULATE_STRUCTURE_REFORMULATOR_H_

#include <vector>

#include "explain/explaining_subgraph.h"
#include "graph/schema_graph.h"
#include "graph/transfer_rates.h"

namespace orx::reform {

/// Knobs of the structure-based reformulation (Section 5.2).
struct StructureOptions {
  /// Authority-transfer-rate adjustment factor C_f of Equation 13
  /// (typically 0.5; Figure 11 sweeps {0.1, 0.3, 0.5, 0.7, 0.9}).
  /// 0 disables structure reformulation entirely.
  double adjustment = 0.5;
};

/// The per-edge-type-direction flow aggregate F(e_G) of Equation 13 for
/// one feedback object: the sum of adjusted (explaining) flows over
/// subgraph edges of each rate slot. The result vector is indexed by
/// RateIndex(etype, dir) and has `num_slots` entries.
std::vector<double> EdgeTypeFlows(const explain::ExplainingSubgraph& subgraph,
                                  size_t num_slots);

/// Element-wise sum of per-feedback-object flow vectors (Equation 15).
std::vector<double> SumEdgeTypeFlows(
    const std::vector<std::vector<double>>& per_object);

/// Applies Section 5.2 end to end and returns the reformulated rates:
///
///  1. normalize F by its maximum (so max F-hat == 1);
///  2. alpha'(s) = (1 + C_f * F-hat(s)) * alpha(s)     (Equation 13);
///  3. normalize alpha' by its maximum (so max rate == 1);
///  4. divide every rate by the largest per-node-type outgoing sum if it
///     exceeds 1 (ObjectRank2 convergence requires per-type sums <= 1).
///
/// Steps 3-4 are global rescalings — this exact pipeline reproduces the
/// worked Example 2: rates [0.7, 0, 0.2, 0.2, 0.3, 0.3, 0.3, 0.1] become
/// [0.67, 0, 0.24, 0.16, 0.24, 0.24, 0.24, 0.08].
///
/// With options.adjustment == 0 or an all-zero F, `current` is returned
/// unchanged (a no-signal feedback round must not perturb the rates).
graph::TransferRates ReformulateStructure(const graph::SchemaGraph& schema,
                                          const graph::TransferRates& current,
                                          std::vector<double> edge_type_flows,
                                          const StructureOptions& options);

}  // namespace orx::reform

#endif  // ORX_REFORMULATE_STRUCTURE_REFORMULATOR_H_
