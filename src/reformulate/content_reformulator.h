#ifndef ORX_REFORMULATE_CONTENT_REFORMULATOR_H_
#define ORX_REFORMULATE_CONTENT_REFORMULATOR_H_

#include <string>
#include <utility>
#include <vector>

#include "explain/explaining_subgraph.h"
#include "text/corpus.h"
#include "text/query.h"

namespace orx::reform {

/// Knobs of the content-based reformulation (Section 5.1).
struct ContentOptions {
  /// Decay factor C_d of Equation 11 (weight falls off with distance from
  /// the feedback object); the paper sets 0.5, after XRANK.
  double decay = 0.5;

  /// Expansion factor C_e of Equation 12, scaling new term weights (and
  /// weight increments of existing terms). 0 disables content
  /// reformulation entirely.
  double expansion = 0.5;

  /// Number of top-weighted expansion terms Z added to the query.
  int top_terms = 5;
};

/// Raw expansion-term weights w'(t) of Equation 11 for one feedback
/// object's explaining subgraph: each term contained in a subgraph node
/// v_k accumulates (C_d)^{D(v_k)} * (adjusted out-flow of v_k); for the
/// target itself the "out-flow" is d * (adjusted in-flow), since the
/// target's outgoing flow is not part of G_v^Q. Stopwords never appear
/// (the corpus drops them at indexing time).
///
/// Returns (term string, weight) pairs, unordered, one entry per distinct
/// term.
std::vector<std::pair<std::string, double>> ExpansionTermWeights(
    const explain::ExplainingSubgraph& subgraph, const text::Corpus& corpus,
    double damping, const ContentOptions& options);

/// Aggregates per-feedback-object weight maps with summation
/// (Equation 14); min/max/avg variants live in reformulator.h's
/// AggregateKind.
std::vector<std::pair<std::string, double>> SumTermWeights(
    const std::vector<std::vector<std::pair<std::string, double>>>& per_object);

/// Applies Section 5.1 end to end: selects the top-Z terms by weight,
/// normalizes them against the current query vector (the three-step
/// procedure: scale so the heaviest expansion term weighs as much as the
/// average current term), and produces the reformulated query vector of
/// Equation 12. With options.expansion == 0 the query is returned
/// unchanged.
text::QueryVector ReformulateContent(
    const text::QueryVector& current,
    std::vector<std::pair<std::string, double>> term_weights,
    const ContentOptions& options);

}  // namespace orx::reform

#endif  // ORX_REFORMULATE_CONTENT_REFORMULATOR_H_
