#include "reformulate/structure_reformulator.h"

#include <algorithm>

#include "common/check.h"

namespace orx::reform {

std::vector<double> EdgeTypeFlows(const explain::ExplainingSubgraph& subgraph,
                                  size_t num_slots) {
  std::vector<double> flows(num_slots, 0.0);
  for (const explain::ExplainEdge& e : subgraph.edges()) {
    ORX_DCHECK(e.rate_index < num_slots);
    flows[e.rate_index] += e.adjusted_flow;
  }
  return flows;
}

std::vector<double> SumEdgeTypeFlows(
    const std::vector<std::vector<double>>& per_object) {
  std::vector<double> sum;
  for (const auto& flows : per_object) {
    if (sum.empty()) sum.assign(flows.size(), 0.0);
    ORX_CHECK(sum.size() == flows.size());
    for (size_t i = 0; i < flows.size(); ++i) sum[i] += flows[i];
  }
  return sum;
}

graph::TransferRates ReformulateStructure(const graph::SchemaGraph& schema,
                                          const graph::TransferRates& current,
                                          std::vector<double> edge_type_flows,
                                          const StructureOptions& options) {
  ORX_CHECK(edge_type_flows.size() == schema.num_rate_slots());
  if (options.adjustment <= 0.0) return current;

  // Step 1: F-hat = F / max(F). All-zero flows carry no signal.
  const double max_flow =
      *std::max_element(edge_type_flows.begin(), edge_type_flows.end());
  if (max_flow <= 0.0) return current;
  for (double& f : edge_type_flows) f /= max_flow;

  // Step 2 (Equation 13): boost each slot by its normalized flow share.
  graph::TransferRates next = current;
  for (uint32_t slot = 0; slot < next.num_slots(); ++slot) {
    next.set_slot(slot, (1.0 + options.adjustment * edge_type_flows[slot]) *
                            next.slot(slot));
  }

  // Step 3: rescale so the largest rate is 1.
  double max_rate = 0.0;
  for (uint32_t slot = 0; slot < next.num_slots(); ++slot) {
    max_rate = std::max(max_rate, next.slot(slot));
  }
  if (max_rate > 0.0) {
    for (uint32_t slot = 0; slot < next.num_slots(); ++slot) {
      next.set_slot(slot, next.slot(slot) / max_rate);
    }
  }

  // Step 4: rescale globally so every node type's outgoing sum is <= 1.
  double max_sum = 0.0;
  for (graph::TypeId t = 0; t < schema.num_node_types(); ++t) {
    max_sum = std::max(max_sum, next.OutgoingSum(schema, t));
  }
  if (max_sum > 1.0) {
    for (uint32_t slot = 0; slot < next.num_slots(); ++slot) {
      next.set_slot(slot, next.slot(slot) / max_sum);
    }
  }
  return next;
}

}  // namespace orx::reform
