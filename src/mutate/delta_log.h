#ifndef ORX_MUTATE_DELTA_LOG_H_
#define ORX_MUTATE_DELTA_LOG_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "graph/schema_graph.h"
#include "mutate/mutation.h"

namespace orx::mutate {

/// The bounded in-memory mutation queue between the write API and the
/// background SnapshotBuilder (the orrp-style writer/consumer split).
///
/// Writers Append() validated batches and receive a monotonically
/// increasing sequence number — the acknowledgment means *accepted and
/// durable in the log*, not yet visible to readers; visibility arrives
/// with the next snapshot publication that covers the sequence. When the
/// queue is at capacity Append fails fast with kUnavailable (the same
/// backpressure contract as SearchService admission) instead of blocking
/// the serving thread.
///
/// The consumer side (one SnapshotBuilder) blocks in Drain() until work
/// or Close(). All methods are thread-safe.
class DeltaLog {
 public:
  struct Options {
    /// Maximum queued batches before Append returns kUnavailable.
    size_t capacity = 1024;
  };

  /// One queued batch with its assigned sequence number.
  struct PendingBatch {
    uint64_t sequence = 0;
    MutationBatch batch;
  };

  /// Counters, sampled under the log's mutex (a consistent cut).
  struct Stats {
    /// Batches accepted into the log since construction.
    uint64_t appended = 0;
    /// Appends refused: kUnavailable (full) + kInvalidArgument (static
    /// validation) + appends after Close.
    uint64_t rejected = 0;
    /// Batches handed to the consumer via Drain.
    uint64_t drained = 0;
    /// Individual mutations across accepted batches.
    uint64_t mutations_appended = 0;
    /// The sequence the next accepted batch will get (1-based).
    uint64_t next_sequence = 1;
    /// Batches currently queued.
    size_t queued = 0;
  };

  /// The schema is used for static validation at Append time and must
  /// outlive the log.
  explicit DeltaLog(const graph::SchemaGraph& schema);
  DeltaLog(const graph::SchemaGraph& schema, Options options);

  DeltaLog(const DeltaLog&) = delete;
  DeltaLog& operator=(const DeltaLog&) = delete;

  /// Validates `batch` statically against the schema and queues it.
  /// Returns the assigned sequence number; kInvalidArgument on a static
  /// violation, kUnavailable when the log is full, kFailedPrecondition
  /// after Close().
  StatusOr<uint64_t> Append(MutationBatch batch);

  /// Blocks until at least one batch is queued or Close() was called,
  /// then removes and returns up to `max_batches` batches in sequence
  /// order. An empty result means the log is closed and fully drained —
  /// the consumer's termination signal.
  std::vector<PendingBatch> Drain(size_t max_batches);

  /// Rejects further appends and wakes any blocked Drain. Queued batches
  /// remain drainable. Idempotent.
  void Close();

  bool closed() const;
  Stats stats() const;

 private:
  const graph::SchemaGraph* schema_;
  const Options options_;

  mutable Mutex mu_{"delta_log.mu"};
  CondVar cv_;
  std::deque<PendingBatch> queue_ ORX_GUARDED_BY(mu_);
  uint64_t next_sequence_ ORX_GUARDED_BY(mu_) = 1;
  uint64_t appended_ ORX_GUARDED_BY(mu_) = 0;
  uint64_t rejected_ ORX_GUARDED_BY(mu_) = 0;
  uint64_t drained_ ORX_GUARDED_BY(mu_) = 0;
  uint64_t mutations_appended_ ORX_GUARDED_BY(mu_) = 0;
  bool closed_ ORX_GUARDED_BY(mu_) = false;
};

}  // namespace orx::mutate

#endif  // ORX_MUTATE_DELTA_LOG_H_
