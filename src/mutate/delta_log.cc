#include "mutate/delta_log.h"

#include <algorithm>
#include <utility>

namespace orx::mutate {

DeltaLog::DeltaLog(const graph::SchemaGraph& schema)
    : DeltaLog(schema, Options()) {}

DeltaLog::DeltaLog(const graph::SchemaGraph& schema, Options options)
    : schema_(&schema), options_(options) {}

StatusOr<uint64_t> DeltaLog::Append(MutationBatch batch) {
  Status valid = ValidateStatic(batch, *schema_);
  uint64_t sequence = 0;
  {
    MutexLock lock(mu_);
    if (!valid.ok()) {
      ++rejected_;
      return valid;
    }
    if (closed_) {
      ++rejected_;
      return FailedPreconditionError("delta log is closed");
    }
    if (queue_.size() >= options_.capacity) {
      ++rejected_;
      return UnavailableError("delta log full (" +
                              std::to_string(queue_.size()) +
                              " batches queued); retry later");
    }
    PendingBatch pending;
    pending.sequence = next_sequence_++;
    mutations_appended_ += batch.size();
    pending.batch = std::move(batch);
    queue_.push_back(std::move(pending));
    ++appended_;
    sequence = queue_.back().sequence;
  }
  // Notify after the scoped release: the consumer wakes straight into an
  // uncontended mutex.
  cv_.Signal();
  return sequence;
}

std::vector<DeltaLog::PendingBatch> DeltaLog::Drain(size_t max_batches) {
  MutexLock lock(mu_);
  while (!closed_ && queue_.empty()) cv_.Wait(mu_);
  std::vector<PendingBatch> out;
  const size_t take = std::min(max_batches, queue_.size());
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  drained_ += take;
  return out;
}

void DeltaLog::Close() {
  {
    MutexLock lock(mu_);
    closed_ = true;
  }
  cv_.SignalAll();
}

bool DeltaLog::closed() const {
  MutexLock lock(mu_);
  return closed_;
}

DeltaLog::Stats DeltaLog::stats() const {
  MutexLock lock(mu_);
  Stats stats;
  stats.appended = appended_;
  stats.rejected = rejected_;
  stats.drained = drained_;
  stats.mutations_appended = mutations_appended_;
  stats.next_sequence = next_sequence_;
  stats.queued = queue_.size();
  return stats;
}

}  // namespace orx::mutate
