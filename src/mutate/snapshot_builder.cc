#include "mutate/snapshot_builder.h"

#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "graph/authority_graph.h"

namespace orx::mutate {

SnapshotBuilder::SnapshotBuilder(
    serve::SearchService* service, DeltaLog* log, EpochManager* epochs,
    std::shared_ptr<const serve::ServeSnapshot> seed)
    : SnapshotBuilder(service, log, epochs, std::move(seed), Options()) {}

SnapshotBuilder::SnapshotBuilder(
    serve::SearchService* service, DeltaLog* log, EpochManager* epochs,
    std::shared_ptr<const serve::ServeSnapshot> seed, Options options)
    : service_(service),
      log_(log),
      epochs_(epochs),
      options_(options),
      working_(*seed->data),
      rates_(seed->rates),
      default_options_(seed->default_options),
      corpus_(seed->corpus),
      cache_(seed->rank_cache) {
  ORX_CHECK(seed->Complete());
  if (cache_ != nullptr) cache_terms_ = cache_->Terms();
}

SnapshotBuilder::~SnapshotBuilder() { Stop(); }

void SnapshotBuilder::Start() {
  MutexLock lock(mu_);
  ORX_CHECK(!started_);
  started_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void SnapshotBuilder::Stop() {
  log_->Close();
  std::thread joinable;
  {
    MutexLock lock(mu_);
    joinable = std::move(thread_);
  }
  if (joinable.joinable()) joinable.join();
}

bool SnapshotBuilder::WaitForSequence(uint64_t sequence,
                                      double timeout_seconds) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  MutexLock lock(mu_);
  while (stats_.applied_sequence < sequence) {
    if (!cv_.WaitUntil(mu_, deadline)) {
      return stats_.applied_sequence >= sequence;
    }
  }
  return true;
}

SnapshotBuilder::Stats SnapshotBuilder::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void SnapshotBuilder::Loop() {
  while (true) {
    std::vector<DeltaLog::PendingBatch> batches =
        log_->Drain(options_.max_batches_per_publish);
    if (batches.empty()) return;  // closed and fully drained

    ApplyEffects window;
    size_t applied = 0;
    size_t mutations = 0;
    std::string last_reject;
    size_t rejected = 0;
    const uint64_t last_sequence = batches.back().sequence;
    for (DeltaLog::PendingBatch& pending : batches) {
      ApplyEffects effects;
      Status status = ApplyBatch(working_, pending.batch, &effects);
      if (status.ok()) {
        mutations += pending.batch.size();
        ++applied;
        MergeEffects(window, std::move(effects));
      } else {
        ++rejected;
        last_reject = "seq " + std::to_string(pending.sequence) + ": " +
                      status.ToString();
      }
    }
    {
      MutexLock lock(mu_);
      stats_.batches_applied += applied;
      stats_.batches_rejected += rejected;
      stats_.mutations_applied += mutations;
      if (!last_reject.empty()) stats_.last_reject = std::move(last_reject);
    }

    if (applied > 0) {
      PublishWindow(window);
    }
    // Rejected-only windows still advance the consumed sequence so
    // WaitForSequence callers observe their batch's fate either way.
    {
      MutexLock lock(mu_);
      stats_.applied_sequence = last_sequence;
    }
    cv_.SignalAll();
  }
}

void SnapshotBuilder::PublishWindow(const ApplyEffects& window) {
  Timer timer;
  auto data = std::make_shared<const graph::DataGraph>(working_);
  auto authority = std::make_shared<const graph::AuthorityGraph>(
      graph::AuthorityGraph::Build(*data));

  std::shared_ptr<const text::Corpus> corpus = corpus_;
  bool corpus_rebuilt = false;
  if (window.stats_changed || corpus == nullptr) {
    corpus = std::make_shared<const text::Corpus>(
        text::Corpus::Build(*data, options_.corpus));
    corpus_rebuilt = true;
  }

  const DirtyRegion region = ComputeDirtyRegion(window, *authority);

  std::shared_ptr<const core::RankCache> cache = cache_;
  core::RankCache::IncrementalStats cache_stats;
  const bool refresh_cache =
      options_.maintain_rank_cache && cache_ != nullptr;
  if (refresh_cache) {
    cache = std::make_shared<const core::RankCache>(
        core::RankCache::IncrementalBuild(
            *cache_, *authority, *corpus, rates_, cache_terms_, region.dirty,
            region.stats_changed, options_.rank_cache, &cache_stats));
  }

  auto next = std::make_shared<serve::ServeSnapshot>();
  next->data = data;
  next->authority = authority;
  next->corpus = corpus;
  next->rates = rates_;
  next->rank_cache = cache;
  next->default_options = default_options_;
  // Prewarm the fused SELL layout so the first post-swap query doesn't
  // pay the materialization on its own latency.
  next->fused_cache->Get(*authority, rates_);

  // Backpressure: stall while too many published epochs remain
  // unreclaimed (slow readers still pin them). A closed log means the
  // server is draining — publish what we have rather than deadlock the
  // join on a reader that never lets go.
  uint64_t reclaim_waits = 0;
  while (!epochs_->WaitForReclaimUnder(options_.max_live_epochs,
                                       options_.reclaim_timeout_seconds) &&
         !log_->closed()) {
    ++reclaim_waits;
  }

  std::shared_ptr<const serve::ServeSnapshot> tracked =
      epochs_->Publish(std::move(next));
  service_->SwapSnapshot(tracked);

  corpus_ = std::move(corpus);
  cache_ = std::move(cache);

  MutexLock lock(mu_);
  ++stats_.publications;
  if (corpus_rebuilt) ++stats_.corpus_rebuilds;
  if (refresh_cache) {
    stats_.terms_reused += cache_stats.terms_reused;
    stats_.terms_refreshed += cache_stats.terms_refreshed;
    if (cache_stats.full_rebuild) ++stats_.cache_full_rebuilds;
  }
  stats_.reclaim_waits += reclaim_waits;
  stats_.last_publish_seconds = timer.ElapsedSeconds();
}

}  // namespace orx::mutate
