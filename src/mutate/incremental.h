#ifndef ORX_MUTATE_INCREMENTAL_H_
#define ORX_MUTATE_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "graph/authority_graph.h"
#include "mutate/mutation.h"

namespace orx::mutate {

/// The set of nodes a mutation window may have perturbed, in the form
/// RankCache::IncrementalBuild consumes.
struct DirtyRegion {
  /// Per-node flag over the *new* graph; != 0 means dirty.
  std::vector<uint8_t> dirty;
  size_t num_dirty = 0;
  /// Mirrors ApplyEffects::stats_changed for the merged window.
  bool stats_changed = false;

  double Fraction() const {
    return dirty.empty() ? 0.0
                         : static_cast<double>(num_dirty) /
                               static_cast<double>(dirty.size());
  }
};

/// Accumulates `from` into `into` (the builder merges the effects of
/// every batch applied in one publish window).
void MergeEffects(ApplyEffects& into, ApplyEffects from);

/// Computes the dirty region of one publish window: the seed set — nodes
/// whose in-edges, out-degree, or text changed (new nodes, text updates,
/// endpoints of added/removed edges) — expanded by one authority-transfer
/// hop over the *new* authority graph. One hop suffices for RankCache
/// reuse decisions because flow onto a changed edge is detected at its
/// endpoints (see RankCache::IncrementalBuild); the expansion makes the
/// region conservative against out-degree rescaling of neighboring edges.
DirtyRegion ComputeDirtyRegion(const ApplyEffects& effects,
                               const graph::AuthorityGraph& authority);

}  // namespace orx::mutate

#endif  // ORX_MUTATE_INCREMENTAL_H_
