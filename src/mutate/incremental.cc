#include "mutate/incremental.h"

#include <utility>

namespace orx::mutate {

void MergeEffects(ApplyEffects& into, ApplyEffects from) {
  into.new_nodes.insert(into.new_nodes.end(), from.new_nodes.begin(),
                        from.new_nodes.end());
  into.text_changed.insert(into.text_changed.end(), from.text_changed.begin(),
                           from.text_changed.end());
  into.edge_endpoints.insert(into.edge_endpoints.end(),
                             from.edge_endpoints.begin(),
                             from.edge_endpoints.end());
  into.stats_changed = into.stats_changed || from.stats_changed;
}

DirtyRegion ComputeDirtyRegion(const ApplyEffects& effects,
                               const graph::AuthorityGraph& authority) {
  DirtyRegion region;
  region.stats_changed = effects.stats_changed;
  const size_t n = authority.num_nodes();
  region.dirty.assign(n, 0);

  std::vector<graph::NodeId> seeds;
  seeds.reserve(effects.new_nodes.size() + effects.text_changed.size() +
                effects.edge_endpoints.size());
  auto seed = [&](graph::NodeId v) {
    if (v < n && region.dirty[v] == 0) {
      region.dirty[v] = 1;
      seeds.push_back(v);
    }
  };
  for (graph::NodeId v : effects.new_nodes) seed(v);
  for (graph::NodeId v : effects.text_changed) seed(v);
  for (graph::NodeId v : effects.edge_endpoints) seed(v);

  // One authority-transfer hop outward from the seeds, both directions:
  // anyone a seed transfers to, and anyone transferring onto a seed.
  for (graph::NodeId v : seeds) {
    for (const graph::AuthorityEdge& e : authority.OutEdges(v)) {
      if (e.target < n) region.dirty[e.target] = 1;
    }
    for (const graph::AuthorityEdge& e : authority.InEdges(v)) {
      if (e.target < n) region.dirty[e.target] = 1;
    }
  }
  for (uint8_t flag : region.dirty) region.num_dirty += flag != 0 ? 1 : 0;
  return region;
}

}  // namespace orx::mutate
