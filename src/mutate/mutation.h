#ifndef ORX_MUTATE_MUTATION_H_
#define ORX_MUTATE_MUTATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/data_graph.h"
#include "graph/schema_graph.h"

namespace orx::mutate {

/// What one mutation does to the data graph.
enum class MutationKind : uint8_t {
  /// Allocates a new node of `node_type` with `attributes`. The id is
  /// assigned at apply time (dense, insertion order); within the same
  /// batch, later mutations may address it as num_nodes-at-batch-start +
  /// (index of this kAddNode among the batch's kAddNodes).
  kAddNode = 0,
  /// Detaches `node`: removes every incident edge and clears its text.
  /// The id remains allocated as an empty husk so NodeIds stay dense and
  /// stable (authority layouts and cached rank vectors index by NodeId).
  kRemoveNode = 1,
  /// Adds the data edge (from, to, edge_type).
  kAddEdge = 2,
  /// Removes the data edge (from, to, edge_type).
  kRemoveEdge = 3,
  /// Replaces the attribute set (the indexed "document") of `node`.
  kUpdateNodeText = 4,
};

inline constexpr uint8_t kMaxMutationKind =
    static_cast<uint8_t>(MutationKind::kUpdateNodeText);

/// One mutation; which fields are meaningful depends on `kind`.
struct Mutation {
  MutationKind kind = MutationKind::kAddNode;
  /// kAddNode: the schema node type of the new node.
  graph::TypeId node_type = 0;
  /// kRemoveNode / kUpdateNodeText: the target node.
  graph::NodeId node = graph::kInvalidNodeId;
  /// kAddEdge / kRemoveEdge: the edge endpoints and type.
  graph::NodeId from = graph::kInvalidNodeId;
  graph::NodeId to = graph::kInvalidNodeId;
  graph::EdgeTypeId edge_type = graph::kInvalidEdgeTypeId;
  /// kAddNode / kUpdateNodeText: the attribute set.
  std::vector<graph::Attribute> attributes;

  static Mutation AddNode(graph::TypeId type,
                          std::vector<graph::Attribute> attributes);
  static Mutation RemoveNode(graph::NodeId node);
  static Mutation AddEdge(graph::NodeId from, graph::NodeId to,
                          graph::EdgeTypeId type);
  static Mutation RemoveEdge(graph::NodeId from, graph::NodeId to,
                             graph::EdgeTypeId type);
  static Mutation UpdateNodeText(graph::NodeId node,
                                 std::vector<graph::Attribute> attributes);
};

/// An ordered group of mutations applied atomically: either every
/// mutation applies (in order, with intra-batch visibility — an edge may
/// reference a node added earlier in the same batch) or none does.
struct MutationBatch {
  std::vector<Mutation> mutations;

  bool empty() const { return mutations.empty(); }
  size_t size() const { return mutations.size(); }
};

/// Static (graph-independent) validation against the schema: every type
/// id in range, every referenced kind well-formed. This is the check the
/// DeltaLog runs at Append time, before the batch is queued — violations
/// that need graph state (missing endpoints, type conformance, duplicate
/// edges) surface at apply time in the snapshot builder instead.
[[nodiscard]] Status ValidateStatic(const MutationBatch& batch,
                                    const graph::SchemaGraph& schema);

/// What applying a batch changed, in the vocabulary the incremental
/// recompute needs (see ComputeDirtyRegion in mutate/incremental.h).
struct ApplyEffects {
  /// Ids allocated by kAddNode, in batch order.
  std::vector<graph::NodeId> new_nodes;
  /// Nodes whose indexed text changed (added, detached, or updated).
  std::vector<graph::NodeId> text_changed;
  /// Endpoints of every added or removed edge, including the incident
  /// edges a kRemoveNode detached.
  std::vector<graph::NodeId> edge_endpoints;
  /// True iff the corpus-wide BM25 statistics (N, avdl, df) moved — any
  /// node addition, removal, or text update. Edge-only batches leave the
  /// corpus untouched and keep this false.
  bool stats_changed = false;
};

/// Applies `batch` to `graph` atomically: validates and applies against a
/// trial copy, committing only if every mutation succeeds. On failure the
/// graph is untouched and the error names the offending mutation. On
/// success `effects` (optional) receives the change summary.
///
/// Intra-batch node references: a kAddNode's id is assigned on apply;
/// later mutations in the same batch may use the resulting dense id
/// (batch-start num_nodes + ordinal of the kAddNode).
[[nodiscard]] Status ApplyBatch(graph::DataGraph& graph,
                                const MutationBatch& batch,
                                ApplyEffects* effects = nullptr);

}  // namespace orx::mutate

#endif  // ORX_MUTATE_MUTATION_H_
