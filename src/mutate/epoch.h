#ifndef ORX_MUTATE_EPOCH_H_
#define ORX_MUTATE_EPOCH_H_

#include <cstdint>
#include <memory>

#include "common/mutex.h"
#include "serve/snapshot.h"

namespace orx::mutate {

/// Epoch-based reclamation of published snapshots.
///
/// The serving layer already keeps every in-flight reader safe: a request
/// pins the shared_ptr of the snapshot it admitted with, so a snapshot's
/// storage is freed only when its reference count hits zero. What the
/// write path adds is *observability and backpressure* on that event:
/// the builder must not race ahead publishing snapshots faster than
/// readers release old ones (unbounded memory — every live epoch holds a
/// full graph + corpus + cache), and the reclamation tests need to assert
/// "the old epoch was destroyed only after its last reader left".
///
/// Publish() wraps a snapshot so that the destruction of its *last*
/// reference — service, readers, builder alike — is counted: the
/// returned pointer's control block owns the inner snapshot and a hook
/// that bumps `reclaimed` and wakes WaitForReclaimUnder. The hook state
/// is itself shared with the control block, so reclamation reporting
/// stays safe even if the manager is destroyed while snapshots are live.
class EpochManager {
 public:
  struct Stats {
    /// Epochs published.
    uint64_t published = 0;
    /// Epochs whose last reference has been dropped.
    uint64_t reclaimed = 0;
    /// published - reclaimed: snapshots still reachable somewhere.
    uint64_t live = 0;
  };

  EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Registers `snapshot` as a new epoch and returns the tracked handle
  /// callers must use from here on (handing out the original would
  /// bypass the count).
  std::shared_ptr<const serve::ServeSnapshot> Publish(
      std::shared_ptr<const serve::ServeSnapshot> snapshot);

  uint64_t published() const;
  uint64_t reclaimed() const;
  /// Epochs not yet reclaimed. A steady-state server holds one (the
  /// current snapshot) plus whatever in-flight readers pin.
  uint64_t live() const;
  Stats stats() const;

  /// Blocks until live() < `limit` or `timeout_seconds` elapsed; returns
  /// true iff the bound was reached. The builder calls this before
  /// publishing so unreclaimed epochs never pile up past its window.
  bool WaitForReclaimUnder(uint64_t limit, double timeout_seconds) const;

 private:
  /// Shared with every published snapshot's control block; outlives the
  /// manager if snapshots do.
  struct State {
    mutable Mutex mu{"epoch.state_mu"};
    mutable CondVar cv;
    uint64_t published ORX_GUARDED_BY(mu) = 0;
    uint64_t reclaimed ORX_GUARDED_BY(mu) = 0;
  };

  std::shared_ptr<State> state_;
};

}  // namespace orx::mutate

#endif  // ORX_MUTATE_EPOCH_H_
