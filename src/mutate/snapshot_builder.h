#ifndef ORX_MUTATE_SNAPSHOT_BUILDER_H_
#define ORX_MUTATE_SNAPSHOT_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "core/rank_cache.h"
#include "graph/data_graph.h"
#include "mutate/delta_log.h"
#include "mutate/epoch.h"
#include "mutate/incremental.h"
#include "serve/search_service.h"
#include "serve/snapshot.h"
#include "text/corpus.h"

namespace orx::mutate {

/// The consumer half of the write path: one background thread that
/// drains the DeltaLog, applies mutation batches to a private copy of
/// the data graph, rebuilds the derived structures (authority CSR —
/// which the fused SELL layout reslices from — plus, when the text
/// changed, the inverted index and BM25 statistics), refreshes the
/// RankCache incrementally (see core::RankCache::IncrementalBuild), and
/// publishes the result as a new ServeSnapshot through the service's
/// hot-swap path under EpochManager accounting.
///
/// Memory discipline: readers never see the working copy — every
/// publication deep-copies the graph into a fresh immutable snapshot, so
/// the builder can keep mutating its private state while the published
/// epochs drain at their own pace. The EpochManager bounds how many
/// published-but-unreclaimed epochs may exist before the builder stalls
/// (max_live_epochs) — the backpressure that keeps slow readers from
/// turning high write rates into unbounded snapshot memory.
///
/// Lifetime: the schema behind the seed snapshot's DataGraph must
/// outlive the builder and every snapshot it publishes (copies share the
/// schema pointer).
class SnapshotBuilder {
 public:
  struct Options {
    /// Batches folded into one publication window; higher values
    /// amortize the rebuild across more writes under load.
    size_t max_batches_per_publish = 64;
    /// Publish stalls (in reclaim-timeout steps) until fewer than this
    /// many published epochs remain unreclaimed.
    uint64_t max_live_epochs = 8;
    double reclaim_timeout_seconds = 0.5;
    /// Maintain the RankCache across publications (only if the seed
    /// snapshot carried one).
    bool maintain_rank_cache = true;
    core::RankCache::IncrementalOptions rank_cache;
    /// Corpus build options; must match how the seed corpus was built or
    /// the first text-changing publication silently reindexes under
    /// different semantics.
    text::CorpusOptions corpus;
  };

  struct Stats {
    /// Batches applied / refused (validation against live graph state).
    uint64_t batches_applied = 0;
    uint64_t batches_rejected = 0;
    uint64_t mutations_applied = 0;
    /// Snapshots published through the service.
    uint64_t publications = 0;
    /// Corpus reindex passes (text-changing windows only).
    uint64_t corpus_rebuilds = 0;
    /// RankCache refresh accounting, summed over publications.
    uint64_t terms_reused = 0;
    uint64_t terms_refreshed = 0;
    uint64_t cache_full_rebuilds = 0;
    /// Publish stalls waiting on epoch reclamation.
    uint64_t reclaim_waits = 0;
    /// Highest delta-log sequence covered by the published snapshot.
    uint64_t applied_sequence = 0;
    /// Wall seconds of the most recent publication (apply excluded).
    double last_publish_seconds = 0.0;
    /// Message of the most recent batch rejection ("" = none yet).
    std::string last_reject;
  };

  /// `service`, `log`, and `epochs` must outlive the builder. `seed` is
  /// the snapshot the service is currently serving; the builder copies
  /// its graph as the working state and carries its rates, default
  /// options, and RankCache term set forward.
  SnapshotBuilder(serve::SearchService* service, DeltaLog* log,
                  EpochManager* epochs,
                  std::shared_ptr<const serve::ServeSnapshot> seed);
  SnapshotBuilder(serve::SearchService* service, DeltaLog* log,
                  EpochManager* epochs,
                  std::shared_ptr<const serve::ServeSnapshot> seed,
                  Options options);
  ~SnapshotBuilder();

  SnapshotBuilder(const SnapshotBuilder&) = delete;
  SnapshotBuilder& operator=(const SnapshotBuilder&) = delete;

  /// Spawns the consumer thread. Call once.
  void Start();

  /// Closes the delta log, drains what is already queued (each remaining
  /// window is still applied and published), and joins the thread.
  /// Idempotent; called by the destructor.
  void Stop();

  /// Blocks until every batch with sequence <= `sequence` has been
  /// consumed (applied or rejected) and the covering snapshot published.
  /// Returns false on timeout. The read-your-writes barrier for tests
  /// and tools.
  bool WaitForSequence(uint64_t sequence, double timeout_seconds) const;

  Stats stats() const;

 private:
  void Loop();

  /// Rebuilds derived state for one applied window and publishes it.
  void PublishWindow(const ApplyEffects& window);

  serve::SearchService* const service_;
  DeltaLog* const log_;
  EpochManager* const epochs_;
  const Options options_;

  /// Consumer-thread state (no lock: only Loop touches these).
  graph::DataGraph working_;
  graph::TransferRates rates_;
  core::SearchOptions default_options_;
  std::shared_ptr<const text::Corpus> corpus_;
  std::shared_ptr<const core::RankCache> cache_;
  std::vector<std::string> cache_terms_;

  mutable Mutex mu_{"snapshot_builder.mu"};
  mutable CondVar cv_;
  Stats stats_ ORX_GUARDED_BY(mu_);
  bool started_ ORX_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

}  // namespace orx::mutate

#endif  // ORX_MUTATE_SNAPSHOT_BUILDER_H_
