#include "mutate/mutation.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace orx::mutate {

Mutation Mutation::AddNode(graph::TypeId type,
                           std::vector<graph::Attribute> attributes) {
  Mutation m;
  m.kind = MutationKind::kAddNode;
  m.node_type = type;
  m.attributes = std::move(attributes);
  return m;
}

Mutation Mutation::RemoveNode(graph::NodeId node) {
  Mutation m;
  m.kind = MutationKind::kRemoveNode;
  m.node = node;
  return m;
}

Mutation Mutation::AddEdge(graph::NodeId from, graph::NodeId to,
                           graph::EdgeTypeId type) {
  Mutation m;
  m.kind = MutationKind::kAddEdge;
  m.from = from;
  m.to = to;
  m.edge_type = type;
  return m;
}

Mutation Mutation::RemoveEdge(graph::NodeId from, graph::NodeId to,
                              graph::EdgeTypeId type) {
  Mutation m;
  m.kind = MutationKind::kRemoveEdge;
  m.from = from;
  m.to = to;
  m.edge_type = type;
  return m;
}

Mutation Mutation::UpdateNodeText(graph::NodeId node,
                                  std::vector<graph::Attribute> attributes) {
  Mutation m;
  m.kind = MutationKind::kUpdateNodeText;
  m.node = node;
  m.attributes = std::move(attributes);
  return m;
}

namespace {

std::string At(size_t index) {
  return "mutation #" + std::to_string(index) + ": ";
}

/// Prefixes an error's message with the offending mutation's position.
Status Annotate(const std::string& prefix, const Status& status) {
  return Status(status.code(), prefix + status.message());
}

}  // namespace

Status ValidateStatic(const MutationBatch& batch,
                      const graph::SchemaGraph& schema) {
  if (batch.empty()) {
    return InvalidArgumentError("empty mutation batch");
  }
  for (size_t i = 0; i < batch.mutations.size(); ++i) {
    const Mutation& m = batch.mutations[i];
    switch (m.kind) {
      case MutationKind::kAddNode:
        if (m.node_type >= schema.num_node_types()) {
          return InvalidArgumentError(At(i) + "unknown node type id " +
                                      std::to_string(m.node_type));
        }
        break;
      case MutationKind::kRemoveNode:
      case MutationKind::kUpdateNodeText:
        if (m.node == graph::kInvalidNodeId) {
          return InvalidArgumentError(At(i) + "invalid node id");
        }
        break;
      case MutationKind::kAddEdge:
      case MutationKind::kRemoveEdge:
        if (m.from == graph::kInvalidNodeId || m.to == graph::kInvalidNodeId) {
          return InvalidArgumentError(At(i) + "invalid edge endpoint id");
        }
        if (m.edge_type >= schema.num_edge_types()) {
          return InvalidArgumentError(At(i) + "unknown edge type id " +
                                      std::to_string(m.edge_type));
        }
        break;
      default:
        return InvalidArgumentError(At(i) + "unknown mutation kind " +
                                    std::to_string(static_cast<int>(m.kind)));
    }
  }
  return Status::OK();
}

Status ApplyBatch(graph::DataGraph& graph, const MutationBatch& batch,
                  ApplyEffects* effects) {
  ORX_RETURN_IF_ERROR(ValidateStatic(batch, graph.schema()));

  // Atomicity by trial copy: mutations interact within a batch (an edge
  // may reference a node the batch just added), so a side-effect-free
  // validation pass would have to simulate the whole apply anyway. The
  // copy is O(|V| + |E|) — the same order as the authority/corpus rebuild
  // the caller performs after a successful apply.
  graph::DataGraph trial = graph;
  ApplyEffects out;

  // Duplicate-edge guard: DataGraph::AddEdge trusts its callers not to
  // insert parallel duplicates, but mutations are untrusted input. Keyed
  // exactly: endpoint pair -> the edge types present between them.
  auto pair_key = [](graph::NodeId from, graph::NodeId to) {
    return (static_cast<uint64_t>(from) << 32) | static_cast<uint64_t>(to);
  };
  std::unordered_map<uint64_t, std::vector<graph::EdgeTypeId>> edge_set;
  edge_set.reserve(trial.num_edges());
  for (const graph::DataEdge& e : trial.edges()) {
    edge_set[pair_key(e.from, e.to)].push_back(e.type);
  }
  auto has_edge = [&](graph::NodeId from, graph::NodeId to,
                      graph::EdgeTypeId type) {
    auto it = edge_set.find(pair_key(from, to));
    if (it == edge_set.end()) return false;
    return std::find(it->second.begin(), it->second.end(), type) !=
           it->second.end();
  };
  auto erase_edge = [&](graph::NodeId from, graph::NodeId to,
                        graph::EdgeTypeId type) {
    auto it = edge_set.find(pair_key(from, to));
    if (it == edge_set.end()) return;
    auto pos = std::find(it->second.begin(), it->second.end(), type);
    if (pos != it->second.end()) it->second.erase(pos);
  };

  for (size_t i = 0; i < batch.mutations.size(); ++i) {
    const Mutation& m = batch.mutations[i];
    switch (m.kind) {
      case MutationKind::kAddNode: {
        auto id = trial.AddNode(m.node_type, m.attributes);
        if (!id.ok()) return Annotate(At(i), id.status());
        out.new_nodes.push_back(*id);
        out.text_changed.push_back(*id);
        out.stats_changed = true;
        break;
      }
      case MutationKind::kRemoveNode: {
        if (m.node >= trial.num_nodes()) {
          return InvalidArgumentError(At(i) + "node " +
                                      std::to_string(m.node) +
                                      " does not exist");
        }
        // The neighbors of the detached edges are part of the change set;
        // collect them before DetachNode erases the edges.
        for (const graph::DataEdge& e : trial.edges()) {
          if (e.from == m.node || e.to == m.node) {
            out.edge_endpoints.push_back(e.from);
            out.edge_endpoints.push_back(e.to);
            erase_edge(e.from, e.to, e.type);
          }
        }
        Status detached = trial.DetachNode(m.node);
        if (!detached.ok()) return Annotate(At(i), detached);
        out.text_changed.push_back(m.node);
        out.stats_changed = true;
        break;
      }
      case MutationKind::kAddEdge: {
        if (has_edge(m.from, m.to, m.edge_type)) {
          return AlreadyExistsError(At(i) + "duplicate edge");
        }
        Status added = trial.AddEdge(m.from, m.to, m.edge_type);
        if (!added.ok()) return Annotate(At(i), added);
        edge_set[pair_key(m.from, m.to)].push_back(m.edge_type);
        out.edge_endpoints.push_back(m.from);
        out.edge_endpoints.push_back(m.to);
        break;
      }
      case MutationKind::kRemoveEdge: {
        Status removed = trial.RemoveEdge(m.from, m.to, m.edge_type);
        if (!removed.ok()) return Annotate(At(i), removed);
        erase_edge(m.from, m.to, m.edge_type);
        out.edge_endpoints.push_back(m.from);
        out.edge_endpoints.push_back(m.to);
        break;
      }
      case MutationKind::kUpdateNodeText: {
        Status updated = trial.SetAttributes(m.node, m.attributes);
        if (!updated.ok()) return Annotate(At(i), updated);
        out.text_changed.push_back(m.node);
        out.stats_changed = true;
        break;
      }
    }
  }

  graph = std::move(trial);
  if (effects != nullptr) *effects = std::move(out);
  return Status::OK();
}

}  // namespace orx::mutate
