#include "mutate/epoch.h"

#include <chrono>
#include <utility>

namespace orx::mutate {

EpochManager::EpochManager() : state_(std::make_shared<State>()) {}

std::shared_ptr<const serve::ServeSnapshot> EpochManager::Publish(
    std::shared_ptr<const serve::ServeSnapshot> snapshot) {
  if (snapshot == nullptr) return nullptr;
  std::shared_ptr<State> state = state_;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    ++state->published;
  }
  const serve::ServeSnapshot* raw = snapshot.get();
  // The deleter owns the inner shared_ptr: when the wrapper's count hits
  // zero the snapshot itself is released first, then the epoch is
  // reported reclaimed — so WaitForReclaimUnder's bound really means the
  // storage is gone, not merely unreachable.
  auto deleter = [state, inner = std::move(snapshot)](
                     const serve::ServeSnapshot*) mutable {
    inner.reset();
    {
      std::lock_guard<std::mutex> lock(state->mu);
      ++state->reclaimed;
    }
    state->cv.notify_all();
  };
  return std::shared_ptr<const serve::ServeSnapshot>(raw, std::move(deleter));
}

uint64_t EpochManager::published() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->published;
}

uint64_t EpochManager::reclaimed() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->reclaimed;
}

uint64_t EpochManager::live() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->published - state_->reclaimed;
}

EpochManager::Stats EpochManager::stats() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  Stats stats;
  stats.published = state_->published;
  stats.reclaimed = state_->reclaimed;
  stats.live = state_->published - state_->reclaimed;
  return stats;
}

bool EpochManager::WaitForReclaimUnder(uint64_t limit,
                                       double timeout_seconds) const {
  std::unique_lock<std::mutex> lock(state_->mu);
  return state_->cv.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [&] { return state_->published - state_->reclaimed < limit; });
}

}  // namespace orx::mutate
