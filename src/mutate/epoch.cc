#include "mutate/epoch.h"

#include <chrono>
#include <utility>

namespace orx::mutate {

EpochManager::EpochManager() : state_(std::make_shared<State>()) {}

std::shared_ptr<const serve::ServeSnapshot> EpochManager::Publish(
    std::shared_ptr<const serve::ServeSnapshot> snapshot) {
  if (snapshot == nullptr) return nullptr;
  std::shared_ptr<State> state = state_;
  {
    MutexLock lock(state->mu);
    ++state->published;
  }
  const serve::ServeSnapshot* raw = snapshot.get();
  // The deleter owns the inner shared_ptr: when the wrapper's count hits
  // zero the snapshot itself is released first, then the epoch is
  // reported reclaimed — so WaitForReclaimUnder's bound really means the
  // storage is gone, not merely unreachable.
  auto deleter = [state, inner = std::move(snapshot)](
                     const serve::ServeSnapshot*) mutable {
    inner.reset();
    {
      MutexLock lock(state->mu);
      ++state->reclaimed;
    }
    state->cv.SignalAll();
  };
  return std::shared_ptr<const serve::ServeSnapshot>(raw, std::move(deleter));
}

uint64_t EpochManager::published() const {
  MutexLock lock(state_->mu);
  return state_->published;
}

uint64_t EpochManager::reclaimed() const {
  MutexLock lock(state_->mu);
  return state_->reclaimed;
}

uint64_t EpochManager::live() const {
  MutexLock lock(state_->mu);
  return state_->published - state_->reclaimed;
}

EpochManager::Stats EpochManager::stats() const {
  MutexLock lock(state_->mu);
  Stats stats;
  stats.published = state_->published;
  stats.reclaimed = state_->reclaimed;
  stats.live = state_->published - state_->reclaimed;
  return stats;
}

bool EpochManager::WaitForReclaimUnder(uint64_t limit,
                                       double timeout_seconds) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  MutexLock lock(state_->mu);
  while (state_->published - state_->reclaimed >= limit) {
    if (!state_->cv.WaitUntil(state_->mu, deadline)) {
      // Timed out: report whatever held at the final predicate check.
      return state_->published - state_->reclaimed < limit;
    }
  }
  return true;
}

}  // namespace orx::mutate
