// Table 2 reproduction: precision of the top-10 results, ObjectRank2
// (IR-weighted base set) vs. the modified original ObjectRank (0/1 base
// set per keyword, combined with the normalizing exponent of Equation 16),
// over the paper's 8 DBLP queries on DBLPtop.
//
// Judges are simulated users whose ground truth is the [BHP04] rates with
// per-user noise and an IR-weighted ranking — the paper's human judges
// preferred keyword-salient results, which is exactly the premise that
// makes ObjectRank2 win slightly (7.7 vs 7.5 in the paper).

#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/searcher.h"
#include "eval/metrics.h"
#include "eval/simulated_user.h"
#include "text/query.h"

int main() {
  using namespace orx;
  const double scale = bench::ScaleFromEnv();
  std::printf("=== Table 2: ObjectRank2 vs ObjectRank (top-10 precision, "
              "scale=%.3f) ===\n\n", scale);

  datasets::DblpDataset dblp = datasets::GenerateDblp(
      bench::ScaledDblp(datasets::DblpGeneratorConfig::DblpTop(), scale));
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);

  // A mixed judge panel: half judge purely by authority, half also insist
  // on keyword containment (human judges span both attitudes). The
  // keyword-respecting half is where ObjectRank2's IR-weighted base set
  // earns its small edge over the 0/1 base set.
  constexpr int kUsers = 6;
  constexpr double kNoise = 0.25;
  Rng rng(20080215);

  core::SearchOptions or2_options;
  or2_options.result_type = dblp.types.paper;
  or2_options.k = 10;
  or2_options.use_warm_start = false;
  core::SearchOptions or_options = or2_options;
  or_options.mode = core::RankMode::kObjectRankBaseline;

  TablePrinter table({"DBLP keyword query", "ObjectRank2", "ObjectRank"});
  double sum2 = 0.0, sum1 = 0.0;
  int counted = 0;

  // One set of judges shared across queries (like the paper's subjects).
  std::vector<graph::TransferRates> judge_rates;
  for (int u = 0; u < kUsers; ++u) {
    judge_rates.push_back(bench::PerturbedRates(dblp.dataset.schema(), rates,
                                                kNoise, rng));
  }

  for (const std::string& query_text : bench::DblpSurveyQueries()) {
    text::QueryVector query(text::ParseQuery(query_text));
    core::Searcher searcher(dblp.dataset.data(), dblp.dataset.authority(),
                            dblp.dataset.corpus());
    auto or2 = searcher.Search(query, rates, or2_options);
    searcher.ResetSession();
    auto or1 = searcher.Search(query, rates, or_options);
    if (!or2.ok() || !or1.ok()) {
      table.AddRow({"[" + query_text + "]", "n/a", "n/a"});
      continue;
    }

    double p2 = 0.0, p1 = 0.0;
    int judges = 0;
    for (int u = 0; u < kUsers; ++u) {
      eval::SimulatedUserOptions user_options;
      user_options.relevant_pool = 10;
      user_options.require_keyword_containment = (u % 2 == 1);
      user_options.search = or2_options;
      eval::SimulatedUser judge(dblp.dataset.data(),
                                dblp.dataset.authority(),
                                dblp.dataset.corpus(), judge_rates[u],
                                user_options);
      if (!judge.SetIntent(query)) continue;
      p2 += eval::Precision(or2->top, judge.relevant_set());
      p1 += eval::Precision(or1->top, judge.relevant_set());
      ++judges;
    }
    if (judges == 0) continue;
    p2 = 10.0 * p2 / judges;  // the paper reports hits out of 10
    p1 = 10.0 * p1 / judges;
    sum2 += p2;
    sum1 += p1;
    ++counted;
    table.AddRow({"[" + query_text + "]", FormatDouble(p2, 1),
                  FormatDouble(p1, 1)});
  }
  if (counted > 0) {
    table.AddRow({"Average precision", FormatDouble(sum2 / counted, 1),
                  FormatDouble(sum1 / counted, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper: per-query 8-10 hits, averages 7.7 (ObjectRank2) vs "
              "7.5 (ObjectRank) — ObjectRank2 slightly ahead.\n");
  return 0;
}
