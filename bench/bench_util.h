#ifndef ORX_BENCH_BENCH_UTIL_H_
#define ORX_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "datasets/bio_generator.h"
#include "datasets/dblp_generator.h"
#include "eval/survey.h"
#include "graph/transfer_rates.h"

namespace orx::bench {

/// Reads the ORX_BENCH_SCALE environment variable (default 1.0): a factor
/// in (0, 1] applied to dataset sizes so the paper-scale benchmarks can be
/// smoke-tested quickly (e.g. ORX_BENCH_SCALE=0.05 ./bench_fig14_...).
double ScaleFromEnv();

/// Reads the ORX_BENCH_THREADS environment variable: worker threads for
/// parallel offline builds (RankCache precomputation). Defaults to the
/// hardware thread count.
int BuildThreadsFromEnv();

/// Scales a DBLP generator config's node counts by `scale` (keeping at
/// least a handful of each entity).
datasets::DblpGeneratorConfig ScaledDblp(datasets::DblpGeneratorConfig config,
                                         double scale);

/// Scales a bio generator config's node counts by `scale`.
datasets::BioGeneratorConfig ScaledBio(datasets::BioGeneratorConfig config,
                                       double scale);

/// Per-user rate perturbation lives with the simulated users; re-exported
/// here for the bench binaries.
using eval::PerturbedRates;

/// The paper's Table 2 DBLP query mix (8 queries).
const std::vector<std::string>& DblpSurveyQueries();

/// Survey sweep over (user, query) pairs on a DBLP dataset.
struct SweepConfig {
  eval::SurveyConfig survey;
  int num_users = 5;
  int queries_per_user = 5;
  double user_noise = 0.15;
  uint64_t seed = 1;
  /// Rates the *system* starts from (the surveys start uniform at 0.3).
  double initial_rate = 0.3;
};

/// Averaged results of a sweep.
struct SweepResult {
  /// Mean residual precision per iteration (index 0 = initial query).
  std::vector<double> precision;
  /// Mean cosine similarity of the learned rate vector vs. the unperturbed
  /// ground truth, per iteration.
  std::vector<double> rate_cosine;
  /// Mean per-iteration performance counters.
  std::vector<double> search_seconds;
  std::vector<double> objectrank_iterations;
  std::vector<double> explain_construction_seconds;
  std::vector<double> explain_adjustment_seconds;
  std::vector<double> reformulation_seconds;
  std::vector<double> explain_iterations;
  int sessions = 0;
};

/// Runs `num_users x queries_per_user` feedback sessions on the dataset
/// and averages everything per iteration. Sessions whose initial query
/// fails (keyword absent at small scales) are skipped.
SweepResult RunDblpSweep(const datasets::DblpDataset& dblp,
                         const SweepConfig& config);

/// Same sweep on a biological dataset with bio queries.
SweepResult RunBioSweep(const datasets::BioDataset& bio,
                        const SweepConfig& config);

/// Prints a labeled series: "label: v0 v1 v2 ..." with fixed precision.
void PrintSeries(const std::string& label, const std::vector<double>& values,
                 int digits = 4);

/// Minimal insertion-ordered JSON object builder for the BENCH_*.json
/// artifacts. Strings are escaped; AddRaw splices pre-rendered JSON
/// (nested objects/arrays) verbatim.
class JsonObject {
 public:
  JsonObject& Add(const std::string& key, const std::string& value);
  JsonObject& Add(const std::string& key, const char* value);
  JsonObject& Add(const std::string& key, double value);
  JsonObject& Add(const std::string& key, long long value);
  JsonObject& Add(const std::string& key, unsigned long long value);
  JsonObject& Add(const std::string& key, int value);
  JsonObject& Add(const std::string& key, size_t value);
  JsonObject& Add(const std::string& key, bool value);
  JsonObject& AddRaw(const std::string& key, const std::string& raw_json);

  /// Renders "{...}".
  std::string ToString() const;

 private:
  void AppendKey(const std::string& key);

  std::string body_;
};

/// Renders a JSON array from pre-rendered element strings.
std::string JsonArray(const std::vector<std::string>& rendered_elements);

/// Full commit sha of HEAD, stamped at *build* time (bench/git_stamp.cmake
/// regenerates the stamp header on every build, so it tracks the tree that
/// was actually compiled); "unknown" outside a git checkout.
std::string GitHead();

/// `git describe --always --dirty` of the built tree, stamped at build
/// time; "unknown" outside a git checkout.
std::string GitDescribe();

/// True iff the working tree had uncommitted tracked changes when the
/// bench library was built — artifacts from dirty trees aren't
/// reproducible from the recorded HEAD and must be flagged as such.
bool GitDirty();

/// Identifies the dataset a benchmark ran against. Rendered as a
/// structured {"name": ..., "nodes": N, "edges": M} object so artifact
/// consumers can filter/normalize by size without parsing free-form
/// description strings. nodes/edges of 0 mean "not applicable" (e.g.
/// micro benchmarks that sweep many datasets).
struct BenchDataset {
  std::string name;
  size_t nodes = 0;
  size_t edges = 0;
};

/// The shared header every BENCH_*.json record carries, so the artifacts
/// of different bench binaries are uniformly parseable:
/// {bench, git:{head,describe,dirty}, dataset:{name,nodes,edges},
///  threads, wall_seconds, ...}. Callers append their bench-specific
/// fields to the returned builder.
JsonObject BenchRecord(const std::string& bench, const BenchDataset& dataset,
                       int threads, double wall_seconds);

/// Writes `content` (+ trailing newline) to `path`; prints a warning and
/// returns false on failure.
bool WriteJsonFile(const std::string& path, const std::string& content);

/// Prints the two panels of a Figures 14-17 style performance figure from
/// a sweep: (a) per-iteration stage times (ObjectRank2 execution,
/// explaining-subgraph creation, explaining fixpoint execution, query
/// reformulation) and (b) per-iteration ObjectRank2 power iterations.
void PrintPerformanceFigure(const SweepResult& sweep);

/// The standard performance-figure sweep configuration (Section 6.2):
/// structure+content reformulation, L = 3, k = 10, warm-started searches.
SweepConfig PerformanceSweepConfig(graph::TypeId result_type);

}  // namespace orx::bench

#endif  // ORX_BENCH_BENCH_UTIL_H_
