// Ablation: warm-starting reformulated queries from the previous query's
// converged scores (Section 6.2, "Manipulating Initial ObjectRank
// values") vs. cold starts. Figures 14(b)-17(b) rely on this
// optimization; here we isolate it.

#include <cstdio>

#include "bench_util.h"
#include "core/searcher.h"
#include "reformulate/reformulator.h"
#include "text/query.h"

int main() {
  using namespace orx;
  const double scale = bench::ScaleFromEnv();
  std::printf("=== Ablation: warm start vs cold start (scale=%.3f) ===\n\n",
              scale);
  datasets::DblpDataset dblp = datasets::GenerateDblp(
      bench::ScaledDblp(datasets::DblpGeneratorConfig::DblpTop(), scale));
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  reform::Reformulator reformulator(dblp.dataset.data(),
                                    dblp.dataset.authority(),
                                    dblp.dataset.corpus());

  std::printf("%-28s %s\n", "mode",
              "initial  reform1  reform2  reform3  (power iterations)");
  for (bool warm : {true, false}) {
    core::Searcher searcher(dblp.dataset.data(), dblp.dataset.authority(),
                            dblp.dataset.corpus());
    if (warm) searcher.PrecomputeGlobalRank(rates);
    core::SearchOptions options;
    options.result_type = dblp.types.paper;
    options.use_warm_start = warm;

    std::vector<double> iterations;
    text::QueryVector query(text::ParseQuery("mining"));
    graph::TransferRates current = rates;
    for (int round = 0; round < 4; ++round) {
      auto search = searcher.Search(query, current, options);
      if (!search.ok()) break;
      iterations.push_back(search->iterations);
      // Feed back the top result each round.
      auto base = core::BuildBaseSet(dblp.dataset.corpus(), query);
      if (!base.ok() || search->top.empty()) break;
      reform::ReformulationOptions reform_options;
      reform_options.structure.adjustment = 0.5;
      reform_options.content.expansion = 0.2;
      const graph::NodeId feedback[] = {search->top[0].node};
      auto next = reformulator.Reformulate(query, current, *base,
                                           search->scores, feedback,
                                           reform_options);
      if (!next.ok()) break;
      query = next->query;
      current = next->rates;
    }
    bench::PrintSeries(warm ? "warm start (paper)" : "cold start",
                       iterations, 0);
  }
  std::printf("\nExpected: warm-started reformulated queries converge in "
              "a fraction of the cold-start iterations (the Figures "
              "14b-17b effect).\n");
  return 0;
}
