// Figure 13 reproduction: authority-transfer-rate training curve of the
// external survey (same sessions as Figure 12), reported as
// cos(ObjVector, UserVector) per iteration.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace orx;
  const double scale = bench::ScaleFromEnv();
  std::printf("=== Figure 13: external-survey rate training (cosine "
              "similarity; scale=%.3f) ===\n\n", scale);
  datasets::DblpDataset dblp = datasets::GenerateDblp(
      bench::ScaledDblp(datasets::DblpGeneratorConfig::DblpTop(), scale));

  bench::SweepConfig config;
  config.survey.feedback_iterations = 5;
  config.survey.max_feedback_objects = 2;
  config.survey.reform.structure.adjustment = 0.5;
  config.survey.reform.content.expansion = 0.0;
  config.survey.reform.explain.radius = 3;
  config.survey.search.result_type = dblp.types.paper;
  config.survey.user.relevant_pool = 30;
  config.num_users = 10;
  config.queries_per_user = 2;
  config.user_noise = 0.25;
  config.seed = 20080612;
  config.initial_rate = 0.3;

  bench::SweepResult sweep = bench::RunDblpSweep(dblp, config);
  std::printf("%-28s %s\n", "",
              "iter1   iter2   iter3   iter4   iter5   iter6");
  bench::PrintSeries("cos(ObjVector,UserVector)", sweep.rate_cosine);
  std::printf("\nPaper (Figure 13): similar shape to the internal training "
              "curves — rise from ~0.84 toward ~0.95, then a dip.\n");
  return 0;
}
