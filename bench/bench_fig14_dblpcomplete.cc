// Figure 14 reproduction: DBLPcomplete execution. Panel (a) breaks the
// cost of each feedback iteration into the four stages of Section 6.2;
// panel (b) shows the ObjectRank2 power-iteration counts — the initial
// query converges slowly (~28 iterations in the paper), warm-started
// reformulated queries much faster (~8-11).

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace orx;
  const double scale = bench::ScaleFromEnv();
  std::printf("=== Figure 14: DBLPcomplete execution (scale=%.3f) ===\n\n",
              scale);
  datasets::DblpDataset dblp = datasets::GenerateDblp(bench::ScaledDblp(
      datasets::DblpGeneratorConfig::DblpComplete(), scale));
  std::printf("dataset: %zu nodes, %zu edges\n\n",
              dblp.dataset.data().num_nodes(),
              dblp.dataset.data().num_edges());

  bench::SweepResult sweep = bench::RunDblpSweep(
      dblp, bench::PerformanceSweepConfig(dblp.types.paper));
  bench::PrintPerformanceFigure(sweep);
  std::printf("\nPaper (Figure 14): initial ObjectRank2 ~28 s on a 2008 "
              "Power4+; reformulated queries dominated by the same stage "
              "but ~3x cheaper thanks to warm starts; explaining stages "
              "and reformulation are negligible. Iterations: ~28 initial, "
              "~8-11 reformulated.\n");
  return 0;
}
