// Ablation: per-keyword precomputation ([BHP04]'s strategy, which
// Section 6.2 recommends for the collections whose on-the-fly
// ObjectRank2 executions "are clearly too long for exploratory search").
// Measures the offline build cost, the cache size, and the online speedup
// of answering queries by combining precomputed vectors instead of
// running the power iteration.

#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/rank_cache.h"
#include "core/searcher.h"
#include "text/query.h"

int main() {
  using namespace orx;
  const double scale = bench::ScaleFromEnv();
  std::printf("=== Ablation: per-keyword precomputation vs on-the-fly "
              "ObjectRank2 (scale=%.3f) ===\n\n", scale);
  datasets::DblpDataset dblp = datasets::GenerateDblp(
      bench::ScaledDblp(datasets::DblpGeneratorConfig::DblpTop(), scale));
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);

  // Offline: cache every keyword of the survey query mix.
  std::vector<std::string> terms;
  for (const std::string& q : bench::DblpSurveyQueries()) {
    for (const std::string& term : text::ParseQuery(q)) {
      terms.push_back(term);
    }
  }
  core::RankCache::Options cache_options;
  cache_options.build_threads = bench::BuildThreadsFromEnv();
  core::RankCache::BuildStats build_stats;
  core::RankCache cache = core::RankCache::BuildForTerms(
      dblp.dataset.authority(), dblp.dataset.corpus(), rates, terms,
      cache_options, &build_stats);
  std::printf("offline: %s\n", build_stats.ToString().c_str());
  std::printf("cache: %zu terms, %.1f MB\n\n", cache.num_terms(),
              cache.MemoryFootprintBytes() / (1024.0 * 1024.0));

  // Online: answer each survey query both ways.
  TablePrinter table({"query", "on-the-fly (ms)", "cached (ms)", "speedup",
                      "max |score diff|"});
  core::Searcher searcher(dblp.dataset.data(), dblp.dataset.authority(),
                          dblp.dataset.corpus());
  core::SearchOptions search_options;
  search_options.use_warm_start = false;
  for (const std::string& query_text : bench::DblpSurveyQueries()) {
    text::QueryVector query(text::ParseQuery(query_text));

    Timer direct_timer;
    auto direct = searcher.Search(query, rates, search_options);
    const double direct_ms = direct_timer.ElapsedMillis();
    searcher.ResetSession();
    if (!direct.ok()) continue;

    Timer cached_timer;
    auto cached = cache.Query(query);
    const double cached_ms = cached_timer.ElapsedMillis();
    if (!cached.ok()) continue;

    double max_diff = 0.0;
    for (size_t v = 0; v < direct->scores.size(); ++v) {
      max_diff = std::max(max_diff,
                          std::abs(direct->scores[v] - cached->scores[v]));
    }
    table.AddRow({"[" + query_text + "]", FormatDouble(direct_ms, 2),
                  FormatDouble(cached_ms, 2),
                  FormatDouble(direct_ms / std::max(cached_ms, 1e-6), 1) +
                      "x",
                  FormatDouble(max_diff, 6)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("The combination is exact up to solver tolerance. Caveat: "
              "structure-based reformulation changes the rates and "
              "invalidates the cache — precomputation only serves the "
              "initial and content-reformulated queries, which is why the "
              "paper also relies on focused subsets.\n");
  return 0;
}
