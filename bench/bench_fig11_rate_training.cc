// Figure 11 reproduction: training the authority transfer rates. The
// structure-only reformulation starts from uniform rates (0.3 everywhere)
// and, via user feedback, is expected to move the rate vector toward the
// hand-tuned [BHP04] ground truth. We report the cosine similarity
// cos(ObjVector, UserVector) per iteration for
// C_f in {0.1, 0.3, 0.5, 0.7, 0.9} — the paper observes a rise followed
// by an overfitting decline, with larger C_f peaking faster.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace orx;
  const double scale = bench::ScaleFromEnv();
  std::printf("=== Figure 11: training of the authority transfer rates "
              "(cosine similarity to ground truth; scale=%.3f) ===\n\n",
              scale);
  datasets::DblpDataset dblp = datasets::GenerateDblp(
      bench::ScaledDblp(datasets::DblpGeneratorConfig::DblpTop(), scale));

  std::printf("%-28s %s\n", "setting",
              "iter1   iter2   iter3   iter4   iter5   iter6");
  for (double cf : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    bench::SweepConfig config;
    config.survey.feedback_iterations = 5;  // 6 points incl. the initial
    config.survey.max_feedback_objects = 2;
    config.survey.reform.structure.adjustment = cf;
    config.survey.reform.content.expansion = 0.0;
    config.survey.reform.explain.radius = 3;
    config.survey.search.result_type = dblp.types.paper;
    config.survey.user.relevant_pool = 30;
    config.num_users = 4;
    config.queries_per_user = 5;
    config.initial_rate = 0.3;
    bench::SweepResult sweep = bench::RunDblpSweep(dblp, config);
    char label[32];
    std::snprintf(label, sizeof(label), "Cf=%.1f", cf);
    bench::PrintSeries(label, sweep.rate_cosine);
  }
  std::printf("\nPaper (Figure 11): curves start ~0.84, rise toward "
              "~0.9-0.98, then dip (overfitting); larger Cf peaks "
              "faster.\n");
  return 0;
}
