// Closed-loop load test for the serving subsystem (src/serve/): N client
// threads issue a Zipf-distributed query mix against one SearchService and
// the sweep reports throughput and latency percentiles per client count,
// with the result cache + single-flight coalescing on vs off. The Zipf
// skew is what makes serving interesting: a handful of head queries
// dominate the mix, so coalescing and the LRU absorb most executions.
//
// Emits BENCH_serve.json (shared bench-record schema, one record per
// sweep point).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/timer.h"
#include "datasets/zipf.h"
#include "serve/search_service.h"
#include "serve/snapshot.h"
#include "text/query.h"

namespace {

struct SweepPoint {
  std::string config;
  int clients = 0;
  int queries = 0;
  double wall_seconds = 0.0;
  orx::serve::ServeMetrics metrics;
};

}  // namespace

int main() {
  using namespace orx;
  const double scale = bench::ScaleFromEnv();
  std::printf("=== Serve load: closed-loop clients vs one SearchService "
              "(scale=%.3f, hw=%zu) ===\n\n",
              scale, ThreadPool::HardwareThreads());

  auto dblp = std::make_shared<datasets::DblpDataset>(
      datasets::GenerateDblp(bench::ScaledDblp(
          datasets::DblpGeneratorConfig::DblpTop(), scale)));
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp->dataset.schema(), dblp->types);
  auto snapshot = std::make_shared<serve::ServeSnapshot>(
      serve::SnapshotFromOwner(dblp, dblp->dataset.data(),
                               dblp->dataset.authority(),
                               dblp->dataset.corpus(), rates));
  const bench::BenchDataset dataset_info{
      "dblp-top-synthetic", dblp->dataset.data().num_nodes(),
      dblp->dataset.authority().num_edges()};
  std::printf("dataset: %zu nodes, %zu edges\n\n", dataset_info.nodes,
              dataset_info.edges);

  // Query mix: the most frequent title terms under a Zipf(1.0) popularity
  // — rank 0 is ~40%% of the traffic, matching real query logs far better
  // than a uniform draw.
  const text::Corpus& corpus = dblp->dataset.corpus();
  std::vector<std::pair<uint32_t, std::string>> by_df;
  for (text::TermId t = 0; t < corpus.vocab_size(); ++t) {
    by_df.emplace_back(corpus.Df(t), corpus.TermString(t));
  }
  std::sort(by_df.begin(), by_df.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<text::QueryVector> mix;
  for (size_t i = 0; i < by_df.size() && mix.size() < 64; ++i) {
    mix.emplace_back(text::ParseQuery(by_df[i].second));
  }
  if (mix.empty()) {
    std::printf("corpus has no terms; nothing to serve\n");
    return 1;
  }
  const datasets::ZipfSampler popularity(mix.size(), 1.0);

  const int queries_per_client =
      std::max(20, static_cast<int>(200 * scale));
  const std::vector<int> client_counts = {1, 2, 4, 8, 16};

  struct Config {
    std::string name;
    serve::SearchService::Options options;
  };
  // "batch" isolates the micro-batch scheduler on pure cache-miss
  // traffic: cache + single-flight off like "no-cache", but concurrent
  // executions may share one block power iteration (docs/batching.md).
  std::vector<Config> configs(3);
  configs[0].name = "cache";
  configs[1].name = "no-cache";
  configs[1].options.result_cache_entries = 0;
  configs[1].options.single_flight = false;
  configs[2].name = "batch";
  configs[2].options.result_cache_entries = 0;
  configs[2].options.single_flight = false;
  configs[2].options.max_batch_size = 8;
  configs[2].options.max_batch_delay_ms = 2.0;

  std::vector<SweepPoint> points;
  for (const Config& config : configs) {
    for (int clients : client_counts) {
      serve::SearchService service(snapshot, config.options);
      const int total_queries = clients * queries_per_client;
      std::vector<std::thread> threads;
      Timer timer;
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          // Closed loop: each client waits for its response before
          // sending the next query, so offered load tracks capacity.
          Rng rng(static_cast<uint64_t>(c) * 7919 + 1);
          for (int q = 0; q < queries_per_client; ++q) {
            serve::ServeRequest request;
            request.query = mix[popularity.Sample(rng)];
            auto response = service.Search(std::move(request));
            if (!response.ok()) {
              std::fprintf(stderr, "query failed: %s\n",
                           response.status().ToString().c_str());
            }
          }
        });
      }
      for (std::thread& t : threads) t.join();
      SweepPoint point;
      point.config = config.name;
      point.clients = clients;
      point.queries = total_queries;
      point.wall_seconds = timer.ElapsedSeconds();
      point.metrics = service.Snapshot();
      points.push_back(point);
    }
  }

  TablePrinter table({"config", "clients", "queries", "wall (s)", "qps",
                      "exec", "hits", "coalesced", "batches", "occ",
                      "p50 (ms)", "p95 (ms)", "p99 (ms)", "mean (ms)"});
  std::vector<std::string> records;
  for (const SweepPoint& p : points) {
    const double qps =
        p.wall_seconds > 0.0 ? p.queries / p.wall_seconds : 0.0;
    table.AddRow({p.config, std::to_string(p.clients),
                  std::to_string(p.queries),
                  FormatDouble(p.wall_seconds, 2), FormatDouble(qps, 0),
                  std::to_string(p.metrics.executed),
                  std::to_string(p.metrics.cache_hits),
                  std::to_string(p.metrics.coalesced),
                  std::to_string(p.metrics.batches),
                  FormatDouble(p.metrics.batch_occupancy_mean, 2),
                  FormatDouble(p.metrics.latency_p50 * 1e3, 2),
                  FormatDouble(p.metrics.latency_p95 * 1e3, 2),
                  FormatDouble(p.metrics.latency_p99 * 1e3, 2),
                  FormatDouble(p.metrics.latency_mean * 1e3, 2)});
    bench::JsonObject record = bench::BenchRecord(
        "serve_load", dataset_info,
        static_cast<int>(ThreadPool::HardwareThreads()), p.wall_seconds);
    record.Add("config", p.config)
        .Add("clients", p.clients)
        .Add("queries", p.queries)
        .Add("qps", qps)
        .Add("executed", p.metrics.executed)
        .Add("cache_hits", p.metrics.cache_hits)
        .Add("coalesced", p.metrics.coalesced)
        .Add("rejected", p.metrics.rejected)
        .Add("batches", p.metrics.batches)
        .Add("batched_queries", p.metrics.batched_queries)
        .Add("batch_occupancy_mean", p.metrics.batch_occupancy_mean)
        .Add("batch_occupancy_max", p.metrics.batch_occupancy_max)
        .Add("latency_p50_ms", p.metrics.latency_p50 * 1e3)
        .Add("latency_p95_ms", p.metrics.latency_p95 * 1e3)
        .Add("latency_p99_ms", p.metrics.latency_p99 * 1e3)
        .Add("latency_mean_ms", p.metrics.latency_mean * 1e3);
    records.push_back(record.ToString());
  }
  std::printf("%s\n", table.ToString().c_str());
  bench::WriteJsonFile("BENCH_serve.json", bench::JsonArray(records));

  // Acceptance check: under concurrency the Zipf head makes the cached
  // configuration strictly cheaper per query.
  double cached_mean = 0.0, uncached_mean = 0.0;
  for (const SweepPoint& p : points) {
    if (p.clients < 8) continue;
    (p.config == "cache" ? cached_mean : uncached_mean) +=
        p.metrics.latency_mean;
  }
  std::printf("\nmean latency at >=8 clients: cache=%.3fms no-cache=%.3fms "
              "(%s)\n",
              cached_mean / 2 * 1e3, uncached_mean / 2 * 1e3,
              cached_mean < uncached_mean ? "cache wins" : "CACHE SLOWER");

  // Acceptance check: on pure cache-miss traffic with enough concurrency
  // to fill windows, the micro-batch scheduler beats serial execution.
  double batch_qps = 0.0, nocache_qps = 0.0;
  for (const SweepPoint& p : points) {
    if (p.clients < 8 || p.wall_seconds <= 0.0) continue;
    if (p.config == "batch") batch_qps += p.queries / p.wall_seconds;
    if (p.config == "no-cache") nocache_qps += p.queries / p.wall_seconds;
  }
  std::printf("aggregate qps at >=8 clients: batch=%.0f no-cache=%.0f (%s)\n",
              batch_qps, nocache_qps,
              batch_qps > nocache_qps ? "batching wins" : "BATCHING SLOWER");
  return 0;
}
