// Related-work baselines (Section 7): top-10 precision of
//   * ObjectRank2 (this paper),
//   * the modified original ObjectRank (Equation 16),
//   * HITS on the query's focused subgraph [Kle99],
//   * BM25 text ranking alone (the "traditional IR" the intro contrasts),
// judged by the simulated ground-truth users, over the survey query mix.
// Expected ordering: ObjectRank2 >= ObjectRank > HITS ~ BM25 — the
// schema-aware, keyword-specific authority flow is what the baselines
// lack.

#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/hits.h"
#include "core/searcher.h"
#include "eval/metrics.h"
#include "eval/simulated_user.h"
#include "text/query.h"

int main() {
  using namespace orx;
  const double scale = bench::ScaleFromEnv();
  std::printf("=== Baselines: ObjectRank2 vs ObjectRank vs HITS vs BM25 "
              "(top-10 precision, scale=%.3f) ===\n\n", scale);
  datasets::DblpDataset dblp = datasets::GenerateDblp(
      bench::ScaledDblp(datasets::DblpGeneratorConfig::DblpTop(), scale));
  const graph::DataGraph& data = dblp.dataset.data();
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);

  constexpr int kUsers = 5;
  Rng rng(19990901);
  std::vector<graph::TransferRates> judge_rates;
  for (int u = 0; u < kUsers; ++u) {
    judge_rates.push_back(
        bench::PerturbedRates(dblp.dataset.schema(), rates, 0.2, rng));
  }

  core::SearchOptions or2_options;
  or2_options.result_type = dblp.types.paper;
  or2_options.use_warm_start = false;
  core::SearchOptions or_options = or2_options;
  or_options.mode = core::RankMode::kObjectRankBaseline;

  TablePrinter table({"query", "ObjectRank2", "ObjectRank", "HITS",
                      "BM25"});
  double sums[4] = {0, 0, 0, 0};
  int counted = 0;
  for (const std::string& query_text : bench::DblpSurveyQueries()) {
    text::QueryVector query(text::ParseQuery(query_text));
    core::Searcher searcher(data, dblp.dataset.authority(),
                            dblp.dataset.corpus());
    auto or2 = searcher.Search(query, rates, or2_options);
    searcher.ResetSession();
    auto or1 = searcher.Search(query, rates, or_options);
    auto base = core::BuildBaseSet(dblp.dataset.corpus(), query);
    if (!or2.ok() || !or1.ok() || !base.ok()) continue;

    // HITS authorities on the focused subgraph.
    auto hits = core::ComputeHits(data, *base);
    if (!hits.ok()) continue;
    auto hits_top = core::TopKOfType(hits->authorities, 10, data,
                                     dblp.types.paper);

    // BM25-only: score every posting of every query term.
    std::vector<double> bm25_scores(data.num_nodes(), 0.0);
    for (const auto& [doc, score] :
         text::ScoreBaseSet(dblp.dataset.corpus(), query)) {
      bm25_scores[doc] = score;
    }
    auto bm25_top = core::TopKOfType(bm25_scores, 10, data,
                                     dblp.types.paper);

    double precision[4] = {0, 0, 0, 0};
    int judges = 0;
    for (int u = 0; u < kUsers; ++u) {
      eval::SimulatedUserOptions user_options;
      user_options.relevant_pool = 10;
      user_options.search = or2_options;
      eval::SimulatedUser judge(data, dblp.dataset.authority(),
                                dblp.dataset.corpus(), judge_rates[u],
                                user_options);
      if (!judge.SetIntent(query)) continue;
      precision[0] += eval::Precision(or2->top, judge.relevant_set());
      precision[1] += eval::Precision(or1->top, judge.relevant_set());
      precision[2] += eval::Precision(hits_top, judge.relevant_set());
      precision[3] += eval::Precision(bm25_top, judge.relevant_set());
      ++judges;
    }
    if (judges == 0) continue;
    std::vector<std::string> row{"[" + query_text + "]"};
    for (int m = 0; m < 4; ++m) {
      precision[m] = 10.0 * precision[m] / judges;
      sums[m] += precision[m];
      row.push_back(FormatDouble(precision[m], 1));
    }
    ++counted;
    table.AddRow(std::move(row));
  }
  if (counted > 0) {
    std::vector<std::string> avg{"Average"};
    for (double s : sums) avg.push_back(FormatDouble(s / counted, 1));
    table.AddRow(std::move(avg));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Expected: ObjectRank2 >= ObjectRank >= HITS (HITS lacks "
              "edge-type semantics), and BM25 near zero — text ranking "
              "misses the authoritative results that do not contain the "
              "keywords, the paper's Section 1 motivation (the \"Data "
              "Cube\" effect).\n");
  return 0;
}
