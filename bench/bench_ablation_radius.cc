// Ablation: explaining-subgraph radius L. The paper fixes L = 3 ("longer
// paths are generally unintuitive and carry less authority") — this bench
// quantifies the trade-off: subgraph size and explanation cost grow with
// L, while reformulation quality saturates early.

#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/searcher.h"
#include "explain/explainer.h"
#include "text/query.h"

int main() {
  using namespace orx;
  const double scale = bench::ScaleFromEnv();
  std::printf("=== Ablation: explaining-subgraph radius L "
              "(scale=%.3f) ===\n\n", scale);
  datasets::DblpDataset dblp = datasets::GenerateDblp(
      bench::ScaledDblp(datasets::DblpGeneratorConfig::DblpTop(), scale));
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);

  // A fixed query and its top results to explain.
  core::Searcher searcher(dblp.dataset.data(), dblp.dataset.authority(),
                          dblp.dataset.corpus());
  text::QueryVector query(text::ParseQuery("query optimization"));
  core::SearchOptions search_options;
  search_options.result_type = dblp.types.paper;
  auto search = searcher.Search(query, rates, search_options);
  if (!search.ok()) {
    std::printf("search failed: %s\n", search.status().ToString().c_str());
    return 1;
  }
  auto base = core::BuildBaseSet(dblp.dataset.corpus(), query);

  TablePrinter table({"L", "subgraph nodes", "subgraph edges",
                      "explain iters", "explain ms",
                      "final precision (survey)"});
  explain::Explainer explainer(dblp.dataset.data(),
                               dblp.dataset.authority());
  for (int radius = 1; radius <= 5; ++radius) {
    // Structural cost: average over the top-5 results.
    double nodes = 0, edges = 0, iters = 0, ms = 0;
    int explained = 0;
    for (const core::ScoredNode& r : search->top) {
      if (explained >= 5) break;
      explain::ExplainOptions options;
      options.radius = radius;
      auto explanation = explainer.Explain(r.node, *base, search->scores,
                                           rates, 0.85, options);
      if (!explanation.ok()) continue;
      nodes += explanation->subgraph.num_nodes();
      edges += explanation->subgraph.num_edges();
      iters += explanation->iterations;
      ms += 1e3 * (explanation->construction_seconds +
                   explanation->adjustment_seconds);
      ++explained;
    }
    if (explained > 0) {
      nodes /= explained;
      edges /= explained;
      iters /= explained;
      ms /= explained;
    }

    // Quality: a short structure-only survey with this radius.
    bench::SweepConfig config;
    config.survey.feedback_iterations = 3;
    config.survey.reform.structure.adjustment = 0.5;
    config.survey.reform.content.expansion = 0.0;
    config.survey.reform.explain.radius = radius;
    config.survey.search.result_type = dblp.types.paper;
    config.survey.user.relevant_pool = 30;
    config.num_users = 3;
    config.queries_per_user = 3;
    bench::SweepResult sweep = bench::RunDblpSweep(dblp, config);
    const double final_precision =
        sweep.precision.empty() ? 0.0 : sweep.precision.back();

    table.AddRow({std::to_string(radius), FormatDouble(nodes, 0),
                  FormatDouble(edges, 0), FormatDouble(iters, 1),
                  FormatDouble(ms, 2), FormatDouble(final_precision, 4)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Expected: candidate balls grow steeply with L, but relative "
              "flow pruning (threshold = fraction of the max flow, which "
              "grows with the ball) caps the displayed subgraph; quality "
              "saturates by L=3 (the paper's production setting).\n");
  return 0;
}
