#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "datasets/vocabulary.h"
#include "eval/metrics.h"
#include "text/query.h"

// Build-time provenance stamp (bench/git_stamp.cmake via the
// orx_git_stamp custom target). Guarded so bench_util.cc still compiles
// standalone (IDEs, external build systems) without the generated header.
#ifdef ORX_HAVE_GIT_STAMP
#include "orx_git_stamp.h"
#endif

namespace orx::bench {
namespace {

// Averages one session's per-iteration series into the sweep accumulator.
void Accumulate(const eval::SurveyResult& session,
                const graph::TransferRates& ground_truth,
                const datasets::DblpTypes* dblp_types,
                const datasets::BioTypes* bio_types, SweepResult& out) {
  const size_t n = session.iterations.size();
  auto grow = [&](std::vector<double>& v) {
    if (v.size() < n) v.resize(n, 0.0);
  };
  grow(out.precision);
  grow(out.rate_cosine);
  grow(out.search_seconds);
  grow(out.objectrank_iterations);
  grow(out.explain_construction_seconds);
  grow(out.explain_adjustment_seconds);
  grow(out.reformulation_seconds);
  grow(out.explain_iterations);

  for (size_t i = 0; i < n; ++i) {
    const eval::SurveyIteration& it = session.iterations[i];
    out.precision[i] += it.precision;
    out.search_seconds[i] += it.search_seconds;
    out.objectrank_iterations[i] += it.objectrank_iterations;
    out.explain_construction_seconds[i] += it.explain_construction_seconds;
    out.explain_adjustment_seconds[i] += it.explain_adjustment_seconds;
    out.reformulation_seconds[i] += it.reformulation_seconds;
    out.explain_iterations[i] += it.avg_explain_iterations;

    std::vector<double> learned, truth;
    if (dblp_types != nullptr) {
      learned = datasets::DblpRateVector(it.rates, *dblp_types);
      truth = datasets::DblpRateVector(ground_truth, *dblp_types);
    } else {
      learned = datasets::BioRateVector(it.rates, *bio_types);
      truth = datasets::BioRateVector(ground_truth, *bio_types);
    }
    out.rate_cosine[i] += eval::CosineSimilarity(learned, truth);
  }
  ++out.sessions;
}

void FinishAverages(SweepResult& out) {
  if (out.sessions == 0) return;
  const double inv = 1.0 / out.sessions;
  for (auto* v :
       {&out.precision, &out.rate_cosine, &out.search_seconds,
        &out.objectrank_iterations, &out.explain_construction_seconds,
        &out.explain_adjustment_seconds, &out.reformulation_seconds,
        &out.explain_iterations}) {
    for (double& x : *v) x *= inv;
  }
}

template <typename DatasetT>
SweepResult RunSweep(const DatasetT& bundle,
                     const graph::TransferRates& ground_truth,
                     const datasets::DblpTypes* dblp_types,
                     const datasets::BioTypes* bio_types,
                     const std::vector<std::string>& queries,
                     const SweepConfig& config) {
  const auto& dataset = bundle.dataset;
  SweepResult out;
  Rng rng(config.seed);
  for (int u = 0; u < config.num_users; ++u) {
    graph::TransferRates user_rates = PerturbedRates(
        dataset.schema(), ground_truth, config.user_noise, rng);
    eval::SimulatedUserOptions user_options = config.survey.user;
    user_options.search = config.survey.search;
    eval::SimulatedUser user(dataset.data(), dataset.authority(),
                             dataset.corpus(), user_rates, user_options);
    for (int qi = 0; qi < config.queries_per_user; ++qi) {
      const std::string& query_text =
          queries[(u * config.queries_per_user + qi) % queries.size()];
      text::QueryVector query(text::ParseQuery(query_text));
      if (!user.SetIntent(query)) continue;
      graph::TransferRates initial(dataset.schema(), config.initial_rate);
      eval::SurveyResult session = eval::RunFeedbackSession(
          dataset.data(), dataset.authority(), dataset.corpus(), query,
          initial, user, config.survey);
      if (!session.ok) continue;
      Accumulate(session, ground_truth, dblp_types, bio_types, out);
    }
  }
  FinishAverages(out);
  return out;
}

}  // namespace

double ScaleFromEnv() {
  const char* env = std::getenv("ORX_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  if (scale <= 0.0 || scale > 1.0) {
    std::fprintf(stderr,
                 "ORX_BENCH_SCALE=%s out of (0,1]; using 1.0 instead\n", env);
    return 1.0;
  }
  return scale;
}

int BuildThreadsFromEnv() {
  const char* env = std::getenv("ORX_BENCH_THREADS");
  if (env == nullptr) {
    return static_cast<int>(ThreadPool::HardwareThreads());
  }
  const int threads = std::atoi(env);
  if (threads < 1) {
    std::fprintf(stderr, "ORX_BENCH_THREADS=%s invalid; using 1 instead\n",
                 env);
    return 1;
  }
  return threads;
}

datasets::DblpGeneratorConfig ScaledDblp(datasets::DblpGeneratorConfig config,
                                         double scale) {
  auto apply = [&](uint32_t v, uint32_t floor_value) {
    return std::max<uint32_t>(static_cast<uint32_t>(v * scale), floor_value);
  };
  config.num_papers = apply(config.num_papers, 200);
  config.num_authors = apply(config.num_authors, 100);
  config.num_conferences = apply(config.num_conferences, 4);
  return config;
}

datasets::BioGeneratorConfig ScaledBio(datasets::BioGeneratorConfig config,
                                       double scale) {
  auto apply = [&](uint32_t v, uint32_t floor_value) {
    return std::max<uint32_t>(static_cast<uint32_t>(v * scale), floor_value);
  };
  config.num_pubmed = apply(config.num_pubmed, 300);
  config.num_genes = apply(config.num_genes, 30);
  config.num_proteins = apply(config.num_proteins, 80);
  config.num_nucleotides = apply(config.num_nucleotides, 100);
  return config;
}

const std::vector<std::string>& DblpSurveyQueries() {
  static const auto& queries = *new std::vector<std::string>{
      "olap",          "query optimization", "xml",
      "mining",        "proximity search",   "xml indexing",
      "ranked search", "data streams",
  };
  return queries;
}

SweepResult RunDblpSweep(const datasets::DblpDataset& dblp,
                         const SweepConfig& config) {
  graph::TransferRates ground_truth =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  return RunSweep(dblp, ground_truth, &dblp.types, nullptr,
                  DblpSurveyQueries(), config);
}

SweepResult RunBioSweep(const datasets::BioDataset& bio,
                        const SweepConfig& config) {
  static const auto& queries = *new std::vector<std::string>{
      "cancer",    "kinase signaling", "apoptosis", "gene expression",
      "mutation",  "receptor binding", "tumor",     "immune response",
  };
  graph::TransferRates ground_truth =
      datasets::BioGroundTruthRates(bio.dataset.schema(), bio.types);
  return RunSweep(bio, ground_truth, nullptr, &bio.types, queries, config);
}

void PrintPerformanceFigure(const SweepResult& sweep) {
  std::printf("(a) Query and reformulation times (seconds; column 0 = "
              "initial query, then reformulated queries):\n");
  PrintSeries("  ObjectRank2 execution", sweep.search_seconds);
  PrintSeries("  Expl. subgraph creation", sweep.explain_construction_seconds);
  PrintSeries("  Expl. ObjectRank2 exec", sweep.explain_adjustment_seconds);
  PrintSeries("  Query reformulation", sweep.reformulation_seconds);
  std::printf("\n(b) ObjectRank2 iterations per query (warm-started after "
              "the initial one):\n");
  PrintSeries("  iterations", sweep.objectrank_iterations, 1);
  std::printf("\n(%d sessions averaged)\n", sweep.sessions);
}

SweepConfig PerformanceSweepConfig(graph::TypeId result_type) {
  SweepConfig config;
  config.survey.feedback_iterations = 4;
  config.survey.max_feedback_objects = 2;
  config.survey.reform.structure.adjustment = 0.5;
  config.survey.reform.content.expansion = 0.2;
  config.survey.reform.explain.radius = 3;
  config.survey.search.result_type = result_type;
  config.survey.search.k = 10;
  config.survey.search.objectrank.epsilon = 0.001;
  config.survey.user.relevant_pool = 30;
  config.num_users = 2;
  config.queries_per_user = 2;
  return config;
}

void PrintSeries(const std::string& label, const std::vector<double>& values,
                 int digits) {
  std::printf("%-28s", label.c_str());
  for (double v : values) std::printf(" %.*f", digits, v);
  std::printf("\n");
}

namespace {

std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void JsonObject::AppendKey(const std::string& key) {
  if (!body_.empty()) body_ += ",";
  body_ += "\"" + EscapeJson(key) + "\":";
}

JsonObject& JsonObject::Add(const std::string& key, const std::string& value) {
  AppendKey(key);
  body_ += "\"" + EscapeJson(value) + "\"";
  return *this;
}

JsonObject& JsonObject::Add(const std::string& key, const char* value) {
  return Add(key, std::string(value));
}

JsonObject& JsonObject::Add(const std::string& key, double value) {
  AppendKey(key);
  char buf[40];
  // %.17g round-trips doubles; JSON has no NaN/Inf, so map them to null.
  if (std::isfinite(value)) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  } else {
    std::snprintf(buf, sizeof(buf), "null");
  }
  body_ += buf;
  return *this;
}

JsonObject& JsonObject::Add(const std::string& key, long long value) {
  AppendKey(key);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::Add(const std::string& key,
                            unsigned long long value) {
  AppendKey(key);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::Add(const std::string& key, int value) {
  return Add(key, static_cast<long long>(value));
}

JsonObject& JsonObject::Add(const std::string& key, size_t value) {
  return Add(key, static_cast<unsigned long long>(value));
}

JsonObject& JsonObject::Add(const std::string& key, bool value) {
  AppendKey(key);
  body_ += value ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::AddRaw(const std::string& key,
                               const std::string& raw_json) {
  AppendKey(key);
  body_ += raw_json;
  return *this;
}

std::string JsonObject::ToString() const { return "{" + body_ + "}"; }

std::string JsonArray(const std::vector<std::string>& rendered_elements) {
  std::string out = "[";
  for (size_t i = 0; i < rendered_elements.size(); ++i) {
    if (i > 0) out += ",";
    out += rendered_elements[i];
  }
  out += "]";
  return out;
}

std::string GitHead() {
#ifdef ORX_GIT_HEAD
  return ORX_GIT_HEAD;
#else
  return "unknown";
#endif
}

std::string GitDescribe() {
#ifdef ORX_GIT_DESCRIBE
  return ORX_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

bool GitDirty() {
#ifdef ORX_GIT_DIRTY
  return ORX_GIT_DIRTY != 0;
#else
  return false;
#endif
}

JsonObject BenchRecord(const std::string& bench, const BenchDataset& dataset,
                       int threads, double wall_seconds) {
  JsonObject git;
  git.Add("head", GitHead())
      .Add("describe", GitDescribe())
      .Add("dirty", GitDirty());
  JsonObject ds;
  ds.Add("name", dataset.name)
      .Add("nodes", dataset.nodes)
      .Add("edges", dataset.edges);
  JsonObject record;
  record.Add("bench", bench)
      .AddRaw("git", git.ToString())
      .AddRaw("dataset", ds.ToString())
      .Add("threads", threads)
      .Add("wall_seconds", wall_seconds);
  return record;
}

bool WriteJsonFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace orx::bench
