// SpMV power-iteration kernel benchmark: the legacy per-iteration
// spawn-and-gather kernel vs the fused-weight persistent-pool kernel
// (docs/power_iteration.md), old vs new at 1/2/4/8 intra-query threads
// on a DBLP-scale synthetic graph. Emits BENCH_spmv.json in the shared
// bench_util record schema; the headline number is the 8-thread
// edges/second speedup.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/base_set.h"
#include "core/objectrank.h"
#include "text/query.h"

namespace {

struct KernelRun {
  std::string kernel;
  int threads = 0;
  double wall_seconds = 0.0;
  long long iterations = 0;
  double edges_per_second = 0.0;
  double iterations_per_second = 0.0;
};

// Repeats fixed-work solves (epsilon = 0, so every run executes exactly
// max_iterations SpMV passes) until `min_seconds` of wall time accrues.
KernelRun TimeKernel(const orx::core::ObjectRankEngine& engine,
                     const orx::core::BaseSet& base,
                     const orx::graph::TransferRates& rates,
                     orx::core::PowerKernel kernel, int threads,
                     int iterations_per_solve, double min_seconds) {
  orx::core::ObjectRankOptions options;
  options.epsilon = 0.0;
  options.max_iterations = iterations_per_solve;
  options.kernel = kernel;
  options.num_threads = threads;

  engine.Compute(base, rates, options);  // warm: pool started, layout built

  KernelRun run;
  run.kernel = kernel == orx::core::PowerKernel::kFused ? "fused" : "legacy";
  run.threads = threads;
  orx::Timer timer;
  while (timer.ElapsedSeconds() < min_seconds) {
    run.iterations += engine.Compute(base, rates, options).iterations;
  }
  run.wall_seconds = timer.ElapsedSeconds();
  const double edges = static_cast<double>(engine.graph().num_edges());
  run.iterations_per_second =
      static_cast<double>(run.iterations) / run.wall_seconds;
  run.edges_per_second = run.iterations_per_second * edges;
  return run;
}

}  // namespace

int main() {
  using namespace orx;
  const double scale = bench::ScaleFromEnv();
  const uint32_t papers =
      std::max<uint32_t>(200, static_cast<uint32_t>(32'000 * scale));
  std::printf("=== SpMV kernel: legacy spawn-per-iteration vs fused "
              "persistent-pool (scale=%.3f) ===\n\n", scale);

  // The bench_scaling DBLP-scale configuration: ~32k papers, 5 citations
  // each — the regime the paper's DBLP experiments run in.
  datasets::DblpGeneratorConfig config =
      datasets::DblpGeneratorConfig::Tiny(papers, /*seed=*/77);
  config.num_authors = papers / 2 + 100;
  config.avg_citations = 5.0;
  const datasets::DblpDataset dblp = datasets::GenerateDblp(config);
  const graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  const size_t nodes = dblp.dataset.data().num_nodes();
  const uint64_t edges = dblp.dataset.authority().num_edges();
  std::printf("graph: %zu nodes, %llu authority edges\n\n", nodes,
              static_cast<unsigned long long>(edges));

  text::QueryVector query(text::ParseQuery("data"));
  auto base = core::BuildBaseSet(dblp.dataset.corpus(), query);
  if (!base.ok() || base->empty()) {
    std::printf("query term missing at this scale; falling back to the "
                "global base set\n");
    base = core::GlobalBaseSet(nodes);
  }

  core::ObjectRankEngine engine(dblp.dataset.authority());
  constexpr int kIterationsPerSolve = 20;
  const double min_seconds = std::clamp(scale, 0.02, 1.0);

  TablePrinter table({"kernel", "threads", "iters", "wall (s)",
                      "Medges/s", "iters/s"});
  std::vector<KernelRun> runs;
  for (const core::PowerKernel kernel :
       {core::PowerKernel::kLegacy, core::PowerKernel::kFused}) {
    for (const int threads : {1, 2, 4, 8}) {
      const KernelRun run = TimeKernel(engine, *base, rates, kernel, threads,
                                       kIterationsPerSolve, min_seconds);
      table.AddRow({run.kernel, std::to_string(run.threads),
                    std::to_string(run.iterations),
                    FormatDouble(run.wall_seconds, 2),
                    FormatDouble(run.edges_per_second / 1e6, 2),
                    FormatDouble(run.iterations_per_second, 1)});
      runs.push_back(run);
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  auto at = [&](const std::string& kernel, int threads) -> const KernelRun& {
    for (const KernelRun& r : runs) {
      if (r.kernel == kernel && r.threads == threads) return r;
    }
    return runs.front();
  };
  const double speedup_8t =
      at("fused", 8).edges_per_second / at("legacy", 8).edges_per_second;
  const double speedup_1t =
      at("fused", 1).edges_per_second / at("legacy", 1).edges_per_second;
  std::printf("fused vs legacy edges/s: %.2fx at 1 thread, %.2fx at 8 "
              "threads (target: >= 2x at 8 threads)\n",
              speedup_1t, speedup_8t);

  double total_wall = 0.0;
  std::vector<std::string> rendered;
  for (const KernelRun& run : runs) {
    total_wall += run.wall_seconds;
    bench::JsonObject record;
    record.Add("kernel", run.kernel)
        .Add("threads", run.threads)
        .Add("iterations", run.iterations)
        .Add("wall_seconds", run.wall_seconds)
        .Add("edges_per_second", run.edges_per_second)
        .Add("iterations_per_second", run.iterations_per_second);
    rendered.push_back(record.ToString());
  }
  bench::JsonObject json = bench::BenchRecord(
      "spmv",
      bench::BenchDataset{"dblp-synthetic", nodes,
                          static_cast<size_t>(edges)},
      /*threads=*/8, total_wall);
  json.Add("papers", static_cast<unsigned long long>(papers))
      .Add("iterations_per_solve", kIterationsPerSolve)
      .Add("speedup_1t", speedup_1t)
      .Add("speedup_8t", speedup_8t)
      .AddRaw("runs", bench::JsonArray(rendered));
  bench::WriteJsonFile("BENCH_spmv.json", json.ToString());
  return 0;
}
