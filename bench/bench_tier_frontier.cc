// Quality-vs-latency frontier of the three execution tiers (ISSUE 9 /
// ROADMAP item 4): exact fused power iteration, approximate local
// forward push across an r_max sweep, and the precomputed rank cache
// dense vs compressed. For every tier the sweep reports precision@k and
// recall@k against the exact golden top-k, latency percentiles, and —
// for the bounded tiers — whether the reported additive error bound
// actually dominates the measured L-inf error (the property the
// tier-smoke CI gate asserts).
//
// Emits BENCH_tier_frontier.json (shared bench-record schema, one record
// per tier configuration). Honors ORX_BENCH_SCALE for smoke runs.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "common/histogram.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/rank_cache.h"
#include "core/searcher.h"
#include "text/query.h"

namespace {

using namespace orx;

/// One tier configuration of the sweep.
struct TierConfig {
  std::string name;
  core::SearchTier tier = core::SearchTier::kExact;
  double r_max = 0.0;                       // approximate tier only
  const core::RankCache* cache = nullptr;   // cached tier only
};

/// Golden outcome of one query under the exact tier.
struct Golden {
  std::unordered_set<uint64_t> top;  // exact top-k node set
  std::vector<double> scores;        // full exact vector
};

/// Aggregates of one tier over one df band (or the whole mix).
struct BandOutcome {
  LatencyHistogram latency;
  double precision_sum = 0.0;
  double recall_sum = 0.0;
  size_t queries = 0;
  size_t certified = 0;
  size_t escalated = 0;
  size_t cache_hits = 0;
  /// Largest measured L-inf vs the reference and largest reported bound,
  /// over queries that reported a positive bound.
  double max_measured_linf = 0.0;
  double max_reported_bound = 0.0;
  /// False iff some query's reported bound was below its measured error.
  bool bound_holds = true;
};

/// Aggregates of one tier: the whole mix plus per-band breakdown.
struct TierOutcome {
  BandOutcome all;
  std::map<std::string, BandOutcome> by_band;
};

}  // namespace

int main() {
  const double scale = bench::ScaleFromEnv();
  std::printf("=== Tier frontier: exact / approx(r_max) / cached tiers "
              "(scale=%.3f) ===\n\n",
              scale);
  datasets::DblpDataset dblp = datasets::GenerateDblp(bench::ScaledDblp(
      datasets::DblpGeneratorConfig::DblpComplete(), scale));
  const graph::DataGraph& data = dblp.dataset.data();
  const graph::AuthorityGraph& authority = dblp.dataset.authority();
  const text::Corpus& corpus = dblp.dataset.corpus();
  const graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  const bench::BenchDataset dataset_info{
      "dblp-complete-synthetic", data.num_nodes(), authority.num_edges()};
  std::printf("dataset: %zu nodes, %zu edges\n\n", dataset_info.nodes,
              dataset_info.edges);

  // Query mix across document-frequency bands. Locality decides which
  // tier wins: head terms seed base sets that span the graph (the push
  // frontier goes dense immediately — cache territory), while tail terms
  // keep the push local, so it certifies after touching a fraction of
  // the graph that the exact kernel must sweep in full every iteration.
  std::vector<std::pair<uint32_t, std::string>> by_df;
  for (text::TermId t = 0; t < corpus.vocab_size(); ++t) {
    if (corpus.Df(t) >= 3) by_df.emplace_back(corpus.Df(t), corpus.TermString(t));
  }
  std::sort(by_df.begin(), by_df.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  const size_t per_band = 8;
  std::vector<std::string> mix;
  std::vector<std::string> bands;  // parallel to mix: head / mid / tail
  auto add_band = [&](const char* band, size_t start) {
    for (size_t i = start; i < by_df.size() && i < start + per_band; ++i) {
      mix.push_back(by_df[i].second);
      bands.push_back(band);
    }
  };
  add_band("head", 0);
  add_band("mid", by_df.size() / 2);
  add_band("tail", by_df.size() > per_band ? by_df.size() - per_band : 0);
  for (size_t i = 0; i + 1 < by_df.size() && i < 8; i += 2) {
    mix.push_back(by_df[i].second + " " + by_df[i + 1].second);
    bands.push_back("head");
  }
  if (mix.empty()) {
    std::printf("corpus has no terms with df >= 3; nothing to rank\n");
    return 1;
  }

  const size_t k = 10;
  core::SearchOptions base_options;
  base_options.k = k;
  base_options.result_type = dblp.types.paper;
  // Each query is measured independently — warm starts would let the
  // previous query subsidize the next and blur the tier comparison.
  base_options.use_warm_start = false;

  // Rank cache over the mix's terms: one dense copy and one compressed
  // copy (identical vectors before compression), so the cached tier's
  // two variants differ only in representation.
  std::vector<std::string> cache_terms;
  {
    std::unordered_set<std::string> seen;
    for (const std::string& q : mix) {
      for (const std::string& term : text::ParseQuery(q)) {
        if (seen.insert(term).second) cache_terms.push_back(term);
      }
    }
  }
  core::RankCache::Options cache_options;
  cache_options.objectrank = base_options.objectrank;
  cache_options.bm25 = base_options.bm25;
  cache_options.build_threads = bench::BuildThreadsFromEnv();
  std::printf("building rank cache for %zu terms...\n", cache_terms.size());
  Timer cache_timer;
  core::RankCache dense_cache = core::RankCache::BuildForTerms(
      authority, corpus, rates, cache_terms, cache_options);
  core::RankCache compressed_cache = core::RankCache::BuildForTerms(
      authority, corpus, rates, cache_terms, cache_options);
  const core::RankCache::CompressionStats compression =
      compressed_cache.Compress();
  std::printf("cache built in %.2fs; compression: %s\n\n",
              cache_timer.ElapsedSeconds(), compression.ToString().c_str());

  std::vector<TierConfig> tiers;
  tiers.push_back({"exact", core::SearchTier::kExact, 0.0, nullptr});
  for (double r_max : {1e-5, 1e-6, 1e-7}) {
    tiers.push_back({"approx_rmax" + FormatDouble(-std::log10(r_max), 0),
                     core::SearchTier::kApproximate, r_max, nullptr});
  }
  tiers.push_back(
      {"cached_dense", core::SearchTier::kCached, 0.0, &dense_cache});
  tiers.push_back({"cached_compressed", core::SearchTier::kCached, 0.0,
                   &compressed_cache});

  // Exact goldens first: the quality reference every tier is scored
  // against. Solved far past the production epsilon (0.001) — the golden
  // must sit within ~1e-9 of the true fixpoint or its own solver error
  // would dominate the refined push bounds this bench is checking. The
  // timed exact tier below keeps production options; this pass is the
  // referee, not a contestant.
  std::vector<Golden> goldens(mix.size());
  {
    core::Searcher searcher(data, authority, corpus);
    core::SearchOptions options = base_options;
    options.tier = core::SearchTier::kExact;
    options.objectrank.epsilon = 1e-10;
    options.objectrank.max_iterations = 2000;
    for (size_t q = 0; q < mix.size(); ++q) {
      auto result =
          searcher.Search(text::QueryVector(text::ParseQuery(mix[q])),
                          rates, options);
      if (!result.ok()) continue;  // keyword absent at tiny scales
      for (const core::ScoredNode& node : result->top) {
        goldens[q].top.insert(node.node);
      }
      goldens[q].scores = std::move(result->scores);
    }
  }

  const int repeats = 3;
  std::vector<TierOutcome> outcomes(tiers.size());
  // Per-query dense-cache vectors, captured while the cached_dense tier
  // runs. The compression bound certifies representation error relative
  // to the dense precomputed vectors — not to a fresh power iteration,
  // which differs from them by the builder's solver tolerance — so the
  // compressed tier's L-inf is measured against these.
  std::vector<std::vector<double>> dense_reference(mix.size());
  for (size_t t = 0; t < tiers.size(); ++t) {
    const TierConfig& tier = tiers[t];
    TierOutcome& out = outcomes[t];
    core::Searcher searcher(data, authority, corpus);
    if (tier.cache != nullptr) searcher.AttachRankCache(tier.cache);
    core::SearchOptions options = base_options;
    options.tier = tier.tier;
    if (tier.r_max > 0.0) options.approx.r_max = tier.r_max;
    for (size_t q = 0; q < mix.size(); ++q) {
      if (goldens[q].scores.empty()) continue;
      const text::QueryVector query(text::ParseQuery(mix[q]));
      BandOutcome& band = out.by_band[bands[q]];
      const auto record_both = [&](const auto& fn) {
        fn(out.all);
        fn(band);
      };
      for (int r = 0; r < repeats; ++r) {
        auto result = searcher.Search(query, rates, options);
        if (!result.ok()) continue;
        record_both([&](BandOutcome& b) { b.latency.Record(result->seconds); });
        if (r != 0) continue;  // quality is deterministic per query
        size_t overlap = 0;
        for (const core::ScoredNode& node : result->top) {
          overlap += goldens[q].top.count(node.node);
        }
        const double precision =
            static_cast<double>(overlap) /
            static_cast<double>(std::max<size_t>(1, result->top.size()));
        const double recall =
            static_cast<double>(overlap) /
            static_cast<double>(std::max<size_t>(1, goldens[q].top.size()));
        if (tier.cache == &dense_cache && result->from_cache) {
          dense_reference[q] = result->scores;
        }
        double linf = -1.0;
        if (result->error_bound > 0.0) {
          const std::vector<double>& reference =
              (tier.cache == &compressed_cache && !dense_reference[q].empty())
                  ? dense_reference[q]
                  : goldens[q].scores;
          linf = 0.0;
          for (size_t v = 0; v < reference.size(); ++v) {
            linf = std::max(linf,
                            std::abs(reference[v] - result->scores[v]));
          }
        }
        record_both([&](BandOutcome& b) {
          ++b.queries;
          if (result->certified) ++b.certified;
          if (result->escalated) ++b.escalated;
          if (result->from_cache) ++b.cache_hits;
          b.precision_sum += precision;
          b.recall_sum += recall;
          if (linf >= 0.0) {
            b.max_measured_linf = std::max(b.max_measured_linf, linf);
            b.max_reported_bound =
                std::max(b.max_reported_bound, result->error_bound);
            if (linf > result->error_bound) b.bound_holds = false;
          }
        });
      }
    }
  }

  // Speedups are banded against the exact tier's p50 for the *same* band:
  // the exact kernel's cost is query-independent, but banding keeps the
  // ratio honest anyway.
  const auto exact_p50_of = [&](const std::string& band) {
    if (band == "all") return outcomes[0].all.latency.Percentile(50);
    const auto it = outcomes[0].by_band.find(band);
    return it == outcomes[0].by_band.end() ? 0.0
                                           : it->second.latency.Percentile(50);
  };
  TablePrinter table({"tier", "queries", "certified", "escalated",
                      "precision@10", "p50 (ms)", "p99 (ms)", "speedup",
                      "tail p50", "tail speedup", "bound"});
  std::vector<std::string> records;
  Timer wall;
  for (size_t t = 0; t < tiers.size(); ++t) {
    const TierConfig& tier = tiers[t];
    const TierOutcome& out = outcomes[t];
    std::vector<std::pair<std::string, const BandOutcome*>> slices;
    slices.emplace_back("all", &out.all);
    for (const auto& [band, outcome] : out.by_band) {
      slices.emplace_back(band, &outcome);
    }
    for (const auto& [band, outcome] : slices) {
      const double n = std::max<size_t>(1, outcome->queries);
      const double exact_p50 = exact_p50_of(band);
      const double p50 = outcome->latency.Percentile(50);
      bench::JsonObject record = bench::BenchRecord(
          "tier_frontier", dataset_info, 1, wall.ElapsedSeconds());
      record.Add("tier", tier.name)
          .Add("band", band)
          .Add("r_max", tier.r_max)
          .Add("k", k)
          .Add("queries", outcome->queries)
          .Add("certified", outcome->certified)
          .Add("escalated", outcome->escalated)
          .Add("cache_hits", outcome->cache_hits)
          .Add("precision_at_k", outcome->precision_sum / n)
          .Add("recall_at_k", outcome->recall_sum / n)
          .Add("latency_p50_ms", p50 * 1e3)
          .Add("latency_p95_ms", outcome->latency.Percentile(95) * 1e3)
          .Add("latency_p99_ms", outcome->latency.Percentile(99) * 1e3)
          .Add("latency_mean_ms", outcome->latency.MeanSeconds() * 1e3)
          .Add("speedup_vs_exact_p50", p50 > 0.0 ? exact_p50 / p50 : 0.0)
          .Add("max_measured_linf", outcome->max_measured_linf)
          .Add("max_reported_bound", outcome->max_reported_bound)
          .Add("bound_holds", outcome->bound_holds);
      if (tier.name == "cached_compressed" && band == "all") {
        record
            .Add("cache_bytes_dense",
                 static_cast<unsigned long long>(compression.bytes_before))
            .Add("cache_bytes_compressed",
                 static_cast<unsigned long long>(compression.bytes_after))
            .Add("cache_compression_ratio",
                 compression.bytes_after > 0
                     ? static_cast<double>(compression.bytes_before) /
                           static_cast<double>(compression.bytes_after)
                     : 0.0);
      }
      records.push_back(record.ToString());
    }
    const BandOutcome& all = out.all;
    const double n = std::max<size_t>(1, all.queries);
    const double p50 = all.latency.Percentile(50);
    const double speedup = p50 > 0.0 ? exact_p50_of("all") / p50 : 0.0;
    double tail_p50 = 0.0;
    double tail_speedup = 0.0;
    if (const auto it = out.by_band.find("tail"); it != out.by_band.end()) {
      tail_p50 = it->second.latency.Percentile(50);
      tail_speedup = tail_p50 > 0.0 ? exact_p50_of("tail") / tail_p50 : 0.0;
    }
    bool bound_holds = all.bound_holds;
    table.AddRow(
        {tier.name, std::to_string(all.queries),
         std::to_string(all.certified), std::to_string(all.escalated),
         FormatDouble(all.precision_sum / n, 4), FormatDouble(p50 * 1e3, 3),
         FormatDouble(all.latency.Percentile(99) * 1e3, 3),
         FormatDouble(speedup, 1) + "x", FormatDouble(tail_p50 * 1e3, 3),
         FormatDouble(tail_speedup, 1) + "x", bound_holds ? "ok" : "FAIL"});
  }
  std::printf("%s", table.ToString().c_str());
  bench::WriteJsonFile("BENCH_tier_frontier.json",
                       bench::JsonArray(records));

  // The frontier is informational; the bound is a hard property. Exit
  // nonzero if any tier reported a bound its measured error exceeded —
  // the same contract approx_tier_test.cc and the tier-smoke gate hold.
  for (const TierOutcome& out : outcomes) {
    if (!out.all.bound_holds) {
      std::fprintf(stderr, "tier frontier: FAIL — a reported error bound "
                           "was below the measured L-inf error\n");
      return 1;
    }
  }
  std::printf("\ntier frontier: every reported bound dominates its "
              "measured L-inf error\n");
  return 0;
}
