// Figure 17 reproduction: DS7cancer execution — the cancer-focused subset
// (PubMed publications about "cancer" plus all related entities), derived
// from DS7 exactly the way the paper derived it.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace orx;
  const double scale = bench::ScaleFromEnv();
  std::printf("=== Figure 17: DS7cancer execution (scale=%.3f) ===\n\n",
              scale);
  datasets::BioDataset ds7 = datasets::GenerateBio(
      bench::ScaledBio(datasets::BioGeneratorConfig::Ds7(), scale));
  datasets::BioDataset cancer = datasets::ExtractBioSubset(ds7, "cancer");
  if (cancer.dataset.data().num_nodes() == 0) {
    std::printf("no cancer publications at this scale; nothing to do\n");
    return 0;
  }
  std::printf("dataset: %zu nodes, %zu edges (subset of DS7's %zu nodes)\n\n",
              cancer.dataset.data().num_nodes(),
              cancer.dataset.data().num_edges(),
              ds7.dataset.data().num_nodes());

  bench::SweepResult sweep = bench::RunBioSweep(
      cancer, bench::PerformanceSweepConfig(cancer.types.pubmed));
  bench::PrintPerformanceFigure(sweep);
  std::printf("\nPaper (Figure 17): ~2.3 s initial, ~0.7-0.9 s "
              "reformulated; iterations ~4-5 with warm starts helping.\n");
  return 0;
}
