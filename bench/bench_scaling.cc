// Scaling study: how the three interactive operations (ObjectRank2
// query, result explanation, query reformulation) scale with graph size —
// the quantitative backing for Section 6's feasibility claim and for the
// paper's advice to define focused subsets for exploratory search.

#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/searcher.h"
#include "explain/explainer.h"
#include "reformulate/reformulator.h"
#include "text/query.h"

int main() {
  using namespace orx;
  const double scale = bench::ScaleFromEnv();
  std::printf("=== Scaling: query / explain / reformulate vs graph size "
              "(scale=%.3f) ===\n\n", scale);

  TablePrinter table({"papers", "nodes", "auth. edges", "build (s)",
                      "query (ms)", "iters", "explain (ms)",
                      "reformulate (ms)"});
  for (uint32_t papers :
       {uint32_t{2'000}, uint32_t{8'000}, uint32_t{32'000},
        uint32_t{128'000}, uint32_t{512'000}}) {
    const uint32_t scaled =
        std::max<uint32_t>(200, static_cast<uint32_t>(papers * scale));
    datasets::DblpGeneratorConfig config =
        datasets::DblpGeneratorConfig::Tiny(scaled, /*seed=*/77);
    config.num_authors = scaled / 2 + 100;
    config.avg_citations = 5.0;

    Timer build_timer;
    datasets::DblpDataset dblp = datasets::GenerateDblp(config);
    const double build_seconds = build_timer.ElapsedSeconds();
    graph::TransferRates rates =
        datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);

    core::Searcher searcher(dblp.dataset.data(), dblp.dataset.authority(),
                            dblp.dataset.corpus());
    core::SearchOptions options;
    options.result_type = dblp.types.paper;
    options.use_warm_start = false;
    text::QueryVector query(text::ParseQuery("data"));

    Timer query_timer;
    auto search = searcher.Search(query, rates, options);
    const double query_ms = query_timer.ElapsedMillis();
    if (!search.ok() || search->top.empty()) continue;

    auto base = core::BuildBaseSet(dblp.dataset.corpus(), query);
    explain::Explainer explainer(dblp.dataset.data(),
                                 dblp.dataset.authority());
    Timer explain_timer;
    auto explanation = explainer.Explain(search->top[0].node, *base,
                                         search->scores, rates, 0.85, {});
    const double explain_ms = explain_timer.ElapsedMillis();

    reform::Reformulator reformulator(dblp.dataset.data(),
                                      dblp.dataset.authority(),
                                      dblp.dataset.corpus());
    const graph::NodeId feedback[] = {search->top[0].node};
    Timer reform_timer;
    auto reformulated = reformulator.Reformulate(
        query, rates, *base, search->scores, feedback, {});
    const double reform_ms = reform_timer.ElapsedMillis();
    if (!explanation.ok() || !reformulated.ok()) continue;

    table.AddRow({std::to_string(scaled),
                  std::to_string(dblp.dataset.data().num_nodes()),
                  std::to_string(dblp.dataset.authority().num_edges()),
                  FormatDouble(build_seconds, 2), FormatDouble(query_ms, 1),
                  std::to_string(search->iterations),
                  FormatDouble(explain_ms, 1), FormatDouble(reform_ms, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Expected: query time linear in edges x iterations; explain "
              "and reformulate grow with the radius-3 ball, staying well "
              "under the query cost at every size.\n");
  return 0;
}
