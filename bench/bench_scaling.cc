// Scaling study, two parts:
//
//  1. Interactive operations (ObjectRank2 query, result explanation,
//     query reformulation) vs graph size — the quantitative backing for
//     Section 6's feasibility claim and the paper's advice to define
//     focused subsets for exploratory search.
//
//  2. Paper-scale container sweep over the DblpCompleteScaled presets
//     (1x / 5x / 25x DBLPcomplete; 25x is >100M authority edges): for
//     each preset, generate, pack into an ORXD2 mmap container, measure
//     cold vs warm snapshot attach, then stream the power iteration off
//     the mmap-backed fused layout and report edges/s (total and per
//     socket), cross-checking the mmap scores against the in-memory
//     engine. Presets whose estimated footprint exceeds available RAM
//     are skipped (and logged), so the sweep degrades gracefully on
//     small machines. Emits BENCH_scaling.json in the shared record
//     schema.
//
// ORX_BENCH_SCALE in (0, 1] shrinks both parts for smoke runs;
// ORX_SCALING_FACTORS (comma-separated, e.g. "1") selects which
// presets part 2 sweeps — tools/scale_smoke.sh sets it to run just the
// paper-scale 1x preset as a CI gate.

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/base_set.h"
#include "core/objectrank.h"
#include "core/searcher.h"
#include "explain/explainer.h"
#include "io/snapshot_io.h"
#include "reformulate/reformulator.h"
#include "text/query.h"

namespace {

using namespace orx;

/// DBLPcomplete multipliers to sweep: ORX_SCALING_FACTORS as a
/// comma-separated list (e.g. "1" for the CI scale-smoke), default
/// 1,5,25 — the last crossing 100M authority edges at full scale.
std::vector<uint32_t> FactorsFromEnv() {
  const char* env = std::getenv("ORX_SCALING_FACTORS");
  if (env == nullptr || *env == '\0') return {1, 5, 25};
  std::vector<uint32_t> factors;
  uint32_t current = 0;
  bool have_digit = false;
  for (const char* p = env;; ++p) {
    if (*p >= '0' && *p <= '9') {
      current = current * 10 + static_cast<uint32_t>(*p - '0');
      have_digit = true;
    } else if (*p == ',' || *p == '\0') {
      if (have_digit && current > 0) factors.push_back(current);
      current = 0;
      have_digit = false;
      if (*p == '\0') break;
    }
  }
  return factors.empty() ? std::vector<uint32_t>{1, 5, 25} : factors;
}

/// MemAvailable from /proc/meminfo in bytes; 0 when unreadable (the
/// sweep then skips nothing and trusts the operator).
size_t AvailableMemoryBytes() {
  std::ifstream meminfo("/proc/meminfo");
  std::string key;
  size_t kb = 0;
  std::string unit;
  while (meminfo >> key >> kb >> unit) {
    if (key == "MemAvailable:") return kb * 1024;
  }
  return 0;
}

/// Physical CPU sockets (unique "physical id" values in /proc/cpuinfo);
/// 1 when unreadable, so edges/s-per-socket degrades to plain edges/s.
int NumSockets() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::set<std::string> ids;
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("physical id", 0) == 0) ids.insert(line);
  }
  return ids.empty() ? 1 : static_cast<int>(ids.size());
}

/// Drops `path`'s pages from the page cache so the next mmap open
/// measures a cold attach. Advisory (needs no privileges); on failure the
/// "cold" number quietly becomes a warm one, which is the safe direction.
void EvictFromPageCache(const std::string& path) {
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  fdatasync(fd);
  posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  close(fd);
}

struct SweepPoint {
  uint32_t factor = 0;
  size_t nodes = 0;
  size_t edges = 0;
  double generate_seconds = 0.0;
  double pack_seconds = 0.0;
  size_t container_bytes = 0;
  double cold_attach_ms = 0.0;
  double warm_attach_ms = 0.0;
  double power_seconds = 0.0;
  long long power_iterations = 0;
  double edges_per_second = 0.0;
  double linf_vs_memory = 0.0;
};

/// One preset: generate -> pack -> cold/warm mmap attach -> power
/// iteration off the mmap layout -> compare against the in-memory
/// engine. Returns false when any step fails (already logged).
bool RunPreset(uint32_t factor, double scale, const std::string& dir,
               int threads, SweepPoint* out) {
  datasets::DblpGeneratorConfig config =
      bench::ScaledDblp(datasets::DblpGeneratorConfig::DblpCompleteScaled(
                            factor),
                        scale);
  out->factor = factor;

  Timer generate_timer;
  datasets::DblpDataset dblp = datasets::GenerateDblp(config);
  out->generate_seconds = generate_timer.ElapsedSeconds();
  out->nodes = dblp.dataset.data().num_nodes();
  out->edges = dblp.dataset.authority().num_edges();
  const graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  std::printf("  generated %zu nodes / %zu edges in %.1fs\n", out->nodes,
              out->edges, out->generate_seconds);

  const std::string path =
      dir + "/bench_scaling_" + std::to_string(factor) + "x.orxd2";
  Timer pack_timer;
  if (Status s = io::WriteDatasetContainer(dblp.dataset, rates, path);
      !s.ok()) {
    std::printf("  pack failed: %s\n", s.ToString().c_str());
    return false;
  }
  out->pack_seconds = pack_timer.ElapsedSeconds();
  {
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    out->container_bytes = f.good() ? static_cast<size_t>(f.tellg()) : 0;
  }

  // Attach = open + map + header/TOC validation, the orx_serve startup
  // path. Cold drops the page cache first; warm immediately re-opens.
  io::MappedDatasetOptions attach_options;
  attach_options.deep_validate = false;
  EvictFromPageCache(path);
  Timer cold_timer;
  auto mapped = io::OpenMappedDataset(path, attach_options);
  out->cold_attach_ms = cold_timer.ElapsedMillis();
  if (!mapped.ok()) {
    std::printf("  mmap open failed: %s\n",
                mapped.status().ToString().c_str());
    std::remove(path.c_str());
    return false;
  }
  {
    Timer warm_timer;
    auto warm = io::OpenMappedDataset(path, attach_options);
    out->warm_attach_ms = warm_timer.ElapsedMillis();
    if (!warm.ok()) return false;
  }

  // Fixed-work power iteration streaming the mmap-backed fused layout
  // (the snapshot seeds its weight cache with the file-backed SELL).
  serve::ServeSnapshot snapshot = io::SnapshotFromMapped(*mapped);
  core::ObjectRankEngine mmap_engine(*snapshot.authority,
                                     snapshot.fused_cache);
  const core::BaseSet base = core::GlobalBaseSet(out->nodes);
  core::ObjectRankOptions options;
  options.epsilon = 0.0;
  options.max_iterations = 10;
  options.num_threads = threads;
  Timer power_timer;
  core::ObjectRankResult mmap_result =
      mmap_engine.Compute(base, rates, options);
  out->power_seconds = power_timer.ElapsedSeconds();
  out->power_iterations = mmap_result.iterations;
  out->edges_per_second = static_cast<double>(out->edges) *
                          static_cast<double>(mmap_result.iterations) /
                          out->power_seconds;

  // Equivalence gate: the zero-copy path must score exactly like the
  // in-memory engine (the container stores the same doubles the builder
  // computed, so any drift is a serialization bug, not roundoff).
  core::ObjectRankEngine memory_engine(dblp.dataset.authority());
  core::ObjectRankResult memory_result =
      memory_engine.Compute(base, rates, options);
  for (size_t i = 0; i < memory_result.scores.size(); ++i) {
    out->linf_vs_memory =
        std::max(out->linf_vs_memory,
                 std::abs(memory_result.scores[i] - mmap_result.scores[i]));
  }
  std::remove(path.c_str());
  if (out->linf_vs_memory > 1e-12) {
    std::printf("  FAIL: mmap vs in-memory L-inf %.3e exceeds 1e-12\n",
                out->linf_vs_memory);
    return false;
  }
  return true;
}

}  // namespace

int main() {
  const double scale = bench::ScaleFromEnv();
  std::printf("=== Scaling: query / explain / reformulate vs graph size "
              "(scale=%.3f) ===\n\n", scale);

  TablePrinter table({"papers", "nodes", "auth. edges", "build (s)",
                      "query (ms)", "iters", "explain (ms)",
                      "reformulate (ms)"});
  for (uint32_t papers :
       {uint32_t{2'000}, uint32_t{8'000}, uint32_t{32'000},
        uint32_t{128'000}, uint32_t{512'000}}) {
    const uint32_t scaled =
        std::max<uint32_t>(200, static_cast<uint32_t>(papers * scale));
    datasets::DblpGeneratorConfig config =
        datasets::DblpGeneratorConfig::Tiny(scaled, /*seed=*/77);
    config.num_authors = scaled / 2 + 100;
    config.avg_citations = 5.0;

    Timer build_timer;
    datasets::DblpDataset dblp = datasets::GenerateDblp(config);
    const double build_seconds = build_timer.ElapsedSeconds();
    graph::TransferRates rates =
        datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);

    core::Searcher searcher(dblp.dataset.data(), dblp.dataset.authority(),
                            dblp.dataset.corpus());
    core::SearchOptions options;
    options.result_type = dblp.types.paper;
    options.use_warm_start = false;
    text::QueryVector query(text::ParseQuery("data"));

    Timer query_timer;
    auto search = searcher.Search(query, rates, options);
    const double query_ms = query_timer.ElapsedMillis();
    if (!search.ok() || search->top.empty()) continue;

    auto base = core::BuildBaseSet(dblp.dataset.corpus(), query);
    explain::Explainer explainer(dblp.dataset.data(),
                                 dblp.dataset.authority());
    Timer explain_timer;
    auto explanation = explainer.Explain(search->top[0].node, *base,
                                         search->scores, rates, 0.85, {});
    const double explain_ms = explain_timer.ElapsedMillis();

    reform::Reformulator reformulator(dblp.dataset.data(),
                                      dblp.dataset.authority(),
                                      dblp.dataset.corpus());
    const graph::NodeId feedback[] = {search->top[0].node};
    Timer reform_timer;
    auto reformulated = reformulator.Reformulate(
        query, rates, *base, search->scores, feedback, {});
    const double reform_ms = reform_timer.ElapsedMillis();
    if (!explanation.ok() || !reformulated.ok()) continue;

    table.AddRow({std::to_string(scaled),
                  std::to_string(dblp.dataset.data().num_nodes()),
                  std::to_string(dblp.dataset.authority().num_edges()),
                  FormatDouble(build_seconds, 2), FormatDouble(query_ms, 1),
                  std::to_string(search->iterations),
                  FormatDouble(explain_ms, 1), FormatDouble(reform_ms, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Expected: query time linear in edges x iterations; explain "
              "and reformulate grow with the radius-3 ball, staying well "
              "under the query cost at every size.\n\n");

  // ---- Part 2: paper-scale mmap container sweep --------------------
  const int threads = static_cast<int>(ThreadPool::HardwareThreads());
  const int sockets = NumSockets();
  const size_t available = AvailableMemoryBytes();
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string dir = tmpdir != nullptr ? tmpdir : "/tmp";
  std::printf("=== Scaling: DBLPcomplete presets through the ORXD2 mmap "
              "path (%d threads, %d socket%s, %.1f GB available) ===\n\n",
              threads, sockets, sockets == 1 ? "" : "s",
              static_cast<double>(available) / 1e9);

  TablePrinter sweep_table({"preset", "nodes", "edges", "gen (s)",
                            "pack (s)", "bytes", "cold (ms)", "warm (ms)",
                            "Medges/s", "Medges/s/skt", "Linf"});
  std::vector<std::string> records;
  bool preset_failed = false;
  for (uint32_t factor : FactorsFromEnv()) {
    // Footprint estimate: two dataset copies (generated + page cache for
    // the mapped container) plus score vectors. ~2.5 KB/paper and
    // ~80 B/edge are deliberately generous — skipping one preset too
    // many beats the OOM killer ending the whole sweep.
    const double papers =
        std::max(200.0, 500'000.0 * factor * scale);
    const double estimated_bytes = papers * 2'500 + papers * 9 * 80;
    if (available > 0 &&
        estimated_bytes > 0.6 * static_cast<double>(available)) {
      std::printf("%ux DBLPcomplete: skipped (estimated %.1f GB > 60%% of "
                  "%.1f GB available)\n",
                  factor, estimated_bytes / 1e9,
                  static_cast<double>(available) / 1e9);
      continue;
    }
    std::printf("%ux DBLPcomplete:\n", factor);
    SweepPoint point;
    if (!RunPreset(factor, scale, dir, threads, &point)) {
      preset_failed = true;
      continue;
    }

    const double per_socket = point.edges_per_second / sockets;
    sweep_table.AddRow(
        {std::to_string(factor) + "x", std::to_string(point.nodes),
         std::to_string(point.edges),
         FormatDouble(point.generate_seconds, 1),
         FormatDouble(point.pack_seconds, 1),
         std::to_string(point.container_bytes),
         FormatDouble(point.cold_attach_ms, 2),
         FormatDouble(point.warm_attach_ms, 2),
         FormatDouble(point.edges_per_second / 1e6, 1),
         FormatDouble(per_socket / 1e6, 1),
         FormatDouble(point.linf_vs_memory, 3)});

    bench::JsonObject record = bench::BenchRecord(
        "scaling",
        bench::BenchDataset{"dblp-complete-" + std::to_string(factor) + "x",
                            point.nodes, point.edges},
        threads, point.power_seconds);
    record.Add("factor", static_cast<int>(factor))
        .Add("generate_seconds", point.generate_seconds)
        .Add("pack_seconds", point.pack_seconds)
        .Add("container_bytes", point.container_bytes)
        .Add("cold_attach_ms", point.cold_attach_ms)
        .Add("warm_attach_ms", point.warm_attach_ms)
        .Add("power_iterations", point.power_iterations)
        .Add("edges_per_second", point.edges_per_second)
        .Add("edges_per_second_per_socket", per_socket)
        .Add("sockets", sockets)
        .Add("linf_vs_memory", point.linf_vs_memory);
    records.push_back(record.ToString());
  }
  std::printf("\n%s\n", sweep_table.ToString().c_str());
  std::printf("Expected: attach stays O(1) in dataset size (cold pays one "
              "page of faults, warm is microseconds); edges/s per socket "
              "is flat across presets once the layout no longer fits in "
              "LLC.\n");
  bench::WriteJsonFile("BENCH_scaling.json", bench::JsonArray(records));
  // A preset that *ran* and failed (pack error, attach error, score
  // divergence) is a hard failure; RAM-skipped presets are not.
  return (preset_failed || records.empty()) ? 1 : 0;
}
