// Thread-sweep for the parallel RankCache build: per-term ObjectRank
// vectors are independent (the combination of Section 6's precomputation
// strategy is linear in them), so the offline build should scale with
// worker threads while serializing byte-identically to the sequential
// build. Reports wall time, speedup vs 1 thread, iteration counts, and
// per-term p50/p95 for each thread count.

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/rank_cache.h"
#include "text/query.h"

int main() {
  using namespace orx;
  const double scale = bench::ScaleFromEnv();
  const int max_threads = bench::BuildThreadsFromEnv();
  std::printf("=== Precompute scaling: RankCache::BuildForTerms vs worker "
              "threads (scale=%.3f, hw=%zu) ===\n\n",
              scale, ThreadPool::HardwareThreads());
  datasets::DblpDataset dblp = datasets::GenerateDblp(
      bench::ScaledDblp(datasets::DblpGeneratorConfig::DblpTop(), scale));
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  std::printf("dataset: %zu nodes, %zu authority edges\n\n",
              dblp.dataset.data().num_nodes(),
              dblp.dataset.authority().num_edges());

  // The term workload: the survey query mix padded with the most frequent
  // corpus terms, so the sweep ranks enough terms to keep every worker
  // busy.
  std::vector<std::string> terms;
  for (const std::string& q : bench::DblpSurveyQueries()) {
    for (const std::string& term : text::ParseQuery(q)) {
      terms.push_back(term);
    }
  }
  const text::Corpus& corpus = dblp.dataset.corpus();
  std::vector<std::pair<uint32_t, std::string>> by_df;
  for (text::TermId t = 0; t < corpus.vocab_size(); ++t) {
    by_df.emplace_back(corpus.Df(t), corpus.TermString(t));
  }
  std::sort(by_df.begin(), by_df.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (size_t i = 0; i < by_df.size() && terms.size() < 48; ++i) {
    terms.push_back(by_df[i].second);
  }

  core::RankCache::Options options;
  const bench::BenchDataset dataset_info{
      "dblp-top-synthetic", dblp.dataset.data().num_nodes(),
      dblp.dataset.authority().num_edges()};
  auto record_point = [&](int threads,
                          const core::RankCache::BuildStats& stats) {
    bench::JsonObject record = bench::BenchRecord(
        "precompute_scaling", dataset_info, threads, stats.wall_seconds);
    record.Add("terms_built", stats.terms_built)
        .Add("total_iterations", stats.total_iterations)
        .Add("term_seconds_p50", stats.term_seconds_p50)
        .Add("term_seconds_p95", stats.term_seconds_p95);
    return record.ToString();
  };
  std::vector<std::string> records;

  // Sequential reference build: the determinism baseline.
  options.build_threads = 1;
  core::RankCache::BuildStats base_stats;
  core::RankCache reference = core::RankCache::BuildForTerms(
      dblp.dataset.authority(), dblp.dataset.corpus(), rates, terms, options,
      &base_stats);
  std::stringstream reference_bytes;
  if (!reference.Serialize(reference_bytes).ok()) {
    std::printf("reference serialization failed\n");
    return 1;
  }
  const double base_seconds = base_stats.wall_seconds;
  records.push_back(record_point(1, base_stats));

  TablePrinter table({"threads", "build (s)", "speedup", "iters",
                      "term p50 (ms)", "term p95 (ms)", "bytes identical"});
  table.AddRow({"1", FormatDouble(base_seconds, 2), "1.0x",
                std::to_string(base_stats.total_iterations),
                FormatDouble(base_stats.term_seconds_p50 * 1e3, 1),
                FormatDouble(base_stats.term_seconds_p95 * 1e3, 1), "(ref)"});
  for (int threads = 2; threads <= max_threads; threads *= 2) {
    options.build_threads = threads;
    core::RankCache::BuildStats stats;
    core::RankCache cache = core::RankCache::BuildForTerms(
        dblp.dataset.authority(), dblp.dataset.corpus(), rates, terms,
        options, &stats);
    std::stringstream bytes;
    if (!cache.Serialize(bytes).ok()) {
      std::printf("serialization failed at %d threads\n", threads);
      return 1;
    }
    const bool identical = bytes.str() == reference_bytes.str();
    records.push_back(record_point(threads, stats));
    table.AddRow({std::to_string(threads),
                  FormatDouble(stats.wall_seconds, 2),
                  FormatDouble(base_seconds /
                                   std::max(stats.wall_seconds, 1e-9), 1) +
                      "x",
                  std::to_string(stats.total_iterations),
                  FormatDouble(stats.term_seconds_p50 * 1e3, 1),
                  FormatDouble(stats.term_seconds_p95 * 1e3, 1),
                  identical ? "yes" : "NO"});
    if (!identical) {
      std::printf("%s\n", table.ToString().c_str());
      std::printf("DETERMINISM VIOLATION at %d threads\n", threads);
      return 1;
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  bench::WriteJsonFile("BENCH_precompute_scaling.json",
                       bench::JsonArray(records));
  std::printf("Each term's power iteration is sequential; threads only "
              "change which worker ranks which term, never the arithmetic, "
              "so the serialized cache must be byte-identical at every "
              "thread count. Speedup tracks physical cores (the per-term "
              "pull loops are memory-bound).\n");
  return 0;
}
