// Figure 12 reproduction: external survey — average precision using only
// structure-based reformulation (C_f = 0.5) over 5 feedback iterations,
// averaged over 20 queries by 10 users (2 queries per user) on DBLPtop.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace orx;
  const double scale = bench::ScaleFromEnv();
  std::printf("=== Figure 12: external survey, structure-only "
              "reformulation with Cf=0.5 (scale=%.3f) ===\n\n", scale);
  datasets::DblpDataset dblp = datasets::GenerateDblp(
      bench::ScaledDblp(datasets::DblpGeneratorConfig::DblpTop(), scale));

  bench::SweepConfig config;
  config.survey.feedback_iterations = 5;
  config.survey.max_feedback_objects = 2;
  config.survey.reform.structure.adjustment = 0.5;
  config.survey.reform.content.expansion = 0.0;
  config.survey.reform.explain.radius = 3;
  config.survey.search.result_type = dblp.types.paper;
  config.survey.search.k = 10;
  config.survey.user.relevant_pool = 30;
  config.num_users = 10;
  config.queries_per_user = 2;
  config.user_noise = 0.25;  // external subjects vary more
  config.seed = 20080612;
  config.initial_rate = 0.3;

  bench::SweepResult sweep = bench::RunDblpSweep(dblp, config);
  std::printf("%-28s %s\n", "",
              "initial  reform1  reform2  reform3  reform4  reform5");
  bench::PrintSeries("structure-only", sweep.precision);
  std::printf("\n(%d sessions) Paper (Figure 12): precision climbs from "
              "~27%% to ~35%% and flattens/dips at the last iteration.\n",
              sweep.sessions);
  return 0;
}
