// Figure 10 reproduction: internal survey — average residual-collection
// precision of the initial query and 4 reformulated queries on DBLPtop,
// for the three calibration settings of Section 6.1.1:
//   content-only          (C_f = 0,   C_e = 0.2)
//   content & structure   (C_f = 0.5, C_e = 0.2)
//   structure-only        (C_f = 0.5, C_e = 0)
// The paper's finding: structure-only performs best (the judges are
// domain experts who already know the right keywords, so traditional
// query expansion does not help).

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace orx;

bench::SweepConfig MakeConfig(const datasets::DblpDataset& dblp, double cf,
                              double ce) {
  bench::SweepConfig config;
  config.survey.feedback_iterations = 4;
  config.survey.max_feedback_objects = 2;
  config.survey.reform.structure.adjustment = cf;
  config.survey.reform.content.expansion = ce;
  config.survey.reform.content.decay = 0.5;
  config.survey.reform.explain.radius = 3;
  config.survey.search.result_type = dblp.types.paper;
  config.survey.search.k = 10;
  config.survey.user.relevant_pool = 30;
  config.num_users = 5;
  config.queries_per_user = 5;
  config.initial_rate = 0.3;
  return config;
}

}  // namespace

int main() {
  const double scale = bench::ScaleFromEnv();
  std::printf("=== Figure 10: internal survey, average precision per "
              "feedback iteration (scale=%.3f) ===\n\n", scale);
  datasets::DblpDataset dblp = datasets::GenerateDblp(
      bench::ScaledDblp(datasets::DblpGeneratorConfig::DblpTop(), scale));

  std::printf("%-28s %s\n", "setting",
              "initial  reform1  reform2  reform3  reform4");
  struct Setting {
    const char* name;
    double cf, ce;
  };
  for (const Setting& s :
       {Setting{"content-only (Ce=0.2)", 0.0, 0.2},
        Setting{"content+structure", 0.5, 0.2},
        Setting{"structure-only (Cf=0.5)", 0.5, 0.0}}) {
    bench::SweepResult sweep =
        bench::RunDblpSweep(dblp, MakeConfig(dblp, s.cf, s.ce));
    bench::PrintSeries(s.name, sweep.precision);
  }
  std::printf("\nPaper (Figure 10): structure-only is the best curve; "
              "content-only the worst. Absolute precisions ~10%%-50%%.\n");
  return 0;
}
