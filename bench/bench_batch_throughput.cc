// Batched power-iteration benchmark: aggregate query throughput of
// ObjectRankEngine::ComputeBatch as the batch width B grows. Every lane
// of a block pass shares one streaming read of the SELL-8 structure and
// fused weights (docs/batching.md), so B warm-started queries cost far
// less than B single solves — the headline number is the B=8 vs B=1
// queries/second speedup at 8 threads (target: >= 2x). Emits
// BENCH_batch.json in the shared bench_util record schema.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/base_set.h"
#include "core/objectrank.h"

namespace {

struct BatchRun {
  size_t lanes = 0;
  int threads = 0;
  double wall_seconds = 0.0;
  long long queries = 0;
  long long lane_iterations = 0;
  double queries_per_second = 0.0;
  double lane_edges_per_second = 0.0;
};

// Repeats fixed-work batch solves (epsilon = 0: every lane executes
// exactly max_iterations passes) until `min_seconds` of wall time
// accrues. All lanes are warm-started with a dense vector so the whole
// batch runs the block SpMM from iteration 1 — the steady-state regime
// the serving layer batches for.
BatchRun TimeBatch(const orx::core::ObjectRankEngine& engine,
                   const std::vector<orx::core::BaseSet>& bases,
                   const orx::graph::TransferRates& rates,
                   const std::vector<double>& warm, size_t lanes,
                   int threads, int iterations_per_solve,
                   double min_seconds) {
  orx::core::ObjectRankOptions options;
  options.epsilon = 0.0;
  options.max_iterations = iterations_per_solve;
  options.num_threads = threads;

  std::vector<orx::core::BatchQuery> queries(lanes);
  for (size_t l = 0; l < lanes; ++l) {
    queries[l].base = &bases[l % bases.size()];
    queries[l].warm_start = &warm;
  }
  engine.ComputeBatch(queries, rates, options);  // warm: pool + layout

  BatchRun run;
  run.lanes = lanes;
  run.threads = threads;
  orx::Timer timer;
  while (timer.ElapsedSeconds() < min_seconds) {
    for (const auto& result : engine.ComputeBatch(queries, rates, options)) {
      run.lane_iterations += result.iterations;
      ++run.queries;
    }
  }
  run.wall_seconds = timer.ElapsedSeconds();
  return run;
}

}  // namespace

int main() {
  using namespace orx;
  const double scale = bench::ScaleFromEnv();
  const uint32_t papers =
      std::max<uint32_t>(200, static_cast<uint32_t>(32'000 * scale));
  std::printf("=== Batched power iteration: SpMM over SELL-8, aggregate "
              "queries/s by batch width (scale=%.3f) ===\n\n", scale);

  // Same DBLP-scale regime as bench_spmv_kernel so the two artifacts are
  // comparable: ~32k papers, 5 citations each.
  datasets::DblpGeneratorConfig config =
      datasets::DblpGeneratorConfig::Tiny(papers, /*seed=*/77);
  config.num_authors = papers / 2 + 100;
  config.avg_citations = 5.0;
  const datasets::DblpDataset dblp = datasets::GenerateDblp(config);
  const graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  const size_t nodes = dblp.dataset.data().num_nodes();
  const uint64_t edges = dblp.dataset.authority().num_edges();
  std::printf("graph: %zu nodes, %llu authority edges\n\n", nodes,
              static_cast<unsigned long long>(edges));

  // 16 distinct randomized base sets, reused round-robin across lanes so
  // every lane solves a different query.
  Rng rng(4242);
  std::vector<core::BaseSet> bases;
  for (int b = 0; b < 16; ++b) {
    core::BaseSet base;
    double total = 0.0;
    std::vector<std::pair<graph::NodeId, double>> picks;
    while (picks.size() < 12) {
      picks.emplace_back(static_cast<graph::NodeId>(rng.UniformInt(nodes)),
                         rng.UniformDouble() + 0.01);
      total += picks.back().second;
    }
    std::sort(picks.begin(), picks.end());
    for (const auto& [node, weight] : picks) {
      base.entries.emplace_back(node, weight / total);
    }
    bases.push_back(std::move(base));
  }

  core::ObjectRankEngine engine(dblp.dataset.authority());
  constexpr int kIterationsPerSolve = 20;
  const double min_seconds = std::clamp(scale, 0.02, 1.0);

  // The shared dense warm start (the global rank, as a serving session
  // would use).
  core::ObjectRankOptions warm_options;
  warm_options.num_threads = 4;
  const std::vector<double> warm =
      engine.ComputeGlobal(rates, warm_options).scores;

  // Every (B, threads) cell is measured in kRounds short slices, with
  // the whole sweep completing one round before the next begins: on a
  // shared machine, slow drift (frequency scaling, noisy neighbors)
  // then hits every cell about equally instead of whichever cell was
  // measured during the slow minutes, which is what makes the B=8 vs
  // B=1 ratio trustworthy.
  constexpr int kRounds = 3;
  std::vector<std::pair<size_t, int>> configs;
  for (const size_t lanes : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                             size_t{16}}) {
    for (const int threads : {1, 4, 8}) configs.emplace_back(lanes, threads);
  }
  std::vector<BatchRun> runs(configs.size());
  for (int round = 0; round < kRounds; ++round) {
    for (size_t i = 0; i < configs.size(); ++i) {
      const BatchRun slice =
          TimeBatch(engine, bases, rates, warm, configs[i].first,
                    configs[i].second, kIterationsPerSolve,
                    min_seconds / kRounds);
      runs[i].lanes = slice.lanes;
      runs[i].threads = slice.threads;
      runs[i].wall_seconds += slice.wall_seconds;
      runs[i].queries += slice.queries;
      runs[i].lane_iterations += slice.lane_iterations;
    }
  }
  TablePrinter table({"B", "threads", "queries", "wall (s)", "queries/s",
                      "lane Medges/s"});
  for (BatchRun& run : runs) {
    run.queries_per_second =
        static_cast<double>(run.queries) / run.wall_seconds;
    run.lane_edges_per_second =
        static_cast<double>(run.lane_iterations) *
        static_cast<double>(engine.graph().num_edges()) / run.wall_seconds;
    table.AddRow({std::to_string(run.lanes), std::to_string(run.threads),
                  std::to_string(run.queries),
                  FormatDouble(run.wall_seconds, 2),
                  FormatDouble(run.queries_per_second, 1),
                  FormatDouble(run.lane_edges_per_second / 1e6, 2)});
  }
  std::printf("%s\n", table.ToString().c_str());

  auto at = [&](size_t lanes, int threads) -> const BatchRun& {
    for (const BatchRun& r : runs) {
      if (r.lanes == lanes && r.threads == threads) return r;
    }
    return runs.front();
  };
  const double speedup_8t =
      at(8, 8).queries_per_second / at(1, 8).queries_per_second;
  const double speedup_1t =
      at(8, 1).queries_per_second / at(1, 1).queries_per_second;
  std::printf("B=8 vs B=1 aggregate queries/s: %.2fx at 1 thread, %.2fx "
              "at 8 threads (target: >= 2x at 8 threads)\n",
              speedup_1t, speedup_8t);

  double total_wall = 0.0;
  std::vector<std::string> rendered;
  for (const BatchRun& run : runs) {
    total_wall += run.wall_seconds;
    bench::JsonObject record;
    record.Add("batch_size", run.lanes)
        .Add("threads", run.threads)
        .Add("queries", run.queries)
        .Add("wall_seconds", run.wall_seconds)
        .Add("queries_per_second", run.queries_per_second)
        .Add("lane_edges_per_second", run.lane_edges_per_second);
    rendered.push_back(record.ToString());
  }
  bench::JsonObject json = bench::BenchRecord(
      "batch",
      bench::BenchDataset{"dblp-synthetic", nodes,
                          static_cast<size_t>(edges)},
      /*threads=*/8, total_wall);
  json.Add("papers", static_cast<unsigned long long>(papers))
      .Add("iterations_per_solve", kIterationsPerSolve)
      .Add("speedup_b8_1t", speedup_1t)
      .Add("speedup_b8_8t", speedup_8t)
      .AddRaw("runs", bench::JsonArray(rendered));
  bench::WriteJsonFile("BENCH_batch.json", json.ToString());
  return 0;
}
