// Table 3 reproduction: average Explaining ObjectRank2 iterations (the
// flow-adjustment fixpoint of Section 4) per relevance-feedback iteration,
// over all four datasets.

#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"

namespace {

using namespace orx;

bench::SweepConfig MakeConfig(graph::TypeId result_type) {
  bench::SweepConfig config;
  config.survey.feedback_iterations = 5;
  config.survey.max_feedback_objects = 2;
  config.survey.reform.structure.adjustment = 0.5;
  config.survey.reform.content.expansion = 0.0;
  config.survey.reform.explain.radius = 3;
  config.survey.search.result_type = result_type;
  config.survey.user.relevant_pool = 30;
  config.num_users = 2;
  config.queries_per_user = 2;
  return config;
}

std::vector<std::string> Row(const std::string& name,
                             const bench::SweepResult& sweep) {
  std::vector<std::string> row{name};
  // Iterations 1..5 are the reformulation rounds (the explaining fixpoint
  // runs when feedback is given, i.e. after searches 0..4).
  for (size_t i = 0; i + 1 < sweep.explain_iterations.size() && i < 5; ++i) {
    row.push_back(FormatDouble(sweep.explain_iterations[i], 1));
  }
  while (row.size() < 6) row.push_back("-");
  return row;
}

}  // namespace

int main() {
  const double scale = bench::ScaleFromEnv();
  std::printf("=== Table 3: Average Explaining ObjectRank2 iterations "
              "(scale=%.3f) ===\n\n", scale);

  TablePrinter table({"Dataset", "1", "2", "3", "4", "5"});

  {
    datasets::DblpDataset complete = datasets::GenerateDblp(bench::ScaledDblp(
        datasets::DblpGeneratorConfig::DblpComplete(), scale));
    table.AddRow(Row("DBLPcomplete",
                     bench::RunDblpSweep(complete,
                                         MakeConfig(complete.types.paper))));
  }
  {
    datasets::DblpDataset top = datasets::GenerateDblp(
        bench::ScaledDblp(datasets::DblpGeneratorConfig::DblpTop(), scale));
    table.AddRow(
        Row("DBLPtop",
            bench::RunDblpSweep(top, MakeConfig(top.types.paper))));
  }
  {
    datasets::BioDataset ds7 = datasets::GenerateBio(
        bench::ScaledBio(datasets::BioGeneratorConfig::Ds7(), scale));
    table.AddRow(
        Row("DS7", bench::RunBioSweep(ds7, MakeConfig(ds7.types.pubmed))));
    datasets::BioDataset cancer = datasets::ExtractBioSubset(ds7, "cancer");
    if (cancer.dataset.data().num_nodes() > 0) {
      table.AddRow(Row("DS7cancer",
                       bench::RunBioSweep(cancer,
                                          MakeConfig(cancer.types.pubmed))));
    }
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper: DBLPcomplete 7.2-11, DBLPtop 7.4-8.6, DS7 4.6-5.6, "
              "DS7cancer 3.8-5.6 iterations.\n");
  return 0;
}
