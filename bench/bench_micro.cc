// Micro-benchmarks (google-benchmark) of ORX's building blocks: the power
// iteration inner loop, index construction, BM25 base-set scoring,
// explaining-subgraph construction, top-k selection and the generators.
// Results also land in BENCH_micro.json (same record schema as the other
// bench binaries) so runs are diffable across revisions.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/searcher.h"
#include "explain/explainer.h"
#include "text/query.h"

namespace {

using namespace orx;

const datasets::DblpDataset& BenchDblp() {
  static const datasets::DblpDataset& dblp = *new datasets::DblpDataset(
      datasets::GenerateDblp(
          datasets::DblpGeneratorConfig::Tiny(/*papers=*/20'000,
                                              /*seed=*/99)));
  return dblp;
}

void BM_PowerIteration(benchmark::State& state) {
  const auto& dblp = BenchDblp();
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  core::ObjectRankEngine engine(dblp.dataset.authority());
  text::QueryVector q(text::ParseQuery("data"));
  auto base = *core::BuildBaseSet(dblp.dataset.corpus(), q);
  core::ObjectRankOptions options;
  options.epsilon = 0.0;  // fixed work per run
  options.max_iterations = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = engine.Compute(base, rates, options);
    benchmark::DoNotOptimize(result.scores.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          dblp.dataset.authority().num_edges());
}
BENCHMARK(BM_PowerIteration)->Arg(1)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_BuildAuthorityGraph(benchmark::State& state) {
  const auto& dblp = BenchDblp();
  for (auto _ : state) {
    auto graph = graph::AuthorityGraph::Build(dblp.dataset.data());
    benchmark::DoNotOptimize(graph.num_edges());
  }
  state.SetItemsProcessed(state.iterations() *
                          dblp.dataset.data().num_edges());
}
BENCHMARK(BM_BuildAuthorityGraph)->Unit(benchmark::kMillisecond);

void BM_BuildCorpus(benchmark::State& state) {
  const auto& dblp = BenchDblp();
  for (auto _ : state) {
    auto corpus = text::Corpus::Build(dblp.dataset.data());
    benchmark::DoNotOptimize(corpus.vocab_size());
  }
  state.SetItemsProcessed(state.iterations() *
                          dblp.dataset.data().num_nodes());
}
BENCHMARK(BM_BuildCorpus)->Unit(benchmark::kMillisecond);

void BM_ScoreBaseSet(benchmark::State& state) {
  const auto& dblp = BenchDblp();
  text::QueryVector q(text::ParseQuery("data query systems"));
  for (auto _ : state) {
    auto scored = text::ScoreBaseSet(dblp.dataset.corpus(), q);
    benchmark::DoNotOptimize(scored.size());
  }
}
BENCHMARK(BM_ScoreBaseSet)->Unit(benchmark::kMicrosecond);

void BM_ExplainTopResult(benchmark::State& state) {
  const auto& dblp = BenchDblp();
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  core::ObjectRankEngine engine(dblp.dataset.authority());
  text::QueryVector q(text::ParseQuery("mining"));
  auto base = *core::BuildBaseSet(dblp.dataset.corpus(), q);
  auto rank = engine.Compute(base, rates, {});
  auto top = core::TopKOfType(rank.scores, 1, dblp.dataset.data(),
                              dblp.types.paper);
  explain::Explainer explainer(dblp.dataset.data(),
                               dblp.dataset.authority());
  explain::ExplainOptions options;
  options.radius = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto explanation = explainer.Explain(top[0].node, base, rank.scores,
                                         rates, 0.85, options);
    benchmark::DoNotOptimize(explanation.ok());
  }
}
BENCHMARK(BM_ExplainTopResult)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_TopK(benchmark::State& state) {
  const auto& dblp = BenchDblp();
  std::vector<double> scores(dblp.dataset.data().num_nodes());
  Rng rng(5);
  for (double& s : scores) s = rng.UniformDouble();
  for (auto _ : state) {
    auto top = core::TopKOfType(scores, static_cast<size_t>(state.range(0)),
                                dblp.dataset.data(), dblp.types.paper);
    benchmark::DoNotOptimize(top.data());
  }
  state.SetItemsProcessed(state.iterations() * scores.size());
}
BENCHMARK(BM_TopK)->Arg(10)->Arg(100)->Unit(benchmark::kMicrosecond);

void BM_GenerateDblp(benchmark::State& state) {
  for (auto _ : state) {
    auto dblp = datasets::GenerateDblp(datasets::DblpGeneratorConfig::Tiny(
        static_cast<uint32_t>(state.range(0)), 7));
    benchmark::DoNotOptimize(dblp.dataset.data().num_edges());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateDblp)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_Reformulate(benchmark::State& state) {
  const auto& dblp = BenchDblp();
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  core::ObjectRankEngine engine(dblp.dataset.authority());
  text::QueryVector q(text::ParseQuery("xml"));
  auto base = *core::BuildBaseSet(dblp.dataset.corpus(), q);
  auto rank = engine.Compute(base, rates, {});
  auto top = core::TopKOfType(rank.scores, 2, dblp.dataset.data(),
                              dblp.types.paper);
  std::vector<graph::NodeId> feedback;
  for (const auto& r : top) feedback.push_back(r.node);
  reform::Reformulator reformulator(dblp.dataset.data(),
                                    dblp.dataset.authority(),
                                    dblp.dataset.corpus());
  for (auto _ : state) {
    auto result = reformulator.Reformulate(q, rates, base, rank.scores,
                                           feedback, {});
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_Reformulate)->Unit(benchmark::kMillisecond);

/// The console reporter, plus a JSON record per reported run so main()
/// can emit BENCH_micro.json without re-running anything.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      // GetAdjusted*Time() report per-iteration time in the benchmark's
      // display unit; normalize to seconds for the artifact.
      const double unit = benchmark::GetTimeUnitMultiplier(run.time_unit);
      bench::JsonObject record;
      record.Add("name", run.benchmark_name())
          .Add("iterations", static_cast<long long>(run.iterations))
          .Add("real_time_seconds", run.GetAdjustedRealTime() / unit)
          .Add("cpu_time_seconds", run.GetAdjustedCPUTime() / unit);
      if (auto it = run.counters.find("items_per_second");
          it != run.counters.end()) {
        record.Add("items_per_second", static_cast<double>(it->second));
      }
      rendered_.push_back(record.ToString());
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<std::string>& rendered() const { return rendered_; }

 private:
  std::vector<std::string> rendered_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  Timer timer;
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // Micro benchmarks sweep many generated graphs; nodes/edges stay 0
  // ("not applicable") in the shared header.
  bench::JsonObject json = bench::BenchRecord(
      "micro", bench::BenchDataset{"dblp-synthetic"}, /*threads=*/1,
      timer.ElapsedSeconds());
  json.AddRaw("benchmarks", bench::JsonArray(reporter.rendered()));
  bench::WriteJsonFile("BENCH_micro.json", json.ToString());
  return 0;
}
