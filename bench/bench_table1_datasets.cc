// Table 1 reproduction: dataset inventory (#nodes, #edges, size).
//
// The paper's datasets are the real DBLP dump and the DS7 PubMed-derived
// collection; ours are the synthetic stand-ins at the same scale
// (DESIGN.md substitutions #1/#2). DBLPtop/DS7cancer are produced the way
// the paper produced them: focused subsets of the full collections
// (databases-related / cancer-related). For DBLPtop we *also* generate
// the dense preset directly, since subsetting by one keyword list is a
// poor proxy for "databases-related" and the paper's exact selection is
// unspecified; the preset matches the published node/edge counts.

#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/timer.h"

int main() {
  using namespace orx;
  const double scale = bench::ScaleFromEnv();
  std::printf("=== Table 1: Real and Synthetic Datasets "
              "(scale=%.3f) ===\n\n", scale);

  TablePrinter table({"Name", "#nodes", "#edges", "Size(MB)",
                      "paper #nodes", "paper #edges", "paper MB",
                      "gen(s)"});

  auto add_row = [&](const std::string& name, const datasets::Dataset& ds,
                     const std::string& paper_nodes,
                     const std::string& paper_edges,
                     const std::string& paper_mb, double seconds) {
    table.AddRow({name, std::to_string(ds.data().num_nodes()),
                  std::to_string(ds.data().num_edges()),
                  FormatDouble(ds.MemoryFootprintBytes() / (1024.0 * 1024.0),
                               0),
                  paper_nodes, paper_edges, paper_mb,
                  FormatDouble(seconds, 1)});
  };

  {
    Timer t;
    datasets::DblpDataset complete = datasets::GenerateDblp(bench::ScaledDblp(
        datasets::DblpGeneratorConfig::DblpComplete(), scale));
    add_row("DBLPcomplete", complete.dataset, "876,110", "4,166,626",
            "3950", t.ElapsedSeconds());
  }
  {
    Timer t;
    datasets::DblpDataset top = datasets::GenerateDblp(
        bench::ScaledDblp(datasets::DblpGeneratorConfig::DblpTop(), scale));
    add_row("DBLPtop", top.dataset, "22,653", "166,960", "136",
            t.ElapsedSeconds());
  }
  {
    Timer t;
    datasets::BioDataset ds7 = datasets::GenerateBio(
        bench::ScaledBio(datasets::BioGeneratorConfig::Ds7(), scale));
    add_row("DS7", ds7.dataset, "699,199", "3,533,756", "2189",
            t.ElapsedSeconds());

    Timer t2;
    datasets::BioDataset cancer = datasets::ExtractBioSubset(ds7, "cancer");
    add_row("DS7cancer", cancer.dataset, "37,796", "138,146", "111",
            t2.ElapsedSeconds());
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf("Note: sizes are in-memory footprints (graph + authority CSR "
              "+ text index); the paper reports on-disk size, so the MB "
              "column is comparable in magnitude only.\n");
  return 0;
}
