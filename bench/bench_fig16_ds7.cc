// Figure 16 reproduction: DS7 (full biological collection) execution.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace orx;
  const double scale = bench::ScaleFromEnv();
  std::printf("=== Figure 16: DS7 execution (scale=%.3f) ===\n\n", scale);
  datasets::BioDataset ds7 = datasets::GenerateBio(
      bench::ScaledBio(datasets::BioGeneratorConfig::Ds7(), scale));
  std::printf("dataset: %zu nodes, %zu edges\n\n",
              ds7.dataset.data().num_nodes(),
              ds7.dataset.data().num_edges());

  bench::SweepResult sweep = bench::RunBioSweep(
      ds7, bench::PerformanceSweepConfig(ds7.types.pubmed));
  bench::PrintPerformanceFigure(sweep);
  std::printf("\nPaper (Figure 16): ~100 s initial, ~31-37 s reformulated; "
              "iterations ~5 initial dropping toward ~2-4 warm-started.\n");
  return 0;
}
