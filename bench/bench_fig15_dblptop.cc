// Figure 15 reproduction: DBLPtop execution (same panels as Figure 14 on
// the focused databases subset — the configuration the paper recommends
// for interactive exploratory search).

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace orx;
  const double scale = bench::ScaleFromEnv();
  std::printf("=== Figure 15: DBLPtop execution (scale=%.3f) ===\n\n",
              scale);
  datasets::DblpDataset dblp = datasets::GenerateDblp(
      bench::ScaledDblp(datasets::DblpGeneratorConfig::DblpTop(), scale));
  std::printf("dataset: %zu nodes, %zu edges\n\n",
              dblp.dataset.data().num_nodes(),
              dblp.dataset.data().num_edges());

  bench::SweepResult sweep = bench::RunDblpSweep(
      dblp, bench::PerformanceSweepConfig(dblp.types.paper));
  bench::PrintPerformanceFigure(sweep);
  std::printf("\nPaper (Figure 15): ~2 s initial, <1 s (down to ~0.5 s) "
              "reformulated; iterations ~10 initial, ~7-8 reformulated.\n");
  return 0;
}
