// Ablation: the monotone aggregation function for multiple feedback
// objects (Section 5.3). The paper uses summation in all experiments;
// this bench compares sum / min / max / avg on survey precision.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace orx;
  const double scale = bench::ScaleFromEnv();
  std::printf("=== Ablation: multi-feedback aggregation function "
              "(scale=%.3f) ===\n\n", scale);
  datasets::DblpDataset dblp = datasets::GenerateDblp(
      bench::ScaledDblp(datasets::DblpGeneratorConfig::DblpTop(), scale));

  std::printf("%-28s %s\n", "aggregate",
              "initial  reform1  reform2  reform3  reform4");
  struct Kind {
    const char* name;
    reform::AggregateKind kind;
  };
  for (const Kind& k : {Kind{"sum (paper)", reform::AggregateKind::kSum},
                        Kind{"min", reform::AggregateKind::kMin},
                        Kind{"max", reform::AggregateKind::kMax},
                        Kind{"avg", reform::AggregateKind::kAvg}}) {
    bench::SweepConfig config;
    config.survey.feedback_iterations = 4;
    config.survey.max_feedback_objects = 3;  // multi-object feedback
    config.survey.reform.structure.adjustment = 0.5;
    config.survey.reform.content.expansion = 0.2;
    config.survey.reform.aggregate = k.kind;
    config.survey.search.result_type = dblp.types.paper;
    config.survey.user.relevant_pool = 30;
    config.num_users = 4;
    config.queries_per_user = 4;
    bench::SweepResult sweep = bench::RunDblpSweep(dblp, config);
    bench::PrintSeries(k.name, sweep.precision);
  }
  std::printf("\nExpected: sum/avg/max track each other closely (they "
              "rank edge types almost identically after normalization); "
              "min is the most conservative.\n");
  return 0;
}
