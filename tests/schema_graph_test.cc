#include "graph/schema_graph.h"

#include <gtest/gtest.h>

namespace orx::graph {
namespace {

TEST(SchemaGraphTest, AddAndLookupNodeTypes) {
  SchemaGraph schema;
  auto paper = schema.AddNodeType("Paper");
  auto author = schema.AddNodeType("Author");
  ASSERT_TRUE(paper.ok());
  ASSERT_TRUE(author.ok());
  EXPECT_NE(*paper, *author);
  EXPECT_EQ(schema.num_node_types(), 2u);
  EXPECT_EQ(schema.NodeTypeLabel(*paper), "Paper");
  auto looked_up = schema.NodeTypeByLabel("Author");
  ASSERT_TRUE(looked_up.ok());
  EXPECT_EQ(*looked_up, *author);
}

TEST(SchemaGraphTest, RejectsDuplicateAndEmptyLabels) {
  SchemaGraph schema;
  ASSERT_TRUE(schema.AddNodeType("Paper").ok());
  EXPECT_EQ(schema.AddNodeType("Paper").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(schema.AddNodeType("").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaGraphTest, UnknownLookupsFail) {
  SchemaGraph schema;
  EXPECT_EQ(schema.NodeTypeByLabel("Ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(schema.EdgeTypeByRole("ghost").status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaGraphTest, AddEdgeTypesWithRoles) {
  SchemaGraph schema;
  TypeId paper = *schema.AddNodeType("Paper");
  TypeId author = *schema.AddNodeType("Author");
  auto cites = schema.AddEdgeType(paper, paper, "cites");
  auto by = schema.AddEdgeType(paper, author, "by");
  ASSERT_TRUE(cites.ok());
  ASSERT_TRUE(by.ok());
  EXPECT_EQ(schema.num_edge_types(), 2u);
  EXPECT_EQ(schema.num_rate_slots(), 4u);
  EXPECT_EQ(schema.EdgeType(*cites).role, "cites");
  EXPECT_EQ(schema.EdgeType(*by).from, paper);
  EXPECT_EQ(schema.EdgeType(*by).to, author);
}

TEST(SchemaGraphTest, EdgeTypeEndpointValidation) {
  SchemaGraph schema;
  TypeId paper = *schema.AddNodeType("Paper");
  EXPECT_EQ(schema.AddEdgeType(paper, 99, "bad").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(schema.AddEdgeType(99, paper, "bad").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaGraphTest, DuplicateEdgeRoleRejected) {
  SchemaGraph schema;
  TypeId paper = *schema.AddNodeType("Paper");
  ASSERT_TRUE(schema.AddEdgeType(paper, paper, "cites").ok());
  EXPECT_EQ(schema.AddEdgeType(paper, paper, "cites").status().code(),
            StatusCode::kAlreadyExists);
  // A different role between the same endpoints is fine.
  EXPECT_TRUE(schema.AddEdgeType(paper, paper, "extends").ok());
}

TEST(SchemaGraphTest, DefaultRoleIsSynthesized) {
  SchemaGraph schema;
  TypeId conf = *schema.AddNodeType("Conference");
  TypeId year = *schema.AddNodeType("Year");
  auto edge = schema.AddEdgeType(conf, year, "");
  ASSERT_TRUE(edge.ok());
  EXPECT_EQ(schema.EdgeType(*edge).role, "ConferenceToYear");
}

TEST(SchemaGraphTest, EdgeTypeBetween) {
  SchemaGraph schema;
  TypeId paper = *schema.AddNodeType("Paper");
  TypeId author = *schema.AddNodeType("Author");
  EdgeTypeId cites = *schema.AddEdgeType(paper, paper, "cites");
  EdgeTypeId by = *schema.AddEdgeType(paper, author, "by");

  auto found = schema.EdgeTypeBetween(paper, author);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, by);
  auto found2 = schema.EdgeTypeBetween(paper, paper, "cites");
  ASSERT_TRUE(found2.ok());
  EXPECT_EQ(*found2, cites);
  EXPECT_EQ(schema.EdgeTypeBetween(author, paper).status().code(),
            StatusCode::kNotFound);

  // Ambiguity requires a role.
  ASSERT_TRUE(schema.AddEdgeType(paper, paper, "extends").ok());
  EXPECT_EQ(schema.EdgeTypeBetween(paper, paper).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaGraphTest, DirectionHelpers) {
  EXPECT_EQ(Reverse(Direction::kForward), Direction::kBackward);
  EXPECT_EQ(Reverse(Direction::kBackward), Direction::kForward);
  EXPECT_EQ(RateIndex(0, Direction::kForward), 0u);
  EXPECT_EQ(RateIndex(0, Direction::kBackward), 1u);
  EXPECT_EQ(RateIndex(3, Direction::kForward), 6u);
}

TEST(SchemaGraphTest, SourceAndTargetOfDirections) {
  SchemaGraph schema;
  TypeId year = *schema.AddNodeType("Year");
  TypeId paper = *schema.AddNodeType("Paper");
  EdgeTypeId contains = *schema.AddEdgeType(year, paper, "contains");
  EXPECT_EQ(schema.SourceTypeOf(contains, Direction::kForward), year);
  EXPECT_EQ(schema.TargetTypeOf(contains, Direction::kForward), paper);
  EXPECT_EQ(schema.SourceTypeOf(contains, Direction::kBackward), paper);
  EXPECT_EQ(schema.TargetTypeOf(contains, Direction::kBackward), year);
}

TEST(SchemaGraphTest, RateSlotNames) {
  SchemaGraph schema;
  TypeId paper = *schema.AddNodeType("Paper");
  EdgeTypeId cites = *schema.AddEdgeType(paper, paper, "cites");
  EXPECT_EQ(schema.RateSlotName(cites, Direction::kForward),
            "Paper-cites->Paper");
  EXPECT_EQ(schema.RateSlotName(cites, Direction::kBackward),
            "Paper-cites->Paper (reverse)");
}

}  // namespace
}  // namespace orx::graph
