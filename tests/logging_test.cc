#include "common/logging.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"

namespace orx {
namespace {

TEST(LoggingTest, VerboseToggle) {
  EXPECT_FALSE(VerboseLoggingEnabled());
  SetVerboseLogging(true);
  EXPECT_TRUE(VerboseLoggingEnabled());
  SetVerboseLogging(false);
  EXPECT_FALSE(VerboseLoggingEnabled());
}

TEST(LoggingTest, MacrosCompileAndStream) {
  // Output goes to stderr; the assertions here are that the macros accept
  // stream syntax for mixed types and that VLOG is a no-op when verbose
  // logging is off (it must not evaluate into a visible line — and, more
  // importantly, must not break the build in expression position).
  ORX_LOG(Info) << "info line " << 42 << " " << 3.14;
  ORX_LOG(Warning) << "warning line";
  ORX_LOG(Error) << "error line";
  SetVerboseLogging(false);
  ORX_VLOG() << "suppressed debug line";
  SetVerboseLogging(true);
  ORX_VLOG() << "visible debug line";
  SetVerboseLogging(false);
  SUCCEED();
}

TEST(LoggingTest, ConcurrentLogLinesNeverInterleave) {
  // Regression: ~LogMessage used to emit via stderr streaming, which can
  // reach the (unbuffered) stream as several writes — two pool workers
  // logging at once interleaved fragments mid-line. Every emitted line
  // must now arrive whole.
  constexpr size_t kLines = 400;
  testing::internal::CaptureStderr();
  {
    ThreadPool pool(8);
    pool.ParallelFor(kLines, [](size_t i) {
      ORX_LOG(Info) << "tick " << i << " end";
    });
  }
  const std::string captured = testing::internal::GetCapturedStderr();

  std::vector<int> seen(kLines, 0);
  size_t lines = 0;
  std::istringstream input(captured);
  std::string line;
  while (std::getline(input, line)) {
    ++lines;
    // Exact shape: "[I logging_test.cc:NN] tick <i> end". Any torn or
    // interleaved write breaks the prefix, the suffix, or the number.
    const std::string prefix = "[I logging_test.cc:";
    ASSERT_EQ(line.rfind(prefix, 0), 0u) << "malformed line: " << line;
    const size_t tick = line.find("] tick ");
    ASSERT_NE(tick, std::string::npos) << "malformed line: " << line;
    const std::string suffix = " end";
    ASSERT_GE(line.size(), suffix.size());
    ASSERT_EQ(line.compare(line.size() - suffix.size(), suffix.size(), suffix),
              0)
        << "torn line: " << line;
    const std::string number = line.substr(
        tick + 7, line.size() - suffix.size() - (tick + 7));
    ASSERT_FALSE(number.empty()) << "malformed line: " << line;
    for (char c : number) ASSERT_TRUE(c >= '0' && c <= '9') << line;
    const size_t index = std::stoul(number);
    ASSERT_LT(index, kLines);
    ++seen[index];
  }
  EXPECT_EQ(lines, kLines);
  for (size_t i = 0; i < kLines; ++i) {
    EXPECT_EQ(seen[i], 1) << "line for tick " << i
                          << " lost or duplicated";
  }
}

TEST(CheckDeathTest, CheckFiresOnViolation) {
  EXPECT_DEATH({ ORX_CHECK(1 + 1 == 3); }, "ORX_CHECK failed");
  EXPECT_DEATH({ ORX_CHECK_MSG(false, "with context"); }, "with context");
}

TEST(CheckDeathTest, CheckPassesSilently) {
  ORX_CHECK(true);
  ORX_CHECK_MSG(2 + 2 == 4, "arithmetic works");
  ORX_DCHECK(true);
  SUCCEED();
}

}  // namespace
}  // namespace orx
