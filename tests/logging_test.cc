#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace orx {
namespace {

TEST(LoggingTest, VerboseToggle) {
  EXPECT_FALSE(VerboseLoggingEnabled());
  SetVerboseLogging(true);
  EXPECT_TRUE(VerboseLoggingEnabled());
  SetVerboseLogging(false);
  EXPECT_FALSE(VerboseLoggingEnabled());
}

TEST(LoggingTest, MacrosCompileAndStream) {
  // Output goes to stderr; the assertions here are that the macros accept
  // stream syntax for mixed types and that VLOG is a no-op when verbose
  // logging is off (it must not evaluate into a visible line — and, more
  // importantly, must not break the build in expression position).
  ORX_LOG(Info) << "info line " << 42 << " " << 3.14;
  ORX_LOG(Warning) << "warning line";
  ORX_LOG(Error) << "error line";
  SetVerboseLogging(false);
  ORX_VLOG() << "suppressed debug line";
  SetVerboseLogging(true);
  ORX_VLOG() << "visible debug line";
  SetVerboseLogging(false);
  SUCCEED();
}

TEST(CheckDeathTest, CheckFiresOnViolation) {
  EXPECT_DEATH({ ORX_CHECK(1 + 1 == 3); }, "ORX_CHECK failed");
  EXPECT_DEATH({ ORX_CHECK_MSG(false, "with context"); }, "with context");
}

TEST(CheckDeathTest, CheckPassesSilently) {
  ORX_CHECK(true);
  ORX_CHECK_MSG(2 + 2 == 4, "arithmetic works");
  ORX_DCHECK(true);
  SUCCEED();
}

}  // namespace
}  // namespace orx
