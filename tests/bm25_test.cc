#include "text/bm25.h"

#include <gtest/gtest.h>

#include "graph/data_graph.h"

namespace orx::text {
namespace {

class Bm25Test : public ::testing::Test {
 protected:
  Bm25Test() {
    paper_ = *schema_.AddNodeType("Paper");
    data_ = std::make_unique<graph::DataGraph>(schema_);
    // "olap" is rare (1/4 docs), "cube" common (3/4 docs).
    d0_ = *data_->AddNode(paper_, {{"Title", "olap cube"}});
    d1_ = *data_->AddNode(paper_, {{"Title", "cube cube index"}});
    d2_ = *data_->AddNode(paper_, {{"Title", "cube warehouse"}});
    d3_ = *data_->AddNode(
        paper_, {{"Title", "completely unrelated topic matter here"}});
    corpus_ = std::make_unique<Corpus>(Corpus::Build(*data_));
  }

  graph::SchemaGraph schema_;
  graph::TypeId paper_;
  std::unique_ptr<graph::DataGraph> data_;
  graph::NodeId d0_, d1_, d2_, d3_;
  std::unique_ptr<Corpus> corpus_;
};

TEST_F(Bm25Test, ZeroForAbsentTerm) {
  TermId olap = *corpus_->TermIdOf("olap");
  EXPECT_DOUBLE_EQ(DocTermWeight(*corpus_, d1_, olap), 0.0);
}

TEST_F(Bm25Test, RareTermsOutweighCommonOnes) {
  TermId olap = *corpus_->TermIdOf("olap");
  TermId cube = *corpus_->TermIdOf("cube");
  // Same document, same tf=1: the rarer term weighs more (idf).
  EXPECT_GT(DocTermWeight(*corpus_, d0_, olap),
            DocTermWeight(*corpus_, d0_, cube));
}

TEST_F(Bm25Test, UbiquitousTermsKeepSmallPositiveWeights) {
  // "cube" appears in 3 of 4 documents: raw RSJ idf would be negative,
  // which would produce invalid (negative) base-set jump probabilities.
  // The smoothed ln(1 + .) idf keeps the weight positive but small.
  TermId cube = *corpus_->TermIdOf("cube");
  TermId olap = *corpus_->TermIdOf("olap");
  const double w_cube = DocTermWeight(*corpus_, d2_, cube);
  EXPECT_GT(w_cube, 0.0);
  EXPECT_LT(w_cube, DocTermWeight(*corpus_, d0_, olap));
}

TEST_F(Bm25Test, TfSaturation) {
  // d1 has tf(cube)=2 vs d0 tf=1; weight grows but less than linearly.
  graph::SchemaGraph schema;
  graph::TypeId t = *schema.AddNodeType("Paper");
  graph::DataGraph data(schema);
  graph::NodeId a = *data.AddNode(t, {{"Title", "term x1 x2 x3"}});
  graph::NodeId b = *data.AddNode(t, {{"Title", "term term x1 x2"}});
  graph::NodeId c = *data.AddNode(t, {{"Title", "y1 y2 y3 y4"}});
  (void)c;  // keeps df(term)=2/3 so idf > 0
  Corpus corpus = Corpus::Build(data);
  TermId term = *corpus.TermIdOf("term");
  const double w1 = DocTermWeight(corpus, a, term);
  const double w2 = DocTermWeight(corpus, b, term);
  EXPECT_GT(w2, w1);
  EXPECT_LT(w2, 2.0 * w1);
}

TEST_F(Bm25Test, QueryTermFactor) {
  Bm25Params params;
  EXPECT_DOUBLE_EQ(QueryTermFactor(0.0, params), 0.0);
  EXPECT_DOUBLE_EQ(QueryTermFactor(1.0, params), 1.0);
  // Increasing query weight increases the factor, saturating at k3 + 1.
  EXPECT_GT(QueryTermFactor(2.0, params), QueryTermFactor(1.0, params));
  EXPECT_LT(QueryTermFactor(1000.0, params), params.k3 + 1.0);
}

TEST_F(Bm25Test, IRScoreIsDotProduct) {
  QueryVector q(Query{"olap", "cube"});
  const double expected =
      DocTermWeight(*corpus_, d0_, *corpus_->TermIdOf("olap")) +
      DocTermWeight(*corpus_, d0_, *corpus_->TermIdOf("cube"));
  EXPECT_DOUBLE_EQ(IRScore(*corpus_, d0_, q), expected);
}

TEST_F(Bm25Test, IRScoreIgnoresUnknownTerms) {
  QueryVector q(Query{"olap", "zzzznotindexed"});
  EXPECT_GT(IRScore(*corpus_, d0_, q), 0.0);
}

TEST_F(Bm25Test, ScoreBaseSetCoversExactlyMatchingDocs) {
  QueryVector q(Query{"olap", "index"});
  auto scored = ScoreBaseSet(*corpus_, q);
  // Docs containing olap (d0) or index (d1).
  ASSERT_EQ(scored.size(), 2u);
  EXPECT_EQ(scored[0].first, d0_);
  EXPECT_EQ(scored[1].first, d1_);
  for (const auto& [doc, score] : scored) EXPECT_GE(score, 0.0);
}

TEST_F(Bm25Test, ScoreBaseSetMergesMultiTermDocs) {
  QueryVector q(Query{"olap", "cube"});
  auto scored = ScoreBaseSet(*corpus_, q);
  // One entry per document even when both terms match.
  ASSERT_EQ(scored.size(), 3u);
  EXPECT_DOUBLE_EQ(scored[0].second, IRScore(*corpus_, d0_, q));
}

}  // namespace
}  // namespace orx::text
