// Equivalence suite for the batched power iteration (SpMM over SELL-8;
// docs/batching.md): every lane of ObjectRankEngine::ComputeBatch must be
// BIT-IDENTICAL — not merely close — to the single-query Compute it
// replaces, for any batch size, thread count, warm start, convergence
// pattern, and per-lane cancellation. Searcher::SearchBatch inherits the
// same contract at the search level. The perf_smoke case keeps the block
// pass honest: a silent fallback to per-lane solves would fail the
// amortization floor long before a real benchmark runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "core/objectrank.h"
#include "core/searcher.h"
#include "datasets/dblp_generator.h"
#include "datasets/dblp_schema.h"
#include "text/query.h"

namespace orx::core {
namespace {

// Exact comparison: the batch kernel accumulates per-lane sums in the
// same edge order as the single-vector kernel, so equality is ==, not a
// tolerance. Reports the first mismatch instead of dumping whole vectors.
void ExpectBitIdentical(const std::vector<double>& batch,
                        const std::vector<double>& single,
                        const std::string& what) {
  ASSERT_EQ(batch.size(), single.size()) << what;
  size_t mismatches = 0;
  size_t first = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i] != single[i]) {
      if (mismatches == 0) first = i;
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u)
      << what << ": " << mismatches << " mismatching entries, first at node "
      << first << " (batch " << batch[first] << " vs single "
      << single[first] << ")";
}

BaseSet MakeRandomBase(Rng& rng, size_t n, size_t base_nodes) {
  std::vector<graph::NodeId> nodes;
  while (nodes.size() < std::min(base_nodes, n)) {
    const auto v = static_cast<graph::NodeId>(rng.UniformInt(n));
    if (std::find(nodes.begin(), nodes.end(), v) == nodes.end()) {
      nodes.push_back(v);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  std::vector<double> weights;
  double total = 0.0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    weights.push_back(rng.UniformDouble() + 0.01);
    total += weights.back();
  }
  BaseSet base;
  for (size_t i = 0; i < nodes.size(); ++i) {
    base.entries.emplace_back(nodes[i], weights[i] / total);
  }
  return base;
}

// A synthetic DBLP graph plus randomized rates and one base set per lane.
// Base-set sizes vary across lanes so the push phase goes dense at
// different iterations — the block composition changes mid-batch.
struct BatchCase {
  datasets::DblpDataset dblp;
  graph::TransferRates rates;
  std::vector<BaseSet> bases;
};

BatchCase MakeBatchCase(uint64_t seed, uint32_t papers, size_t lanes) {
  BatchCase c{datasets::GenerateDblp(
                  datasets::DblpGeneratorConfig::Tiny(papers, seed)),
              {},
              {}};
  Rng rng(seed * 7919 + 1);

  c.rates = graph::TransferRates(c.dblp.dataset.schema(), 0.0);
  for (uint32_t slot = 0; slot < c.rates.num_slots(); ++slot) {
    c.rates.set_slot(slot, rng.UniformDouble());
  }
  c.rates.CapOutgoingSums(c.dblp.dataset.schema());

  const size_t n = c.dblp.dataset.data().num_nodes();
  for (size_t lane = 0; lane < lanes; ++lane) {
    c.bases.push_back(MakeRandomBase(rng, n, 3 + 5 * lane));
  }
  return c;
}

ObjectRankOptions FixedWorkOptions(PowerKernel kernel, int threads) {
  ObjectRankOptions options;
  options.epsilon = 0.0;  // run exactly max_iterations in every lane
  options.max_iterations = 25;
  options.kernel = kernel;
  options.num_threads = threads;
  return options;
}

std::vector<BatchQuery> QueriesOver(const std::vector<BaseSet>& bases) {
  std::vector<BatchQuery> queries;
  for (const BaseSet& base : bases) {
    BatchQuery q;
    q.base = &base;
    queries.push_back(std::move(q));
  }
  return queries;
}

TEST(BatchKernelEquivalence, ColdStartLanesAreBitIdenticalToSingles) {
  for (const size_t lanes : {size_t{1}, size_t{2}, size_t{3}, size_t{5},
                             size_t{8}}) {
    BatchCase c = MakeBatchCase(/*seed=*/20 + lanes, /*papers=*/400, lanes);
    ObjectRankEngine engine(c.dblp.dataset.authority());
    for (const int threads : {1, 2, 4, 8}) {
      const ObjectRankOptions options =
          FixedWorkOptions(PowerKernel::kFused, threads);
      const auto batch =
          engine.ComputeBatch(QueriesOver(c.bases), c.rates, options);
      ASSERT_EQ(batch.size(), lanes);
      for (size_t i = 0; i < lanes; ++i) {
        const auto single = engine.Compute(c.bases[i], c.rates, options);
        EXPECT_EQ(batch[i].iterations, single.iterations);
        EXPECT_EQ(batch[i].converged, single.converged);
        EXPECT_FALSE(batch[i].cancelled);
        ExpectBitIdentical(batch[i].scores, single.scores,
                           "lane " + std::to_string(i) + " of " +
                               std::to_string(lanes) + " at " +
                               std::to_string(threads) + " threads");
      }
    }
  }
}

TEST(BatchKernelEquivalence, ConvergingLanesRetireIndependently) {
  // With a real epsilon the lanes converge at different iterations and
  // retire out of the block one by one; each must stop at exactly the
  // iteration its single-query run stops at, with identical scores.
  BatchCase c = MakeBatchCase(/*seed=*/31, /*papers=*/500, /*lanes=*/5);
  ObjectRankEngine engine(c.dblp.dataset.authority());
  ObjectRankOptions options;
  options.epsilon = 1e-9;
  options.kernel = PowerKernel::kFused;
  options.num_threads = 4;

  const auto batch =
      engine.ComputeBatch(QueriesOver(c.bases), c.rates, options);
  ASSERT_EQ(batch.size(), c.bases.size());
  std::vector<int> iteration_counts;
  for (size_t i = 0; i < c.bases.size(); ++i) {
    const auto single = engine.Compute(c.bases[i], c.rates, options);
    ASSERT_TRUE(single.converged);
    EXPECT_TRUE(batch[i].converged);
    EXPECT_EQ(batch[i].iterations, single.iterations);
    iteration_counts.push_back(batch[i].iterations);
    ExpectBitIdentical(batch[i].scores, single.scores,
                       "converging lane " + std::to_string(i));
  }
  // The retirement machinery is only exercised if lanes actually finish
  // at different times; the varied base-set sizes guarantee it.
  EXPECT_GT(*std::max_element(iteration_counts.begin(),
                              iteration_counts.end()),
            *std::min_element(iteration_counts.begin(),
                              iteration_counts.end()));
}

TEST(BatchKernelEquivalence, WarmStartedLanesAreBitIdentical) {
  BatchCase c = MakeBatchCase(/*seed=*/32, /*papers=*/450, /*lanes=*/4);
  ObjectRankEngine engine(c.dblp.dataset.authority());
  const ObjectRankOptions options =
      FixedWorkOptions(PowerKernel::kFused, 4);

  // A dense warm start puts every lane in the block from iteration 1.
  const auto seed_run = engine.Compute(c.bases[0], c.rates, options);
  std::vector<BatchQuery> queries = QueriesOver(c.bases);
  for (BatchQuery& q : queries) q.warm_start = &seed_run.scores;

  const auto batch = engine.ComputeBatch(queries, c.rates, options);
  for (size_t i = 0; i < c.bases.size(); ++i) {
    const auto single =
        engine.Compute(c.bases[i], c.rates, options, &seed_run.scores);
    EXPECT_EQ(batch[i].iterations, single.iterations);
    ExpectBitIdentical(batch[i].scores, single.scores,
                       "warm lane " + std::to_string(i));
  }
}

TEST(BatchKernelEquivalence, MixedWarmAndColdLanesAreBitIdentical) {
  // Warm lanes join the block immediately; cold lanes push sparsely and
  // join later. Both kinds must still match their singles exactly.
  BatchCase c = MakeBatchCase(/*seed=*/33, /*papers=*/450, /*lanes=*/4);
  ObjectRankEngine engine(c.dblp.dataset.authority());
  const ObjectRankOptions options =
      FixedWorkOptions(PowerKernel::kFused, 2);

  const auto seed_run = engine.Compute(c.bases[0], c.rates, options);
  std::vector<BatchQuery> queries = QueriesOver(c.bases);
  queries[1].warm_start = &seed_run.scores;
  queries[3].warm_start = &seed_run.scores;

  const auto batch = engine.ComputeBatch(queries, c.rates, options);
  for (size_t i = 0; i < c.bases.size(); ++i) {
    const std::vector<double>* warm =
        (i == 1 || i == 3) ? &seed_run.scores : nullptr;
    const auto single = engine.Compute(c.bases[i], c.rates, options, warm);
    EXPECT_EQ(batch[i].iterations, single.iterations);
    ExpectBitIdentical(batch[i].scores, single.scores,
                       "mixed lane " + std::to_string(i));
  }
}

TEST(BatchKernelEquivalence, PerLaneCancellationRetiresOnlyThatLane) {
  BatchCase c = MakeBatchCase(/*seed=*/34, /*papers=*/400, /*lanes=*/3);
  ObjectRankEngine engine(c.dblp.dataset.authority());
  const ObjectRankOptions options =
      FixedWorkOptions(PowerKernel::kFused, 4);

  std::vector<BatchQuery> queries = QueriesOver(c.bases);
  int calls = 0;
  queries[1].cancel = [&calls] { return ++calls > 3; };

  const auto batch = engine.ComputeBatch(queries, c.rates, options);
  // Lane 1 stops after 3 iterations (cancel is polled once before each
  // of its iterations, exactly as Compute polls options.cancel)...
  EXPECT_TRUE(batch[1].cancelled);
  EXPECT_FALSE(batch[1].converged);
  EXPECT_EQ(batch[1].iterations, 3);
  // ...and the surviving lanes never notice: full fixed-work runs,
  // bit-identical to their singles.
  for (const size_t i : {size_t{0}, size_t{2}}) {
    const auto single = engine.Compute(c.bases[i], c.rates, options);
    EXPECT_FALSE(batch[i].cancelled);
    EXPECT_EQ(batch[i].iterations, 25);
    ExpectBitIdentical(batch[i].scores, single.scores,
                       "surviving lane " + std::to_string(i));
  }
}

TEST(BatchKernelEquivalence, BatchWideCancelStopsEveryLane) {
  BatchCase c = MakeBatchCase(/*seed=*/35, /*papers=*/400, /*lanes=*/3);
  ObjectRankEngine engine(c.dblp.dataset.authority());
  ObjectRankOptions options = FixedWorkOptions(PowerKernel::kFused, 2);
  int calls = 0;
  options.cancel = [&calls] { return ++calls > 2; };

  const auto batch =
      engine.ComputeBatch(QueriesOver(c.bases), c.rates, options);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(batch[i].cancelled) << "lane " << i;
    EXPECT_EQ(batch[i].iterations, 2) << "lane " << i;
  }
}

TEST(BatchKernelEquivalence, NonFusedKernelsFallBackPerLane) {
  // kSequentialPush and kLegacy have no block form; ComputeBatch must
  // still return exactly what per-lane Compute calls would.
  BatchCase c = MakeBatchCase(/*seed=*/36, /*papers=*/350, /*lanes=*/3);
  ObjectRankEngine engine(c.dblp.dataset.authority());
  for (const PowerKernel kernel :
       {PowerKernel::kSequentialPush, PowerKernel::kLegacy}) {
    const ObjectRankOptions options = FixedWorkOptions(kernel, 2);
    const auto batch =
        engine.ComputeBatch(QueriesOver(c.bases), c.rates, options);
    for (size_t i = 0; i < c.bases.size(); ++i) {
      const auto single = engine.Compute(c.bases[i], c.rates, options);
      EXPECT_EQ(batch[i].iterations, single.iterations);
      ExpectBitIdentical(batch[i].scores, single.scores,
                         "fallback lane " + std::to_string(i));
    }
  }
}

TEST(BatchKernelEquivalence, EmptyBatchReturnsEmpty) {
  BatchCase c = MakeBatchCase(/*seed=*/37, /*papers=*/200, /*lanes=*/1);
  ObjectRankEngine engine(c.dblp.dataset.authority());
  EXPECT_TRUE(engine.ComputeBatch({}, c.rates).empty());
}

// --- Searcher::SearchBatch -------------------------------------------------

std::vector<std::string> FrequentTerms(const text::Corpus& corpus,
                                       size_t count) {
  std::vector<std::pair<uint32_t, std::string>> by_df;
  for (text::TermId t = 0; t < corpus.vocab_size(); ++t) {
    by_df.emplace_back(corpus.Df(t), corpus.TermString(t));
  }
  std::sort(by_df.begin(), by_df.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<std::string> terms;
  for (size_t i = 0; i < by_df.size() && terms.size() < count; ++i) {
    terms.push_back(by_df[i].second);
  }
  return terms;
}

TEST(SearchBatchTest, LanesMatchFreshSingleSearches) {
  BatchCase c = MakeBatchCase(/*seed=*/40, /*papers=*/400, /*lanes=*/1);
  const auto& ds = c.dblp.dataset;
  const std::vector<std::string> terms = FrequentTerms(ds.corpus(), 4);
  ASSERT_GE(terms.size(), 4u);

  SearchOptions options;
  options.use_warm_start = false;  // every lane and single starts cold
  options.objectrank.num_threads = 2;

  std::vector<BatchSearchRequest> requests;
  for (const std::string& t : terms) {
    BatchSearchRequest r;
    r.query = text::QueryVector(text::ParseQuery(t));
    requests.push_back(std::move(r));
  }
  Searcher batch_searcher(ds.data(), ds.authority(), ds.corpus());
  const auto batch = batch_searcher.SearchBatch(requests, c.rates, options);
  ASSERT_EQ(batch.size(), terms.size());
  // The block solve must not leak into session warm-start state.
  EXPECT_EQ(batch_searcher.previous_scores(), nullptr);

  for (size_t i = 0; i < terms.size(); ++i) {
    Searcher single_searcher(ds.data(), ds.authority(), ds.corpus());
    const auto single = single_searcher.Search(
        text::QueryVector(text::ParseQuery(terms[i])), c.rates, options);
    ASSERT_TRUE(batch[i].ok()) << batch[i].status().message();
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batch[i]->iterations, single->iterations);
    EXPECT_EQ(batch[i]->base_set_size, single->base_set_size);
    ExpectBitIdentical(batch[i]->scores, single->scores,
                       "search lane '" + terms[i] + "'");
    ASSERT_EQ(batch[i]->top.size(), single->top.size());
    for (size_t k = 0; k < single->top.size(); ++k) {
      EXPECT_EQ(batch[i]->top[k].node, single->top[k].node);
    }
  }
}

TEST(SearchBatchTest, ErrorLanesDoNotPoisonTheBatch) {
  BatchCase c = MakeBatchCase(/*seed=*/41, /*papers=*/400, /*lanes=*/1);
  const auto& ds = c.dblp.dataset;
  const std::string term = FrequentTerms(ds.corpus(), 1).at(0);

  SearchOptions options;
  options.use_warm_start = false;
  std::vector<BatchSearchRequest> requests(3);
  requests[0].query = text::QueryVector();  // empty -> kInvalidArgument
  requests[1].query = text::QueryVector(text::ParseQuery(term));
  requests[2].query =
      text::QueryVector(text::ParseQuery("zzqqxxunindexed"));

  Searcher searcher(ds.data(), ds.authority(), ds.corpus());
  const auto batch = searcher.SearchBatch(requests, c.rates, options);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(batch[1].ok());
  EXPECT_FALSE(batch[1]->top.empty());
  EXPECT_EQ(batch[2].status().code(), StatusCode::kNotFound);
}

TEST(SearchBatchTest, CancelledLaneReportsDeadlineExceeded) {
  BatchCase c = MakeBatchCase(/*seed=*/42, /*papers=*/400, /*lanes=*/1);
  const auto& ds = c.dblp.dataset;
  const std::vector<std::string> terms = FrequentTerms(ds.corpus(), 2);
  ASSERT_GE(terms.size(), 2u);

  SearchOptions options;
  options.use_warm_start = false;
  options.objectrank.epsilon = 1e-12;  // keep lanes iterating a while
  std::vector<BatchSearchRequest> requests(2);
  requests[0].query = text::QueryVector(text::ParseQuery(terms[0]));
  requests[1].query = text::QueryVector(text::ParseQuery(terms[1]));
  int calls = 0;
  requests[0].cancel = [&calls] { return ++calls > 2; };

  Searcher searcher(ds.data(), ds.authority(), ds.corpus());
  const auto batch = searcher.SearchBatch(requests, c.rates, options);
  EXPECT_EQ(batch[0].status().code(), StatusCode::kDeadlineExceeded);
  ASSERT_TRUE(batch[1].ok());
  EXPECT_TRUE(batch[1]->converged);
}

// perf_smoke: with 8 warm (dense-from-start) lanes the block pass reads
// the SELL structure and fused weights once per iteration for all lanes,
// so aggregate lane-iteration throughput must clear a floor a silent
// per-lane fallback plus dispatch overhead would miss. The floor is far
// below real hardware speed so sanitizer builds still pass.
TEST(BatchKernelPerfSmoke, BatchedLanesSustainAggregateThroughputFloor) {
  BatchCase c = MakeBatchCase(/*seed=*/43, /*papers=*/2000, /*lanes=*/8);
  ObjectRankEngine engine(c.dblp.dataset.authority());
  ObjectRankOptions options = FixedWorkOptions(PowerKernel::kFused, 2);
  options.max_iterations = 10;

  const auto seed_run = engine.Compute(c.bases[0], c.rates, options);
  std::vector<BatchQuery> queries = QueriesOver(c.bases);
  for (BatchQuery& q : queries) q.warm_start = &seed_run.scores;

  engine.ComputeBatch(queries, c.rates, options);  // warm the layout
  Timer timer;
  long long lane_iterations = 0;
  while (timer.ElapsedSeconds() < 1.0) {
    for (const auto& r : engine.ComputeBatch(queries, c.rates, options)) {
      lane_iterations += r.iterations;
    }
  }
  const double edges_per_second =
      static_cast<double>(lane_iterations) *
      static_cast<double>(c.dblp.dataset.authority().num_edges()) /
      timer.ElapsedSeconds();
  EXPECT_GT(edges_per_second, 1e4);
}

}  // namespace
}  // namespace orx::core
