#include "io/dataset_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/searcher.h"
#include "datasets/bio_generator.h"
#include "datasets/dblp_generator.h"
#include "datasets/figure1.h"
#include "graph/conformance.h"
#include "text/query.h"

namespace orx::io {
namespace {

TEST(DatasetIoTest, RoundTripPreservesEverything) {
  datasets::DblpDataset dblp = datasets::GenerateDblp(
      datasets::DblpGeneratorConfig::Tiny(/*papers=*/400, /*seed=*/61));
  std::stringstream stream;
  ASSERT_TRUE(SerializeDataset(dblp.dataset, stream).ok());

  auto loaded = DeserializeDataset(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name(), dblp.dataset.name());
  EXPECT_TRUE(loaded->finalized());

  const graph::DataGraph& a = dblp.dataset.data();
  const graph::DataGraph& b = loaded->data();
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (graph::NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.NodeType(v), b.NodeType(v));
    EXPECT_EQ(a.Text(v), b.Text(v));
  }
  for (size_t i = 0; i < a.edges().size(); ++i) {
    EXPECT_EQ(a.edges()[i].from, b.edges()[i].from);
    EXPECT_EQ(a.edges()[i].to, b.edges()[i].to);
    EXPECT_EQ(a.edges()[i].type, b.edges()[i].type);
  }
  EXPECT_TRUE(graph::CheckConformance(b, loaded->schema()).ok());
}

TEST(DatasetIoTest, SerializationIsByteStable) {
  datasets::Figure1Dataset fig = datasets::MakeFigure1Dataset();
  std::stringstream first, second;
  ASSERT_TRUE(SerializeDataset(fig.dataset, first).ok());
  auto loaded = DeserializeDataset(first);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(SerializeDataset(*loaded, second).ok());
  EXPECT_EQ(first.str(), second.str());
}

TEST(DatasetIoTest, LoadedDatasetAnswersQueriesIdentically) {
  datasets::Figure1Dataset fig = datasets::MakeFigure1Dataset();
  std::stringstream stream;
  ASSERT_TRUE(SerializeDataset(fig.dataset, stream).ok());
  auto loaded = DeserializeDataset(stream);
  ASSERT_TRUE(loaded.ok());

  // Recover the schema handles from the loaded instance.
  auto types = datasets::DblpTypesFromSchema(loaded->schema());
  ASSERT_TRUE(types.ok());
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(loaded->schema(), *types);

  core::Searcher searcher(loaded->data(), loaded->authority(),
                          loaded->corpus());
  text::QueryVector query(text::ParseQuery("olap"));
  auto result = searcher.Search(query, rates);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->scores[fig.v7_data_cube], 0.083, 0.001);
}

TEST(DatasetIoTest, FileRoundTrip) {
  datasets::BioDataset bio = datasets::GenerateBio(
      datasets::BioGeneratorConfig::Tiny(/*pubs=*/200, /*seed=*/13));
  const std::string path = ::testing::TempDir() + "/orx_io_test.orxd";
  ASSERT_TRUE(SaveDataset(bio.dataset, path).ok());
  auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->data().num_nodes(), bio.dataset.data().num_nodes());
  EXPECT_EQ(loaded->data().num_edges(), bio.dataset.data().num_edges());
  auto types = datasets::BioTypesFromSchema(loaded->schema());
  EXPECT_TRUE(types.ok());
}

TEST(DatasetIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadDataset("/nonexistent/x.orxd").status().code(),
            StatusCode::kNotFound);
}

TEST(DatasetIoTest, CorruptStreamsAreDataLoss) {
  // Bad magic.
  {
    std::stringstream s("NOPE");
    EXPECT_EQ(DeserializeDataset(s).status().code(), StatusCode::kDataLoss);
  }
  // Truncation at various points of a valid stream.
  datasets::Figure1Dataset fig = datasets::MakeFigure1Dataset();
  std::stringstream full;
  ASSERT_TRUE(SerializeDataset(fig.dataset, full).ok());
  const std::string bytes = full.str();
  for (size_t cut : {size_t{4}, size_t{10}, bytes.size() / 2,
                     bytes.size() - 3}) {
    std::stringstream truncated(bytes.substr(0, cut));
    auto result = DeserializeDataset(truncated);
    EXPECT_FALSE(result.ok()) << "cut at " << cut;
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss)
        << "cut at " << cut;
  }
}

TEST(DatasetIoTest, CorruptLengthFieldsFailWithByteOffsets) {
  datasets::Figure1Dataset fig = datasets::MakeFigure1Dataset();
  std::stringstream full;
  ASSERT_TRUE(SerializeDataset(fig.dataset, full).ok());
  const std::string bytes = full.str();
  auto patch_u32 = [&](size_t at, uint32_t v) {
    std::string copy = bytes;
    for (int i = 0; i < 4; ++i) {
      copy[at + static_cast<size_t>(i)] =
          static_cast<char>((v >> (8 * i)) & 0xFF);
    }
    return copy;
  };

  {
    // Layout: magic(4) version(4), then u32 node-type count at byte 8 and
    // the first label's u32 length at byte 12. An absurd label length
    // must fail with kDataLoss naming the offending offset, not allocate.
    std::stringstream s(patch_u32(12, 0xFFFFFFF0u));
    auto result = DeserializeDataset(s);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
    EXPECT_NE(result.status().message().find("implausible"),
              std::string::npos);
    EXPECT_NE(result.status().message().find("at byte 12"),
              std::string::npos);
  }
  {
    // A length just under the sanity limit but far beyond the stream:
    // the chunked string read fails at end-of-stream with the offset.
    std::stringstream s(patch_u32(12, (1u << 27) - 1));
    auto result = DeserializeDataset(s);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
    EXPECT_NE(result.status().message().find("at byte"), std::string::npos);
  }
  // Truncation anywhere reports the byte where the stream ran dry.
  {
    std::stringstream truncated(bytes.substr(0, 20));
    auto result = DeserializeDataset(truncated);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("at byte"), std::string::npos)
        << result.status().message();
  }
}

TEST(DatasetIoTest, DanglingEdgeIdsAreRejected) {
  // Hand-craft a stream whose edge references a nonexistent node: take a
  // valid serialization and bump the edge count region... simpler: build
  // a tiny dataset, serialize, then corrupt the final edge's target id.
  datasets::Figure1Dataset fig = datasets::MakeFigure1Dataset();
  std::stringstream full;
  ASSERT_TRUE(SerializeDataset(fig.dataset, full).ok());
  std::string bytes = full.str();
  // The last 12 bytes are (from, to, type) of the final edge; overwrite
  // `to` with an out-of-range id.
  ASSERT_GE(bytes.size(), 12u);
  bytes[bytes.size() - 8] = static_cast<char>(0xFF);
  bytes[bytes.size() - 7] = static_cast<char>(0xFF);
  std::stringstream corrupted(bytes);
  auto result = DeserializeDataset(corrupted);
  EXPECT_FALSE(result.ok());
}

TEST(SchemaHandleRecoveryTest, WrongSchemaIsNotFound) {
  datasets::BioTypes bio_types;
  auto bio_schema = datasets::MakeBioSchema(&bio_types);
  EXPECT_EQ(datasets::DblpTypesFromSchema(*bio_schema).status().code(),
            StatusCode::kNotFound);
  datasets::DblpTypes dblp_types;
  auto dblp_schema = datasets::MakeDblpSchema(&dblp_types);
  EXPECT_EQ(datasets::BioTypesFromSchema(*dblp_schema).status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaHandleRecoveryTest, RecoveredHandlesMatchOriginals) {
  datasets::DblpTypes original;
  auto schema = datasets::MakeDblpSchema(&original);
  auto recovered = datasets::DblpTypesFromSchema(*schema);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->paper, original.paper);
  EXPECT_EQ(recovered->author, original.author);
  EXPECT_EQ(recovered->cites, original.cites);
  EXPECT_EQ(recovered->by, original.by);
}

}  // namespace
}  // namespace orx::io
