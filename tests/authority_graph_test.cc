#include "graph/authority_graph.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/dblp_schema.h"
#include "graph/data_graph.h"

namespace orx::graph {
namespace {

class AuthorityGraphTest : public ::testing::Test {
 protected:
  AuthorityGraphTest() : schema_(datasets::MakeDblpSchema(&types_)) {}

  datasets::DblpTypes types_;
  std::unique_ptr<SchemaGraph> schema_;
};

TEST_F(AuthorityGraphTest, EveryDataEdgeYieldsTwoAuthorityEdges) {
  DataGraph data(*schema_);
  NodeId p1 = *data.AddNode(types_.paper, {});
  NodeId p2 = *data.AddNode(types_.paper, {});
  NodeId a = *data.AddNode(types_.author, {});
  ASSERT_TRUE(data.AddEdge(p1, p2, types_.cites).ok());
  ASSERT_TRUE(data.AddEdge(p1, a, types_.by).ok());

  AuthorityGraph g = AuthorityGraph::Build(data);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);  // 2 data edges * 2 directions

  // p1 has two outgoing: forward cites to p2 and forward by to a.
  auto out_p1 = g.OutEdges(p1);
  ASSERT_EQ(out_p1.size(), 2u);
  // p2 has one outgoing: the backward cites edge to p1.
  auto out_p2 = g.OutEdges(p2);
  ASSERT_EQ(out_p2.size(), 1u);
  EXPECT_EQ(out_p2[0].target, p1);
  EXPECT_EQ(out_p2[0].rate_index,
            RateIndex(types_.cites, Direction::kBackward));
  // a has one outgoing: the backward by edge to p1.
  auto out_a = g.OutEdges(a);
  ASSERT_EQ(out_a.size(), 1u);
  EXPECT_EQ(out_a[0].target, p1);
}

TEST_F(AuthorityGraphTest, OutDegreeNormalizationPerEdgeType) {
  // p0 cites p1 and p2 -> each forward cites edge carries 1/2; the by edge
  // is normalized independently (Equation 1 counts per edge type).
  DataGraph data(*schema_);
  NodeId p0 = *data.AddNode(types_.paper, {});
  NodeId p1 = *data.AddNode(types_.paper, {});
  NodeId p2 = *data.AddNode(types_.paper, {});
  NodeId a = *data.AddNode(types_.author, {});
  ASSERT_TRUE(data.AddEdge(p0, p1, types_.cites).ok());
  ASSERT_TRUE(data.AddEdge(p0, p2, types_.cites).ok());
  ASSERT_TRUE(data.AddEdge(p0, a, types_.by).ok());

  AuthorityGraph g = AuthorityGraph::Build(data);
  for (const AuthorityEdge& e : g.OutEdges(p0)) {
    if (e.rate_index == RateIndex(types_.cites, Direction::kForward)) {
      EXPECT_FLOAT_EQ(e.inv_out_deg, 0.5f);
    } else {
      EXPECT_EQ(e.rate_index, RateIndex(types_.by, Direction::kForward));
      EXPECT_FLOAT_EQ(e.inv_out_deg, 1.0f);
    }
  }
}

TEST_F(AuthorityGraphTest, BackwardNormalizationUsesInDegree) {
  // Both p1 and p2 cite p0: p0's backward cites out-degree is 2.
  DataGraph data(*schema_);
  NodeId p0 = *data.AddNode(types_.paper, {});
  NodeId p1 = *data.AddNode(types_.paper, {});
  NodeId p2 = *data.AddNode(types_.paper, {});
  ASSERT_TRUE(data.AddEdge(p1, p0, types_.cites).ok());
  ASSERT_TRUE(data.AddEdge(p2, p0, types_.cites).ok());

  AuthorityGraph g = AuthorityGraph::Build(data);
  auto out_p0 = g.OutEdges(p0);
  ASSERT_EQ(out_p0.size(), 2u);
  for (const AuthorityEdge& e : out_p0) {
    EXPECT_EQ(e.rate_index, RateIndex(types_.cites, Direction::kBackward));
    EXPECT_FLOAT_EQ(e.inv_out_deg, 0.5f);
  }
}

TEST_F(AuthorityGraphTest, EdgeRateResolvesAgainstRates) {
  DataGraph data(*schema_);
  NodeId p0 = *data.AddNode(types_.paper, {});
  NodeId p1 = *data.AddNode(types_.paper, {});
  ASSERT_TRUE(data.AddEdge(p0, p1, types_.cites).ok());
  AuthorityGraph g = AuthorityGraph::Build(data);

  TransferRates rates = datasets::DblpGroundTruthRates(*schema_, types_);
  auto out = g.OutEdges(p0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(AuthorityGraph::EdgeRate(out[0], rates), 0.7);
  // The same index under different rates yields a different rate — no
  // rebuild needed.
  TransferRates uniform(*schema_, 0.3);
  EXPECT_DOUBLE_EQ(AuthorityGraph::EdgeRate(out[0], uniform), 0.3);
}

TEST_F(AuthorityGraphTest, InEdgesMirrorOutEdges) {
  // Property: on a random graph, every out-edge (u -> v) appears exactly
  // once among v's in-edges with identical annotations.
  DataGraph data(*schema_);
  Rng rng(11);
  std::vector<NodeId> papers;
  for (int i = 0; i < 30; ++i) {
    papers.push_back(*data.AddNode(types_.paper, {}));
  }
  for (int i = 1; i < 30; ++i) {
    const NodeId target = papers[rng.UniformInt(uint64_t(i))];
    if (target != papers[i]) {
      ASSERT_TRUE(data.AddEdge(papers[i], target, types_.cites).ok());
    }
  }
  AuthorityGraph g = AuthorityGraph::Build(data);

  size_t total_in = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) total_in += g.InEdges(v).size();
  EXPECT_EQ(total_in, g.num_edges());

  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const AuthorityEdge& e : g.OutEdges(u)) {
      bool found = false;
      for (const AuthorityEdge& in : g.InEdges(e.target)) {
        if (in.target == u && in.rate_index == e.rate_index &&
            in.inv_out_deg == e.inv_out_deg) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "missing mirror for edge " << u << " -> "
                         << e.target;
    }
  }
}

TEST_F(AuthorityGraphTest, EmptyGraph) {
  DataGraph data(*schema_);
  AuthorityGraph g = AuthorityGraph::Build(data);
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST_F(AuthorityGraphTest, MemoryFootprintPositive) {
  DataGraph data(*schema_);
  NodeId p0 = *data.AddNode(types_.paper, {});
  NodeId p1 = *data.AddNode(types_.paper, {});
  ASSERT_TRUE(data.AddEdge(p0, p1, types_.cites).ok());
  AuthorityGraph g = AuthorityGraph::Build(data);
  EXPECT_GT(g.MemoryFootprintBytes(), 0u);
}

}  // namespace
}  // namespace orx::graph
