#include "datasets/dataset.h"

#include <gtest/gtest.h>

#include "datasets/dblp_generator.h"
#include "datasets/dblp_schema.h"
#include "graph/conformance.h"

namespace orx::datasets {
namespace {

TEST(DatasetTest, FinalizeBuildsIndexes) {
  DblpTypes types;
  Dataset dataset(MakeDblpSchema(&types), "test");
  EXPECT_FALSE(dataset.finalized());
  graph::NodeId p = *dataset.mutable_data().AddNode(types.paper,
                                                    {{"Title", "olap"}});
  (void)p;
  dataset.Finalize();
  ASSERT_TRUE(dataset.finalized());
  EXPECT_EQ(dataset.authority().num_nodes(), 1u);
  EXPECT_EQ(dataset.corpus().num_docs(), 1u);
  EXPECT_EQ(dataset.name(), "test");
  EXPECT_GT(dataset.MemoryFootprintBytes(), 0u);
}

class InducedSubgraphTest : public ::testing::Test {
 protected:
  InducedSubgraphTest() : schema_(MakeDblpSchema(&types_)) {
    data_ = std::make_unique<graph::DataGraph>(*schema_);
    // Chain: p0 -> p1 -> p2 -> p3 (cites).
    for (int i = 0; i < 4; ++i) {
      papers_.push_back(*data_->AddNode(
          types_.paper, {{"Title", "paper" + std::to_string(i)}}));
    }
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(
          data_->AddEdge(papers_[i], papers_[i + 1], types_.cites).ok());
    }
  }

  DblpTypes types_;
  std::unique_ptr<graph::SchemaGraph> schema_;
  std::unique_ptr<graph::DataGraph> data_;
  std::vector<graph::NodeId> papers_;
};

TEST_F(InducedSubgraphTest, ZeroHopsKeepsOnlySeeds) {
  std::vector<bool> seed(4, false);
  seed[0] = seed[1] = true;
  auto sub = InducedSubgraph(*data_, seed, 0);
  EXPECT_EQ(sub->num_nodes(), 2u);
  EXPECT_EQ(sub->num_edges(), 1u);  // p0 -> p1 survives
  EXPECT_TRUE(graph::CheckConformance(*sub, *schema_).ok());
}

TEST_F(InducedSubgraphTest, OneHopExpandsUndirected) {
  std::vector<bool> seed(4, false);
  seed[2] = true;
  auto sub = InducedSubgraph(*data_, seed, 1);
  // p2 plus its neighbors p1 (in-edge) and p3 (out-edge).
  EXPECT_EQ(sub->num_nodes(), 3u);
  EXPECT_EQ(sub->num_edges(), 2u);
}

TEST_F(InducedSubgraphTest, AttributesSurvive) {
  std::vector<bool> seed(4, false);
  seed[3] = true;
  auto sub = InducedSubgraph(*data_, seed, 0);
  ASSERT_EQ(sub->num_nodes(), 1u);
  EXPECT_EQ(sub->AttributeValue(0, "Title"), "paper3");
}

TEST_F(InducedSubgraphTest, FullSeedIsIdentity) {
  std::vector<bool> seed(4, true);
  auto sub = InducedSubgraph(*data_, seed, 0);
  EXPECT_EQ(sub->num_nodes(), data_->num_nodes());
  EXPECT_EQ(sub->num_edges(), data_->num_edges());
}

TEST(ExtractKeywordSubsetTest, SelectsByTypeAndKeyword) {
  DblpDataset dblp = GenerateDblp(DblpGeneratorConfig::Tiny(500, 10));
  const graph::DataGraph& data = dblp.dataset.data();
  auto sub = ExtractKeywordSubset(data, dblp.dataset.corpus(), "data",
                                  dblp.types.paper, /*expand_hops=*/1);
  ASSERT_NE(sub, nullptr);
  EXPECT_GT(sub->num_nodes(), 0u);
  EXPECT_LE(sub->num_nodes(), data.num_nodes());

  auto none = ExtractKeywordSubset(data, dblp.dataset.corpus(),
                                   "zzznotaword", dblp.types.paper, 1);
  EXPECT_EQ(none, nullptr);
}

TEST(DatasetResetTest, ResetDataClearsIndexes) {
  DblpTypes types;
  Dataset dataset(MakeDblpSchema(&types), "reset-test");
  *dataset.mutable_data().AddNode(types.paper, {{"Title", "one"}});
  dataset.Finalize();
  ASSERT_TRUE(dataset.finalized());

  auto replacement =
      std::make_unique<graph::DataGraph>(dataset.schema());
  *replacement->AddNode(types.paper, {{"Title", "two"}});
  *replacement->AddNode(types.paper, {{"Title", "three"}});
  dataset.ResetData(std::move(replacement));
  EXPECT_FALSE(dataset.finalized());
  dataset.Finalize();
  EXPECT_EQ(dataset.corpus().num_docs(), 2u);
}

}  // namespace
}  // namespace orx::datasets
