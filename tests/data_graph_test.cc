#include "graph/data_graph.h"

#include <gtest/gtest.h>

#include "graph/conformance.h"

namespace orx::graph {
namespace {

class DataGraphTest : public ::testing::Test {
 protected:
  DataGraphTest() {
    paper_ = *schema_.AddNodeType("Paper");
    author_ = *schema_.AddNodeType("Author");
    cites_ = *schema_.AddEdgeType(paper_, paper_, "cites");
    by_ = *schema_.AddEdgeType(paper_, author_, "by");
  }

  SchemaGraph schema_;
  TypeId paper_, author_;
  EdgeTypeId cites_, by_;
};

TEST_F(DataGraphTest, AddNodesAssignsDenseIds) {
  DataGraph data(schema_);
  auto a = data.AddNode(paper_, {{"Title", "A"}});
  auto b = data.AddNode(author_, {{"Name", "X"}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 1u);
  EXPECT_EQ(data.num_nodes(), 2u);
  EXPECT_EQ(data.NodeType(*a), paper_);
  EXPECT_EQ(data.NodeType(*b), author_);
}

TEST_F(DataGraphTest, RejectsUnknownNodeType) {
  DataGraph data(schema_);
  EXPECT_EQ(data.AddNode(42, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DataGraphTest, AttributesAndText) {
  DataGraph data(schema_);
  NodeId v = *data.AddNode(
      paper_, {{"Title", "Data Cube"}, {"Year", "ICDE 1996"}});
  auto attrs = data.Attributes(v);
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0].name, "Title");
  EXPECT_EQ(data.Text(v), "Data Cube ICDE 1996");
  EXPECT_EQ(data.AttributeValue(v, "Year"), "ICDE 1996");
  EXPECT_EQ(data.AttributeValue(v, "Missing"), "");
  EXPECT_EQ(data.DisplayLabel(v), "Data Cube");
}

TEST_F(DataGraphTest, DisplayLabelFallsBackToType) {
  DataGraph data(schema_);
  NodeId v = *data.AddNode(author_, {});
  EXPECT_EQ(data.DisplayLabel(v), "Author#0");
  EXPECT_EQ(data.Text(v), "");
}

TEST_F(DataGraphTest, AddEdgeValidatesEndpointTypes) {
  DataGraph data(schema_);
  NodeId p = *data.AddNode(paper_, {});
  NodeId a = *data.AddNode(author_, {});
  EXPECT_TRUE(data.AddEdge(p, a, by_).ok());
  // Wrong direction.
  EXPECT_EQ(data.AddEdge(a, p, by_).code(), StatusCode::kInvalidArgument);
  // cites requires paper endpoints.
  EXPECT_EQ(data.AddEdge(p, a, cites_).code(),
            StatusCode::kInvalidArgument);
  // Unknown ids.
  EXPECT_EQ(data.AddEdge(p, 99, by_).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(data.AddEdge(p, a, 99).code(), StatusCode::kInvalidArgument);
}

TEST_F(DataGraphTest, RejectsSelfLoops) {
  DataGraph data(schema_);
  NodeId p = *data.AddNode(paper_, {});
  EXPECT_EQ(data.AddEdge(p, p, cites_).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DataGraphTest, ConformanceOfValidGraph) {
  DataGraph data(schema_);
  NodeId p1 = *data.AddNode(paper_, {});
  NodeId p2 = *data.AddNode(paper_, {});
  NodeId a = *data.AddNode(author_, {});
  ASSERT_TRUE(data.AddEdge(p1, p2, cites_).ok());
  ASSERT_TRUE(data.AddEdge(p1, a, by_).ok());
  EXPECT_TRUE(CheckConformance(data, schema_).ok());
}

TEST_F(DataGraphTest, ConformanceDetectsForeignSchema) {
  DataGraph data(schema_);
  SchemaGraph other;
  EXPECT_EQ(CheckConformance(data, other).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DataGraphTest, MemoryFootprintGrowsWithContent) {
  DataGraph data(schema_);
  const size_t empty = data.MemoryFootprintBytes();
  *data.AddNode(paper_, {{"Title", "a moderately long title string"}});
  EXPECT_GT(data.MemoryFootprintBytes(), empty);
}

}  // namespace
}  // namespace orx::graph
