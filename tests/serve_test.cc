#include "serve/search_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "datasets/dblp_generator.h"
#include "serve/snapshot.h"
#include "text/query.h"

namespace orx::serve {
namespace {

/// Builds a snapshot over a freshly generated tiny DBLP dataset; the
/// aliasing shared_ptrs keep the dataset alive for the snapshot's life.
std::shared_ptr<const ServeSnapshot> MakeDblpSnapshot(uint32_t papers,
                                                      uint64_t seed) {
  auto owner = std::make_shared<datasets::DblpDataset>(datasets::GenerateDblp(
      datasets::DblpGeneratorConfig::Tiny(papers, seed)));
  graph::TransferRates rates = datasets::DblpGroundTruthRates(
      owner->dataset.schema(), owner->types);
  return std::make_shared<ServeSnapshot>(SnapshotFromOwner(
      owner, owner->dataset.data(), owner->dataset.authority(),
      owner->dataset.corpus(), std::move(rates)));
}

/// The `count` most frequent corpus terms — guaranteed non-empty base
/// sets for query workloads.
std::vector<std::string> TopTerms(const text::Corpus& corpus, size_t count) {
  std::vector<std::pair<uint32_t, std::string>> by_df;
  for (text::TermId t = 0; t < corpus.vocab_size(); ++t) {
    by_df.emplace_back(corpus.Df(t), corpus.TermString(t));
  }
  std::sort(by_df.begin(), by_df.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<std::string> terms;
  for (size_t i = 0; i < by_df.size() && terms.size() < count; ++i) {
    terms.push_back(by_df[i].second);
  }
  return terms;
}

ServeRequest MakeRequest(const std::string& query_text) {
  ServeRequest request;
  request.query = text::QueryVector(text::ParseQuery(query_text));
  return request;
}

/// Reference result: what a bare single-session Searcher computes for the
/// snapshot's defaults.
core::SearchResult DirectSearch(const ServeSnapshot& snap,
                                const std::string& query_text) {
  core::Searcher searcher(*snap.data, *snap.authority, *snap.corpus);
  if (snap.rank_cache != nullptr) {
    searcher.AttachRankCache(snap.rank_cache.get());
  }
  text::QueryVector query(text::ParseQuery(query_text));
  auto result = searcher.Search(query, snap.rates, snap.default_options);
  EXPECT_TRUE(result.ok()) << result.status();
  return *result;
}

/// A cancellation hook that parks the power iteration until Open(); used
/// to hold an execution in flight deterministically.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<bool> entered{false};

  bool Block() {
    entered.store(true);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return open; });
    return false;  // never cancel; just stall
  }
  void WaitUntilEntered() {
    while (!entered.load()) std::this_thread::yield();
  }
  void Open() {
    std::lock_guard<std::mutex> lock(mu);
    open = true;
    cv.notify_all();
  }
};

core::SearchOptions GatedOptions(const ServeSnapshot& snap,
                                 const std::shared_ptr<Gate>& gate) {
  core::SearchOptions options = snap.default_options;
  options.objectrank.cancel = [gate] { return gate->Block(); };
  return options;
}

TEST(SearchServiceTest, ConcurrentSubmitsMatchSequentialResults) {
  auto snap = MakeDblpSnapshot(250, 3);
  const std::vector<std::string> terms = TopTerms(*snap->corpus, 12);
  ASSERT_GE(terms.size(), 8u);

  std::unordered_map<std::string, core::SearchResult> reference;
  for (const std::string& t : terms) reference[t] = DirectSearch(*snap, t);

  SearchService::Options options;
  options.num_threads = 4;
  SearchService service(snap, options);
  std::vector<std::future<StatusOr<ServeResponse>>> futures;
  std::vector<std::string> submitted;
  for (int round = 0; round < 4; ++round) {
    for (const std::string& t : terms) {
      futures.push_back(service.Submit(MakeRequest(t)));
      submitted.push_back(t);
    }
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    auto response = futures[i].get();
    ASSERT_TRUE(response.ok()) << response.status();
    const core::SearchResult& expected = reference[submitted[i]];
    EXPECT_EQ(response->result.scores, expected.scores) << submitted[i];
    EXPECT_EQ(response->result.top, expected.top) << submitted[i];
  }
  const ServeMetrics m = service.Snapshot();
  EXPECT_EQ(m.submitted, futures.size());
  EXPECT_EQ(m.completed, futures.size());
  EXPECT_EQ(m.rejected, 0u);
  // 12 unique keys, 48 submissions: everything beyond the first
  // execution of a key is a hit or a coalesced waiter.
  EXPECT_EQ(m.executed + m.cache_hits + m.coalesced, futures.size());
  EXPECT_GE(m.executed, terms.size());
}

TEST(SearchServiceTest, SingleFlightCoalescesIdenticalQueries) {
  auto snap = MakeDblpSnapshot(200, 4);
  const std::string term = TopTerms(*snap->corpus, 1).at(0);
  SearchService::Options options;
  options.num_threads = 2;
  SearchService service(snap, options);

  auto gate = std::make_shared<Gate>();
  ServeRequest leader = MakeRequest(term);
  leader.options = GatedOptions(*snap, gate);
  auto leader_future = service.Submit(std::move(leader));
  gate->WaitUntilEntered();  // the execution is now parked in flight

  constexpr int kFollowers = 6;
  std::vector<std::future<StatusOr<ServeResponse>>> followers;
  for (int i = 0; i < kFollowers; ++i) {
    ServeRequest follower = MakeRequest(term);
    follower.options = GatedOptions(*snap, gate);  // identical key
    followers.push_back(service.Submit(std::move(follower)));
  }
  EXPECT_EQ(service.Snapshot().coalesced, static_cast<uint64_t>(kFollowers));

  gate->Open();
  auto led = leader_future.get();
  ASSERT_TRUE(led.ok()) << led.status();
  EXPECT_FALSE(led->coalesced);
  for (auto& f : followers) {
    auto response = f.get();
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_TRUE(response->coalesced);
    EXPECT_EQ(response->result.scores, led->result.scores);
  }
  const ServeMetrics m = service.Snapshot();
  EXPECT_EQ(m.executed, 1u);  // one power iteration served 7 requests
  EXPECT_EQ(m.coalesced, static_cast<uint64_t>(kFollowers));
  EXPECT_EQ(m.completed, static_cast<uint64_t>(kFollowers) + 1);
}

TEST(SearchServiceTest, AdmissionOverflowReturnsUnavailable) {
  auto snap = MakeDblpSnapshot(200, 5);
  const std::vector<std::string> terms = TopTerms(*snap->corpus, 3);
  ASSERT_GE(terms.size(), 3u);
  SearchService::Options options;
  options.num_threads = 1;
  options.max_pending = 2;
  SearchService service(snap, options);

  auto gate = std::make_shared<Gate>();
  ServeRequest blocker = MakeRequest(terms[0]);
  blocker.options = GatedOptions(*snap, gate);
  auto running = service.Submit(std::move(blocker));
  gate->WaitUntilEntered();  // occupies the only worker; pending = 1

  auto queued = service.Submit(MakeRequest(terms[1]));  // pending = 2
  auto rejected = service.Submit(MakeRequest(terms[2]));
  // The overflow future is fulfilled synchronously by Submit.
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(rejected.get().status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.Snapshot().rejected, 1u);

  gate->Open();
  EXPECT_TRUE(running.get().ok());
  EXPECT_TRUE(queued.get().ok());
  const ServeMetrics m = service.Snapshot();
  EXPECT_EQ(m.executed, 2u);
  EXPECT_EQ(m.completed, 2u);  // the rejection is not a completion
}

TEST(SearchServiceTest, DeadlineExpiredInQueueFailsWithoutExecuting) {
  auto snap = MakeDblpSnapshot(200, 6);
  const std::string term = TopTerms(*snap->corpus, 1).at(0);
  SearchService service(snap, SearchService::Options{});

  ServeRequest request = MakeRequest(term);
  request.deadline_seconds = 1e-7;  // expired by the time a worker starts
  auto response = service.Search(std::move(request));
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.Snapshot().deadline_exceeded, 1u);
}

TEST(SearchServiceTest, MidIterationCancellationSurfacesDeadlineExceeded) {
  auto snap = MakeDblpSnapshot(200, 6);
  const std::string term = TopTerms(*snap->corpus, 1).at(0);
  SearchService service(snap, SearchService::Options{});

  // A caller-supplied hook that trips during the power iteration; the
  // service must return kDeadlineExceeded and count it.
  auto calls = std::make_shared<std::atomic<int>>(0);
  ServeRequest request = MakeRequest(term);
  request.options = snap->default_options;
  request.options->objectrank.cancel = [calls] {
    return calls->fetch_add(1) >= 2;
  };
  auto response = service.Search(std::move(request));
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.Snapshot().deadline_exceeded, 1u);
  EXPECT_GE(calls->load(), 3);
}

TEST(SearchServiceTest, ResultCacheServesRepeatsWithoutExecution) {
  auto snap = MakeDblpSnapshot(200, 8);
  const std::string term = TopTerms(*snap->corpus, 1).at(0);
  SearchService service(snap, SearchService::Options{});

  auto first = service.Search(MakeRequest(term));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  auto second = service.Search(MakeRequest(term));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->result.scores, first->result.scores);
  EXPECT_EQ(second->result.top, first->result.top);

  // Keyword order must not defeat the normalized key.
  const std::string two_terms =
      TopTerms(*snap->corpus, 2).at(1) + " " + term;
  const std::string reversed = term + " " + TopTerms(*snap->corpus, 2).at(1);
  auto a = service.Search(MakeRequest(two_terms));
  ASSERT_TRUE(a.ok());
  auto b = service.Search(MakeRequest(reversed));
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->cache_hit);
  EXPECT_EQ(b->result.scores, a->result.scores);

  const ServeMetrics m = service.Snapshot();
  EXPECT_EQ(m.executed, 2u);
  EXPECT_EQ(m.cache_hits, 2u);
}

TEST(SearchServiceTest, CacheOffExecutesEveryRequest) {
  auto snap = MakeDblpSnapshot(200, 8);
  const std::string term = TopTerms(*snap->corpus, 1).at(0);
  SearchService::Options options;
  options.result_cache_entries = 0;
  options.single_flight = false;
  SearchService service(snap, options);

  for (int i = 0; i < 3; ++i) {
    auto response = service.Search(MakeRequest(term));
    ASSERT_TRUE(response.ok());
    EXPECT_FALSE(response->cache_hit);
    EXPECT_FALSE(response->coalesced);
  }
  const ServeMetrics m = service.Snapshot();
  EXPECT_EQ(m.executed, 3u);
  EXPECT_EQ(m.cache_hits, 0u);
  EXPECT_EQ(m.coalesced, 0u);
}

TEST(SearchServiceTest, LruEvictsLeastRecentlyUsedEntry) {
  auto snap = MakeDblpSnapshot(200, 9);
  const std::vector<std::string> terms = TopTerms(*snap->corpus, 2);
  ASSERT_GE(terms.size(), 2u);
  SearchService::Options options;
  options.result_cache_entries = 1;
  SearchService service(snap, options);

  ASSERT_TRUE(service.Search(MakeRequest(terms[0])).ok());  // cache: A
  ASSERT_TRUE(service.Search(MakeRequest(terms[1])).ok());  // evicts A
  auto again = service.Search(MakeRequest(terms[0]));       // recompute
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->cache_hit);
  EXPECT_EQ(service.Snapshot().executed, 3u);
}

TEST(SearchServiceTest, SearchErrorsPropagateToTheFuture) {
  auto snap = MakeDblpSnapshot(200, 10);
  SearchService service(snap, SearchService::Options{});
  auto not_found = service.Search(MakeRequest("zzzzunknownkeyword"));
  EXPECT_EQ(not_found.status().code(), StatusCode::kNotFound);

  ServeRequest bad = MakeRequest(TopTerms(*snap->corpus, 1).at(0));
  bad.options = snap->default_options;
  bad.options->k = 0;
  EXPECT_EQ(service.Search(std::move(bad)).status().code(),
            StatusCode::kInvalidArgument);
  const ServeMetrics m = service.Snapshot();
  EXPECT_EQ(m.failed, 2u);
  EXPECT_EQ(m.deadline_exceeded, 0u);
}

TEST(SearchServiceTest, SnapshotSwapMidTrafficIsSeamless) {
  auto snap1 = MakeDblpSnapshot(220, 1);
  auto snap2 = MakeDblpSnapshot(220, 7);

  // Query terms present in both corpora so every request succeeds against
  // either snapshot.
  std::vector<std::string> terms;
  for (const std::string& t : TopTerms(*snap1->corpus, 30)) {
    for (text::TermId u = 0; u < snap2->corpus->vocab_size(); ++u) {
      if (snap2->corpus->TermString(u) == t && snap2->corpus->Df(u) > 0) {
        terms.push_back(t);
        break;
      }
    }
    if (terms.size() == 6) break;
  }
  ASSERT_GE(terms.size(), 4u);

  std::unordered_map<std::string, core::SearchResult> ref1, ref2;
  for (const std::string& t : terms) {
    ref1[t] = DirectSearch(*snap1, t);
    ref2[t] = DirectSearch(*snap2, t);
  }

  SearchService::Options options;
  options.num_threads = 4;
  // This test requires every post-swap response to be computed on (or
  // cached from) snapshot 2, so retained stale hits are off.
  options.result_cache_versions = 1;
  SearchService service(snap1, options);

  constexpr int kClients = 4;
  constexpr int kPerClient = 40;
  std::atomic<int> done{0};
  std::atomic<bool> swapped{false};
  std::atomic<int> new_version_responses{0};
  std::vector<std::thread> clients;
  std::atomic<bool> failed{false};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        // Each client pauses at its halfway point until the swap has
        // happened, so the second half of the traffic is guaranteed to
        // see snapshot 2 (the first half may still be in flight during
        // the swap — exactly the hot-reload scenario).
        if (i == kPerClient / 2) {
          while (!swapped.load()) std::this_thread::yield();
        }
        const std::string& term = terms[(c * 13 + i) % terms.size()];
        auto response = service.Search(MakeRequest(term));
        if (!response.ok()) {
          failed.store(true);
          continue;
        }
        const core::SearchResult& expected =
            response->snapshot_version == 1 ? ref1[term] : ref2[term];
        if (response->result.scores != expected.scores) failed.store(true);
        if (response->snapshot_version == 2) new_version_responses.fetch_add(1);
        done.fetch_add(1);
      }
    });
  }
  // Swap once traffic is flowing; in-flight requests finish on snapshot 1.
  while (done.load() < kClients * kPerClient / 8) std::this_thread::yield();
  service.SwapSnapshot(snap2);
  swapped.store(true);
  for (std::thread& t : clients) t.join();

  EXPECT_FALSE(failed.load());
  EXPECT_EQ(service.snapshot_version(), 2u);
  // Everything submitted after the swap ran (or was cached) on v2.
  EXPECT_GE(new_version_responses.load(), kClients * kPerClient / 2);
  EXPECT_EQ(service.Snapshot().completed,
            static_cast<uint64_t>(kClients * kPerClient));
}

TEST(SearchServiceTest, ResultCacheRetainsRecentVersionsAcrossSwap) {
  // Two snapshots over the identical dataset: only the version changes,
  // so a retained stale hit is observable purely via snapshot_version.
  auto snap1 = MakeDblpSnapshot(200, 21);
  auto snap2 = MakeDblpSnapshot(200, 21);
  const std::string term = TopTerms(*snap1->corpus, 1).at(0);
  SearchService::Options options;  // result_cache_versions = 2 (default)
  SearchService service(snap1, options);

  auto warm = service.Search(MakeRequest(term));
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_FALSE(warm->cache_hit);

  // One swap: the v1 entry is still inside the retention window and must
  // keep serving hits, reported against the version it was computed on —
  // the hit-rate does not fall off a cliff at every publication.
  service.SwapSnapshot(snap2);
  auto retained = service.Search(MakeRequest(term));
  ASSERT_TRUE(retained.ok()) << retained.status();
  EXPECT_TRUE(retained->cache_hit);
  EXPECT_EQ(retained->snapshot_version, 1u);
  EXPECT_EQ(retained->result.scores, warm->result.scores);

  // A second swap slides v1 out of the window; the same query must now
  // recompute against the current snapshot.
  service.SwapSnapshot(snap1);
  auto recomputed = service.Search(MakeRequest(term));
  ASSERT_TRUE(recomputed.ok()) << recomputed.status();
  EXPECT_FALSE(recomputed->cache_hit);
  EXPECT_EQ(recomputed->snapshot_version, 3u);

  const ServeMetrics m = service.Snapshot();
  EXPECT_EQ(m.executed, 2u);
  EXPECT_EQ(m.cache_hits, 1u);
}

TEST(SearchServiceTest, SnapshotAliasingKeepsOwnerAlive) {
  auto snap = MakeDblpSnapshot(200, 11);
  // MakeDblpSnapshot's owner went out of scope; only the aliasing
  // shared_ptrs keep the dataset alive. A query must still work.
  SearchService service(snap, SearchService::Options{});
  auto response = service.Search(MakeRequest(TopTerms(*snap->corpus, 1)[0]));
  EXPECT_TRUE(response.ok()) << response.status();
}

TEST(SearchServiceTest, MetricsReportLatencyAndQps) {
  auto snap = MakeDblpSnapshot(200, 12);
  SearchService service(snap, SearchService::Options{});
  const std::vector<std::string> terms = TopTerms(*snap->corpus, 4);
  for (const std::string& t : terms) {
    ASSERT_TRUE(service.Search(MakeRequest(t)).ok());
  }
  const ServeMetrics m = service.Snapshot();
  EXPECT_EQ(m.completed, terms.size());
  EXPECT_GT(m.latency_p50, 0.0);
  EXPECT_LE(m.latency_p50, m.latency_p99);
  EXPECT_GT(m.qps, 0.0);
  EXPECT_GT(m.uptime_seconds, 0.0);
  EXPECT_FALSE(m.ToString().empty());
}

TEST(SearchServiceTest, SubmitAsyncDeliversSameResponseAsFutures) {
  auto snap = MakeDblpSnapshot(200, 18);
  const std::string term = TopTerms(*snap->corpus, 1).at(0);
  SearchService service(snap, SearchService::Options{});
  const core::SearchResult expected = DirectSearch(*snap, term);

  std::promise<StatusOr<ServeResponse>> delivered;
  auto future = delivered.get_future();
  service.SubmitAsync(MakeRequest(term),
                      [&delivered](StatusOr<ServeResponse> response) {
                        delivered.set_value(std::move(response));
                      });
  auto response = future.get();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->result.scores, expected.scores);
  EXPECT_EQ(response->result.top, expected.top);
  EXPECT_FALSE(response->cache_hit);

  // The repeat resolves at Submit time: the callback runs synchronously
  // on the calling thread, before SubmitAsync returns.
  bool ran = false;
  service.SubmitAsync(MakeRequest(term),
                      [&ran, &expected](StatusOr<ServeResponse> response) {
                        ran = true;
                        ASSERT_TRUE(response.ok()) << response.status();
                        EXPECT_TRUE(response->cache_hit);
                        EXPECT_EQ(response->result.scores, expected.scores);
                      });
  EXPECT_TRUE(ran);
}

TEST(SearchServiceTest, SubmitAsyncRejectionRunsCallbackSynchronously) {
  auto snap = MakeDblpSnapshot(200, 18);
  const std::vector<std::string> terms = TopTerms(*snap->corpus, 2);
  ASSERT_GE(terms.size(), 2u);
  SearchService::Options options;
  options.num_threads = 1;
  options.max_pending = 1;
  SearchService service(snap, options);

  auto gate = std::make_shared<Gate>();
  ServeRequest blocker = MakeRequest(terms[0]);
  blocker.options = GatedOptions(*snap, gate);
  auto running = service.Submit(std::move(blocker));
  gate->WaitUntilEntered();  // the only admission slot is taken

  bool ran = false;
  service.SubmitAsync(MakeRequest(terms[1]),
                      [&ran](StatusOr<ServeResponse> response) {
                        ran = true;
                        EXPECT_EQ(response.status().code(),
                                  StatusCode::kUnavailable);
                      });
  EXPECT_TRUE(ran);  // rejection delivered before SubmitAsync returned
  EXPECT_EQ(service.Snapshot().rejected, 1u);

  gate->Open();
  EXPECT_TRUE(running.get().ok());
}

TEST(SearchServiceTest, SubmitAsyncCoalescedWaitersGetCallbacks) {
  auto snap = MakeDblpSnapshot(200, 19);
  const std::string term = TopTerms(*snap->corpus, 1).at(0);
  SearchService::Options options;
  options.num_threads = 2;
  SearchService service(snap, options);

  auto gate = std::make_shared<Gate>();
  ServeRequest leader = MakeRequest(term);
  leader.options = GatedOptions(*snap, gate);
  auto leader_future = service.Submit(std::move(leader));
  gate->WaitUntilEntered();

  constexpr int kFollowers = 4;
  std::atomic<int> coalesced_callbacks{0};
  std::vector<std::future<StatusOr<ServeResponse>>> followers;
  for (int i = 0; i < kFollowers; ++i) {
    auto delivered = std::make_shared<std::promise<StatusOr<ServeResponse>>>();
    followers.push_back(delivered->get_future());
    ServeRequest follower = MakeRequest(term);
    follower.options = GatedOptions(*snap, gate);  // identical key
    service.SubmitAsync(std::move(follower),
                        [delivered, &coalesced_callbacks](
                            StatusOr<ServeResponse> response) {
                          if (response.ok() && response->coalesced) {
                            coalesced_callbacks.fetch_add(1);
                          }
                          delivered->set_value(std::move(response));
                        });
  }
  gate->Open();
  ASSERT_TRUE(leader_future.get().ok());
  for (auto& f : followers) {
    auto response = f.get();
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_TRUE(response->coalesced);
  }
  EXPECT_EQ(coalesced_callbacks.load(), kFollowers);
  EXPECT_EQ(service.Snapshot().executed, 1u);
}

TEST(SearchServiceTest, MetricsSnapshotConsistentUnderLoad) {
  // Regression for non-atomic counter sampling: a snapshot taken
  // mid-burst used to show `completed` ahead of the action counters
  // (each completion incremented completed_ before its observer could
  // see the matching cache_hit/coalesced/executed increment ordered).
  // Snapshot() now loads completed_ first with acquire against Fulfill's
  // release, so these invariants must hold in EVERY cut, not just at
  // quiescence.
  auto snap = MakeDblpSnapshot(200, 20);
  const std::vector<std::string> terms = TopTerms(*snap->corpus, 6);
  ASSERT_GE(terms.size(), 4u);
  SearchService::Options options;
  options.num_threads = 4;
  SearchService service(snap, options);

  std::atomic<bool> stop{false};
  std::atomic<bool> violated{false};
  std::thread sampler([&] {
    while (!stop.load()) {
      const ServeMetrics m = service.Snapshot();
      if (m.completed > m.cache_hits + m.coalesced + m.executed ||
          m.completed > m.submitted) {
        violated.store(true);
      }
    }
  });

  constexpr int kClients = 4;
  constexpr int kPerClient = 60;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const std::string& term = terms[(c * 7 + i) % terms.size()];
        auto response = service.Search(MakeRequest(term));
        EXPECT_TRUE(response.ok()) << response.status();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop.store(true);
  sampler.join();

  EXPECT_FALSE(violated.load())
      << "a metrics snapshot showed completed ahead of its action counters";
  const ServeMetrics m = service.Snapshot();
  EXPECT_EQ(m.completed, static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_EQ(m.executed + m.cache_hits + m.coalesced, m.completed);
}

TEST(SearchServiceTest, CapIntraQueryThreadsNeverOversubscribes) {
  const size_t hardware = ThreadPool::HardwareThreads();
  for (const size_t workers : {size_t{1}, size_t{2}, size_t{8}, hardware}) {
    for (const int requested : {-3, 0, 1, 2, 8, 1024}) {
      const int cap = SearchService::CapIntraQueryThreads(requested, workers);
      EXPECT_GE(cap, 1);
      if (requested >= 1) {
        EXPECT_LE(cap, requested);
      }
      // The threading contract (docs/serving.md): workers x intra-query
      // threads stays within the machine whenever the pool itself does.
      if (workers <= hardware) {
        EXPECT_LE(static_cast<size_t>(cap) * workers, hardware)
            << "workers=" << workers << " requested=" << requested;
      }
    }
  }
  // A lone worker may use the whole machine.
  EXPECT_EQ(SearchService::CapIntraQueryThreads(
                static_cast<int>(hardware) + 7, 1),
            static_cast<int>(hardware));
}

TEST(SearchServiceTest, OversizedThreadRequestsShareOneCacheKey) {
  auto snap = MakeDblpSnapshot(200, 17);
  const std::string term = TopTerms(*snap->corpus, 1).front();
  SearchService::Options service_options;
  service_options.num_threads = 2;
  SearchService service(snap, service_options);

  // Both requests exceed the intra-query cap, so after clamping they are
  // the same work item and the second must be a cache hit.
  ServeRequest first = MakeRequest(term);
  first.options = snap->default_options;
  first.options->objectrank.num_threads = 64;
  ASSERT_TRUE(service.Search(std::move(first)).ok());

  ServeRequest second = MakeRequest(term);
  second.options = snap->default_options;
  second.options->objectrank.num_threads = 128;
  auto response = service.Search(std::move(second));
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->cache_hit);
  EXPECT_EQ(service.Snapshot().executed, 1u);
}

// --- Dynamic micro-batching (docs/batching.md) -----------------------------

SearchService::Options BatchingOptions(size_t max_batch_size,
                                       double max_batch_delay_ms) {
  SearchService::Options options;
  options.num_threads = 2;
  options.max_batch_size = max_batch_size;
  options.max_batch_delay_ms = max_batch_delay_ms;
  return options;
}

TEST(SearchServiceBatchingTest, WindowFlushesWhenMaxBatchSizeReached) {
  auto snap = MakeDblpSnapshot(200, 14);
  const std::vector<std::string> terms = TopTerms(*snap->corpus, 2);
  ASSERT_GE(terms.size(), 2u);
  // The delay is effectively infinite: only the size trigger can flush,
  // so a prompt completion proves the full-window path works.
  SearchService service(snap, BatchingOptions(2, /*delay_ms=*/60000));

  auto f1 = service.Submit(MakeRequest(terms[0]));
  auto f2 = service.Submit(MakeRequest(terms[1]));
  auto r1 = f1.get();
  auto r2 = f2.get();
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(r1->batch_lanes, 2u);
  EXPECT_EQ(r2->batch_lanes, 2u);
  // Batched lanes return exactly what an unbatched search computes.
  EXPECT_EQ(r1->result.scores, DirectSearch(*snap, terms[0]).scores);
  EXPECT_EQ(r2->result.scores, DirectSearch(*snap, terms[1]).scores);

  const ServeMetrics m = service.Snapshot();
  EXPECT_EQ(m.batches, 1u);
  EXPECT_EQ(m.batched_queries, 2u);
  EXPECT_EQ(m.batch_occupancy_max, 2u);
  EXPECT_EQ(m.executed, 2u);
}

TEST(SearchServiceBatchingTest, WindowFlushesWhenDelayExpires) {
  auto snap = MakeDblpSnapshot(200, 14);
  const std::string term = TopTerms(*snap->corpus, 1).at(0);
  // Room for 8 lanes but only one request arrives: the window must
  // flush on the timer and run a single-lane batch.
  SearchService service(snap, BatchingOptions(8, /*delay_ms=*/50));

  auto response = service.Search(MakeRequest(term));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->batch_lanes, 1u);
  EXPECT_EQ(response->result.scores, DirectSearch(*snap, term).scores);
  // The wait for the window shows up as queue time, not compute time.
  EXPECT_GE(response->queue_seconds, 0.04);

  const ServeMetrics m = service.Snapshot();
  EXPECT_EQ(m.batches, 1u);
  EXPECT_EQ(m.batched_queries, 1u);
}

TEST(SearchServiceBatchingTest, QueuedDeadlineExpiryDoesNotAbortTheBatch) {
  auto snap = MakeDblpSnapshot(200, 15);
  const std::vector<std::string> terms = TopTerms(*snap->corpus, 2);
  ASSERT_GE(terms.size(), 2u);
  SearchService service(snap, BatchingOptions(2, /*delay_ms=*/60000));

  // Lane A's deadline is already over when the window flushes; lane B
  // must still execute and return a correct result.
  ServeRequest expired = MakeRequest(terms[0]);
  expired.deadline_seconds = 1e-7;
  auto fa = service.Submit(std::move(expired));
  auto fb = service.Submit(MakeRequest(terms[1]));

  auto ra = fa.get();
  auto rb = fb.get();
  EXPECT_EQ(ra.status().code(), StatusCode::kDeadlineExceeded);
  ASSERT_TRUE(rb.ok()) << rb.status();
  EXPECT_EQ(rb->batch_lanes, 1u);  // the expired lane never joined the solve
  EXPECT_EQ(rb->result.scores, DirectSearch(*snap, terms[1]).scores);

  const ServeMetrics m = service.Snapshot();
  EXPECT_EQ(m.deadline_exceeded, 1u);
  EXPECT_EQ(m.batches, 1u);
  EXPECT_EQ(m.batched_queries, 1u);
}

TEST(SearchServiceBatchingTest, MidIterationCancelRetiresOnlyItsLane) {
  auto snap = MakeDblpSnapshot(200, 15);
  const std::vector<std::string> terms = TopTerms(*snap->corpus, 2);
  ASSERT_GE(terms.size(), 2u);
  SearchService service(snap, BatchingOptions(2, /*delay_ms=*/60000));

  // The cancel hook is per-lane and not part of the batch key, so both
  // requests land in one window; lane A trips mid-iteration and retires
  // while lane B's solve continues.
  auto calls = std::make_shared<std::atomic<int>>(0);
  ServeRequest cancelled = MakeRequest(terms[0]);
  cancelled.options = snap->default_options;
  cancelled.options->objectrank.cancel = [calls] {
    return calls->fetch_add(1) >= 2;
  };
  auto fa = service.Submit(std::move(cancelled));
  auto fb = service.Submit(MakeRequest(terms[1]));

  auto ra = fa.get();
  auto rb = fb.get();
  EXPECT_EQ(ra.status().code(), StatusCode::kDeadlineExceeded);
  ASSERT_TRUE(rb.ok()) << rb.status();
  EXPECT_EQ(rb->batch_lanes, 2u);  // both lanes entered the solve
  EXPECT_EQ(rb->result.scores, DirectSearch(*snap, terms[1]).scores);

  const ServeMetrics m = service.Snapshot();
  EXPECT_EQ(m.deadline_exceeded, 1u);
  EXPECT_EQ(m.batches, 1u);
  EXPECT_EQ(m.batched_queries, 2u);
}

TEST(SearchServiceBatchingTest, NoCrossBatchingAcrossSnapshotVersions) {
  // Two snapshots over the identical dataset, so the same term is valid
  // against both and only the version separates the batch keys.
  auto snap1 = MakeDblpSnapshot(200, 16);
  auto snap2 = MakeDblpSnapshot(200, 16);
  const std::string term = TopTerms(*snap1->corpus, 1).at(0);
  SearchService::Options options = BatchingOptions(2, /*delay_ms=*/150);
  // Cache retention would let the pre-swap result answer the post-swap
  // submit on a slow machine; this test is about batch-window separation.
  options.result_cache_versions = 1;
  SearchService service(snap1, options);

  auto f1 = service.Submit(MakeRequest(term));
  service.SwapSnapshot(snap2);
  auto f2 = service.Submit(MakeRequest(term));

  auto r1 = f1.get();
  auto r2 = f2.get();
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(r1->snapshot_version, 1u);
  EXPECT_EQ(r2->snapshot_version, 2u);
  EXPECT_EQ(r1->batch_lanes, 1u);
  EXPECT_EQ(r2->batch_lanes, 1u);
  EXPECT_EQ(r1->result.scores, DirectSearch(*snap1, term).scores);
  EXPECT_EQ(r2->result.scores, DirectSearch(*snap2, term).scores);

  // Each version got its own window: no lane may run against the wrong
  // snapshot even though both windows were open simultaneously.
  const ServeMetrics m = service.Snapshot();
  EXPECT_EQ(m.batches, 2u);
  EXPECT_EQ(m.batch_occupancy_max, 1u);
}

TEST(SearchServiceBatchingTest, NoCrossBatchingAcrossOptionFingerprints) {
  auto snap = MakeDblpSnapshot(200, 16);
  const std::vector<std::string> terms = TopTerms(*snap->corpus, 2);
  ASSERT_GE(terms.size(), 2u);
  SearchService service(snap, BatchingOptions(2, /*delay_ms=*/150));

  // Different epsilons are different numeric fingerprints; a shared
  // block solve would silently run one of them with the wrong options.
  ServeRequest tight = MakeRequest(terms[0]);
  tight.options = snap->default_options;
  tight.options->objectrank.epsilon =
      snap->default_options.objectrank.epsilon * 0.5;
  auto f1 = service.Submit(std::move(tight));
  auto f2 = service.Submit(MakeRequest(terms[1]));

  auto r1 = f1.get();
  auto r2 = f2.get();
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(r1->batch_lanes, 1u);
  EXPECT_EQ(r2->batch_lanes, 1u);

  const ServeMetrics m = service.Snapshot();
  EXPECT_EQ(m.batches, 2u);
  EXPECT_EQ(m.batched_queries, 2u);
  EXPECT_EQ(m.batch_occupancy_max, 1u);
}

TEST(SearchServiceBatchingTest, DestructorFlushesOpenWindows) {
  auto snap = MakeDblpSnapshot(200, 17);
  const std::string term = TopTerms(*snap->corpus, 1).at(0);
  std::future<StatusOr<ServeResponse>> future;
  {
    // The window would otherwise stay open for a minute; the destructor
    // must close it and still fulfill the future.
    SearchService service(snap, BatchingOptions(8, /*delay_ms=*/60000));
    future = service.Submit(MakeRequest(term));
  }
  auto response = future.get();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->result.scores, DirectSearch(*snap, term).scores);
}

TEST(SearchServiceTest, DestructorDrainsInFlightRequests) {
  auto snap = MakeDblpSnapshot(200, 13);
  const std::vector<std::string> terms = TopTerms(*snap->corpus, 8);
  std::vector<std::future<StatusOr<ServeResponse>>> futures;
  {
    SearchService::Options options;
    options.num_threads = 2;
    SearchService service(snap, options);
    for (const std::string& t : terms) {
      futures.push_back(service.Submit(MakeRequest(t)));
    }
    // No explicit wait: the destructor must fulfill every future.
  }
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().ok());
  }
}

}  // namespace
}  // namespace orx::serve
