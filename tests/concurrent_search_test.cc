// Concurrent-readers regression: many threads searching one shared
// graph/corpus/RankCache must be safe (run under ORX_SANITIZE=thread via
// the `tsan` ctest label) and must produce exactly the sequential results
// — the engine's num_threads=1 push loop and the pull-based parallel path
// are both deterministic, so any divergence is a data race or shared-state
// leak.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/rank_cache.h"
#include "core/searcher.h"
#include "datasets/dblp_generator.h"
#include "text/query.h"

namespace orx::core {
namespace {

class ConcurrentSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dblp_ = std::make_unique<datasets::DblpDataset>(datasets::GenerateDblp(
        datasets::DblpGeneratorConfig::Tiny(300, 21)));
    rates_ = datasets::DblpGroundTruthRates(dblp_->dataset.schema(),
                                            dblp_->types);
    // A workload of the most frequent title terms: big base sets, so the
    // power iterations do real work while threads overlap.
    const text::Corpus& corpus = dblp_->dataset.corpus();
    std::vector<std::pair<uint32_t, std::string>> by_df;
    for (text::TermId t = 0; t < corpus.vocab_size(); ++t) {
      by_df.emplace_back(corpus.Df(t), corpus.TermString(t));
    }
    std::sort(by_df.begin(), by_df.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    for (size_t i = 0; i < by_df.size() && terms_.size() < 10; ++i) {
      terms_.push_back(by_df[i].second);
    }
    ASSERT_GE(terms_.size(), 4u);
  }

  StatusOr<SearchResult> SearchOnce(Searcher& searcher,
                                    const std::string& term,
                                    const RankCache* cache) const {
    if (cache != nullptr) searcher.AttachRankCache(cache);
    text::QueryVector query{text::ParseQuery(term)};
    // Cold starts only: warm starts seed from the session's previous
    // query, which would make results depend on each thread's query
    // order instead of on the term alone.
    SearchOptions options;
    options.use_warm_start = false;
    return searcher.Search(query, rates_, options);
  }

  /// Runs `kThreads` threads, each with its own Searcher session over the
  /// shared dataset, and checks every result against the sequential
  /// reference.
  void RunConcurrently(const RankCache* cache) {
    std::unordered_map<std::string, SearchResult> reference;
    for (const std::string& t : terms_) {
      Searcher searcher(dblp_->dataset.data(), dblp_->dataset.authority(),
                        dblp_->dataset.corpus());
      auto result = SearchOnce(searcher, t, cache);
      ASSERT_TRUE(result.ok()) << result.status();
      reference[t] = *result;
    }

    constexpr int kThreads = 8;
    constexpr int kQueriesPerThread = 30;
    std::atomic<int> mismatches{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int id = 0; id < kThreads; ++id) {
      threads.emplace_back([&, id] {
        // One Searcher per thread (a session is mutable warm-start
        // state); the graphs, corpus, and cache stay shared.
        Searcher searcher(dblp_->dataset.data(), dblp_->dataset.authority(),
                          dblp_->dataset.corpus());
        for (int i = 0; i < kQueriesPerThread; ++i) {
          const std::string& term = terms_[(id * 7 + i) % terms_.size()];
          auto result = SearchOnce(searcher, term, cache);
          if (!result.ok()) {
            failures.fetch_add(1);
            continue;
          }
          const SearchResult& expected = reference.at(term);
          if (result->scores != expected.scores ||
              result->top != expected.top) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(mismatches.load(), 0);
  }

  std::unique_ptr<datasets::DblpDataset> dblp_;
  graph::TransferRates rates_;
  std::vector<std::string> terms_;
};

TEST_F(ConcurrentSearchTest, SharedGraphMatchesSequential) {
  RunConcurrently(nullptr);
}

TEST_F(ConcurrentSearchTest, SharedRankCacheMatchesSequential) {
  RankCache::Options options;
  options.build_threads = 2;
  RankCache cache = RankCache::Build(dblp_->dataset.authority(),
                                     dblp_->dataset.corpus(), rates_,
                                     options);
  ASSERT_GT(cache.num_terms(), 0u);
  RunConcurrently(&cache);
}

}  // namespace
}  // namespace orx::core
