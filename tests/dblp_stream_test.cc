#include "datasets/dblp_stream.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "datasets/dblp_generator.h"
#include "datasets/dblp_xml.h"

#ifdef ORX_HAVE_ZLIB
#include <zlib.h>
#endif

namespace orx::datasets {
namespace {

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  std::string path = dir != nullptr ? dir : "/tmp";
  path += "/orx_dblp_stream_" + std::to_string(::getpid()) + "_" + name;
  return path;
}

/// A mid-sized synthetic corpus serialized to XML: enough records that a
/// small unit size forces many parallel work units.
std::string GeneratedXml(uint32_t papers, uint64_t seed) {
  DblpDataset generated =
      GenerateDblp(DblpGeneratorConfig::Tiny(papers, seed));
  return WriteDblpXml(generated.dataset.data(), generated.types);
}

/// The streaming result must match the whole-buffer parser exactly:
/// same statistics and a byte-identical re-serialization (node ids and
/// edge order included).
void ExpectSameParse(const DblpParseResult& a, const DblpParseResult& b) {
  EXPECT_EQ(a.papers, b.papers);
  EXPECT_EQ(a.authors, b.authors);
  EXPECT_EQ(a.conferences, b.conferences);
  EXPECT_EQ(a.years, b.years);
  EXPECT_EQ(a.citations_resolved, b.citations_resolved);
  EXPECT_EQ(a.citations_unresolved, b.citations_unresolved);
  EXPECT_EQ(a.dataset.data().num_nodes(), b.dataset.data().num_nodes());
  EXPECT_EQ(WriteDblpXml(a.dataset.data(), a.types),
            WriteDblpXml(b.dataset.data(), b.types));
}

TEST(DblpStreamTest, MatchesWholeBufferParserAcrossUnitSizes) {
  const std::string xml = GeneratedXml(400, 7);
  auto whole = ParseDblpXml(xml);
  ASSERT_TRUE(whole.ok()) << whole.status().message();

  // Unit sizes from per-record to bigger-than-the-file, odd read chunks
  // so record tags straddle refill boundaries.
  for (const size_t unit : {size_t{1}, size_t{512}, size_t{64} << 10,
                            size_t{64} << 20}) {
    DblpStreamOptions options;
    options.num_threads = 4;
    options.unit_bytes = unit;
    options.read_chunk_bytes = 4097;
    std::istringstream in(xml);
    auto streamed = ParseDblpXmlStream(in, options);
    ASSERT_TRUE(streamed.ok())
        << "unit=" << unit << ": " << streamed.status().message();
    ExpectSameParse(*whole, *streamed);
  }
}

TEST(DblpStreamTest, HandlesPrologueCommentsAndTrailingContent) {
  std::string xml =
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE dblp SYSTEM \"dblp.dtd\">\n"
      "<!-- a comment\n spanning lines -->\n"
      "<dblp>\n"
      "  <inproceedings key=\"conf/a/X1\">\n"
      "    <author>A. One</author>\n"
      "    <title>Streams &amp; Graphs</title>\n"
      "    <year>2008</year>\n"
      "    <booktitle>ICDE</booktitle>\n"
      "  </inproceedings>\n"
      "</dblp>\n"
      "trailing junk the parser never sees";
  std::istringstream in(xml);
  auto result = ParseDblpXmlStream(in);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->papers, 1u);
  EXPECT_EQ(result->authors, 1u);
}

TEST(DblpStreamTest, ErrorsCarryOriginalFileLineNumbers) {
  // Build a document whose malformed record sits far past the first
  // work unit, then check the reported line is the original file's.
  std::string xml = "<dblp>\n";
  int line = 2;
  for (int i = 0; i < 200; ++i) {
    xml += "<inproceedings key=\"k" + std::to_string(i) +
           "\">\n<title>T</title>\n<year>2000</year>\n"
           "<booktitle>B</booktitle>\n</inproceedings>\n";
    line += 5;
  }
  xml += "<inproceedings key=\"bad\">\n<title>T&bogus;</title>\n";
  const int bad_line = line + 1;  // the <title> line holds the entity
  xml += "<year>2000</year>\n<booktitle>B</booktitle>\n</inproceedings>\n";
  xml += "</dblp>\n";

  DblpStreamOptions options;
  options.unit_bytes = 256;  // many units before the bad record
  options.read_chunk_bytes = 4096;
  std::istringstream in(xml);
  auto result = ParseDblpXmlStream(in, options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line " +
                                           std::to_string(bad_line)),
            std::string::npos)
      << result.status().message();
}

TEST(DblpStreamTest, MissingRootAndMissingCloseAreDataLoss) {
  {
    std::istringstream in("<?xml version=\"1.0\"?>\n<notdblp>");
    auto result = ParseDblpXmlStream(in);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("expected <dblp> root"),
              std::string::npos);
  }
  {
    std::istringstream in(
        "<dblp>\n<inproceedings key=\"k\">\n<title>T</title>\n"
        "<year>2000</year>\n<booktitle>B</booktitle>\n</inproceedings>\n");
    auto result = ParseDblpXmlStream(in);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("missing </dblp>"),
              std::string::npos);
  }
}

TEST(DblpStreamTest, MissingFileIsNotFound) {
  EXPECT_EQ(ParseDblpXmlStreamFile("/nonexistent/dblp.xml").status().code(),
            StatusCode::kNotFound);
}

TEST(DblpStreamTest, PlainFileRoundTripsThroughStreamFile) {
  const std::string xml = GeneratedXml(120, 11);
  const std::string path = TempPath("plain.xml");
  {
    std::ofstream out(path, std::ios::binary);
    out << xml;
  }
  auto whole = ParseDblpXml(xml);
  ASSERT_TRUE(whole.ok());
  auto streamed = ParseDblpXmlStreamFile(path);
  ASSERT_TRUE(streamed.ok()) << streamed.status().message();
  ExpectSameParse(*whole, *streamed);
  std::remove(path.c_str());
}

#ifdef ORX_HAVE_ZLIB
std::string GzipCompress(const std::string& input) {
  z_stream strm;
  std::memset(&strm, 0, sizeof(strm));
  // windowBits 15 + 16 writes gzip framing (magic 1f 8b).
  EXPECT_EQ(deflateInit2(&strm, Z_BEST_SPEED, Z_DEFLATED, 15 + 16, 8,
                         Z_DEFAULT_STRATEGY),
            Z_OK);
  std::string out(compressBound(static_cast<uLong>(input.size())) + 32, '\0');
  strm.next_in =
      reinterpret_cast<Bytef*>(const_cast<char*>(input.data()));
  strm.avail_in = static_cast<uInt>(input.size());
  strm.next_out = reinterpret_cast<Bytef*>(out.data());
  strm.avail_out = static_cast<uInt>(out.size());
  EXPECT_EQ(deflate(&strm, Z_FINISH), Z_STREAM_END);
  out.resize(out.size() - strm.avail_out);
  deflateEnd(&strm);
  return out;
}

TEST(DblpStreamTest, GzipFileDecompressesOnTheFly) {
  const std::string xml = GeneratedXml(300, 13);
  const std::string path = TempPath("dump.xml.gz");
  {
    std::ofstream out(path, std::ios::binary);
    out << GzipCompress(xml);
  }
  auto whole = ParseDblpXml(xml);
  ASSERT_TRUE(whole.ok());
  DblpStreamOptions options;
  options.unit_bytes = 32 << 10;
  auto streamed = ParseDblpXmlStreamFile(path, options);
  ASSERT_TRUE(streamed.ok()) << streamed.status().message();
  ExpectSameParse(*whole, *streamed);
  std::remove(path.c_str());
}

TEST(DblpStreamTest, TruncatedGzipIsDataLoss) {
  const std::string gz = GzipCompress(GeneratedXml(100, 3));
  const std::string path = TempPath("trunc.xml.gz");
  {
    std::ofstream out(path, std::ios::binary);
    out << gz.substr(0, gz.size() / 2);
  }
  auto result = ParseDblpXmlStreamFile(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}
#endif  // ORX_HAVE_ZLIB

}  // namespace
}  // namespace orx::datasets
