#include "core/objectrank.h"

#include <gtest/gtest.h>

#include "datasets/figure1.h"
#include "text/query.h"

namespace orx::core {
namespace {

class Figure1Test : public ::testing::Test {
 protected:
  Figure1Test()
      : fig_(datasets::MakeFigure1Dataset()),
        rates_(datasets::DblpGroundTruthRates(fig_.dataset.schema(),
                                              fig_.types)),
        engine_(fig_.dataset.authority()) {}

  BaseSet OlapBaseSet() {
    text::QueryVector q(text::ParseQuery("OLAP"));
    auto base = BuildBaseSet(fig_.dataset.corpus(), q);
    EXPECT_TRUE(base.ok());
    return *base;
  }

  datasets::Figure1Dataset fig_;
  graph::TransferRates rates_;
  ObjectRankEngine engine_;
};

// The golden worked example: Figure 6's converged ObjectRank2 vector
// r^Q = [0.076, 0.002, 0.009, 0.076, 0.025, 0.017, 0.083] for
// [v1, v2, v3, v4, v5=Modeling, v6=Agrawal, v7] (the paper prints the
// v5/v6 pair as {0.017, 0.025}; the assignment follows from the flow
// derivation — see EXPERIMENTS.md).
TEST_F(Figure1Test, ReproducesFigure6ScoreVector) {
  ObjectRankOptions options;
  options.epsilon = 1e-9;
  ObjectRankResult result = engine_.Compute(OlapBaseSet(), rates_, options);
  ASSERT_TRUE(result.converged);
  ASSERT_EQ(result.scores.size(), 7u);
  EXPECT_NEAR(result.scores[fig_.v1_index_selection], 0.076, 0.001);
  EXPECT_NEAR(result.scores[fig_.v2_icde], 0.002, 0.001);
  EXPECT_NEAR(result.scores[fig_.v3_icde1997], 0.009, 0.001);
  EXPECT_NEAR(result.scores[fig_.v4_range_queries], 0.076, 0.001);
  EXPECT_NEAR(result.scores[fig_.v5_modeling], 0.025, 0.001);
  EXPECT_NEAR(result.scores[fig_.v6_agrawal], 0.017, 0.001);
  EXPECT_NEAR(result.scores[fig_.v7_data_cube], 0.083, 0.001);
}

// The headline ObjectRank behaviour: "Data Cube" ranks first for "OLAP"
// even though it does not contain the keyword (Section 1).
TEST_F(Figure1Test, DataCubeWinsWithoutContainingKeyword) {
  ObjectRankResult result = engine_.Compute(OlapBaseSet(), rates_);
  graph::NodeId best = 0;
  for (graph::NodeId v = 1; v < result.scores.size(); ++v) {
    if (result.scores[v] > result.scores[best]) best = v;
  }
  EXPECT_EQ(best, fig_.v7_data_cube);
}

TEST_F(Figure1Test, ScoresAreNonNegativeAndBounded) {
  ObjectRankResult result = engine_.Compute(OlapBaseSet(), rates_);
  double sum = 0.0;
  for (double s : result.scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
    sum += s;
  }
  // Mass leaks through rate sums < 1, so the total is at most 1.
  EXPECT_LE(sum, 1.0 + 1e-9);
  EXPECT_GT(sum, 0.0);
}

TEST_F(Figure1Test, WarmStartReachesSameFixpoint) {
  ObjectRankOptions options;
  options.epsilon = 1e-10;
  BaseSet base = OlapBaseSet();
  ObjectRankResult cold = engine_.Compute(base, rates_, options);

  // Perturbed warm start: the global rank.
  ObjectRankResult global = engine_.ComputeGlobal(rates_, options);
  ObjectRankResult warm =
      engine_.Compute(base, rates_, options, &global.scores);
  ASSERT_EQ(cold.scores.size(), warm.scores.size());
  for (size_t v = 0; v < cold.scores.size(); ++v) {
    EXPECT_NEAR(cold.scores[v], warm.scores[v], 1e-6);
  }
}

TEST_F(Figure1Test, WarmStartFromOwnFixpointConvergesImmediately) {
  ObjectRankOptions options;
  options.epsilon = 1e-6;
  BaseSet base = OlapBaseSet();
  ObjectRankResult first = engine_.Compute(base, rates_, options);
  ObjectRankResult second =
      engine_.Compute(base, rates_, options, &first.scores);
  EXPECT_LE(second.iterations, 2);
}

TEST_F(Figure1Test, DampingZeroYieldsBaseSetVector) {
  ObjectRankOptions options;
  options.damping = 0.0;
  BaseSet base = OlapBaseSet();
  ObjectRankResult result = engine_.Compute(base, rates_, options);
  ASSERT_TRUE(result.converged);
  for (const auto& [node, w] : base.entries) {
    EXPECT_NEAR(result.scores[node], w, 1e-9);
  }
  EXPECT_NEAR(result.scores[fig_.v7_data_cube], 0.0, 1e-9);
}

TEST_F(Figure1Test, HigherDampingShiftsMassTowardLinkedNodes) {
  // Compare v7's *share* of the total mass: a higher damping factor sends
  // more of the surfers down the links and less back to the base set.
  BaseSet base = OlapBaseSet();
  auto share_of_v7 = [&](double damping) {
    ObjectRankOptions options;
    options.damping = damping;
    auto scores = engine_.Compute(base, rates_, options).scores;
    double sum = 0.0;
    for (double s : scores) sum += s;
    return scores[fig_.v7_data_cube] / sum;
  };
  EXPECT_GT(share_of_v7(0.95), share_of_v7(0.5));
}

TEST_F(Figure1Test, GlobalRankFavorsTheMostCitedPaper) {
  ObjectRankResult global = engine_.ComputeGlobal(rates_);
  ASSERT_TRUE(global.converged);
  // v7 is cited by three papers; it must outrank every other paper.
  for (graph::NodeId v :
       {fig_.v1_index_selection, fig_.v4_range_queries, fig_.v5_modeling}) {
    EXPECT_GT(global.scores[fig_.v7_data_cube], global.scores[v]);
  }
}

TEST_F(Figure1Test, MaxIterationsCapRespected) {
  ObjectRankOptions options;
  options.epsilon = 0.0;  // unattainable
  options.max_iterations = 3;
  ObjectRankResult result = engine_.Compute(OlapBaseSet(), rates_, options);
  EXPECT_EQ(result.iterations, 3);
  EXPECT_FALSE(result.converged);
}

TEST_F(Figure1Test, ParallelMatchesSequential) {
  ObjectRankOptions sequential;
  sequential.epsilon = 1e-10;
  ObjectRankOptions parallel = sequential;
  parallel.num_threads = 4;
  BaseSet base = OlapBaseSet();
  auto seq = engine_.Compute(base, rates_, sequential);
  auto par = engine_.Compute(base, rates_, parallel);
  ASSERT_EQ(seq.scores.size(), par.scores.size());
  for (size_t v = 0; v < seq.scores.size(); ++v) {
    EXPECT_NEAR(seq.scores[v], par.scores[v], 1e-9);
  }
}

TEST_F(Figure1Test, CancellationStopsBetweenIterations) {
  ObjectRankOptions options;
  options.epsilon = 0.0;  // would run to max_iterations
  int calls = 0;
  options.cancel = [&calls] { return ++calls > 2; };  // trip on 3rd check
  ObjectRankResult result = engine_.Compute(OlapBaseSet(), rates_, options);
  EXPECT_TRUE(result.cancelled);
  EXPECT_FALSE(result.converged);
  // The hook is checked once before each iteration: two iterations ran,
  // the third was never started.
  EXPECT_EQ(result.iterations, 2);
  EXPECT_EQ(calls, 3);
  // The partial iterate is still a sane vector (callers discard it, but
  // it must not be garbage).
  ASSERT_EQ(result.scores.size(), 7u);
  for (double s : result.scores) EXPECT_GE(s, 0.0);
}

TEST_F(Figure1Test, UnsetCancelHookNeverFires) {
  ObjectRankOptions options;
  ObjectRankResult result = engine_.Compute(OlapBaseSet(), rates_, options);
  EXPECT_FALSE(result.cancelled);
  EXPECT_TRUE(result.converged);
}

TEST_F(Figure1Test, ZeroRatesLeaveOnlyJumpMass) {
  graph::TransferRates zero(fig_.dataset.schema(), 0.0);
  BaseSet base = OlapBaseSet();
  ObjectRankResult result = engine_.Compute(base, zero, {});
  ASSERT_TRUE(result.converged);
  for (const auto& [node, w] : base.entries) {
    EXPECT_NEAR(result.scores[node], 0.15 * w, 1e-9);
  }
  EXPECT_NEAR(result.scores[fig_.v7_data_cube], 0.0, 1e-12);
}

}  // namespace
}  // namespace orx::core
