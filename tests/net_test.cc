// Tests for the network front end (src/net/): the ORXN frame codec's
// round-trips and hardened rejection paths, the epoll server's lifecycle
// (loopback connections, malformed-frame handling, admission-overflow
// error frames, idle timeouts, graceful drain), and the full protocol
// stack over a generated DBLP snapshot. The concurrent-clients test is
// tsan-labeled (tools/check_tsan.sh).

#include "net/server.h"

#include <gtest/gtest.h>
#include <sys/epoll.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datasets/dblp_generator.h"
#include "mutate/delta_log.h"
#include "mutate/epoch.h"
#include "mutate/mutation.h"
#include "mutate/snapshot_builder.h"
#include "net/client.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/net_util.h"
#include "net/serve_handler.h"
#include "serve/search_service.h"
#include "serve/snapshot.h"
#include "text/query.h"

namespace orx::net {
namespace {

// --- frame codec -----------------------------------------------------------

TEST(FrameCodecTest, HeaderRoundTrip) {
  const std::string frame = EncodeFrame(Op::kSearch, 0x1122334455667788ull,
                                        "payload");
  ASSERT_GE(frame.size(), kHeaderSize);
  auto header = DecodeHeader(frame.data());
  ASSERT_TRUE(header.ok()) << header.status();
  EXPECT_EQ(header->op, Op::kSearch);
  EXPECT_EQ(header->request_id, 0x1122334455667788ull);
  EXPECT_EQ(header->payload_size, 7u);
  EXPECT_EQ(frame.substr(kHeaderSize), "payload");
}

TEST(FrameCodecTest, HeaderRejectsBadMagicVersionOpAndOversize) {
  std::string good = EncodeFrame(Op::kPing, 1, "");
  {
    std::string bad = good;
    bad[0] = 'X';
    auto header = DecodeHeader(bad.data());
    ASSERT_FALSE(header.ok());
    EXPECT_EQ(header.status().code(), StatusCode::kDataLoss);
    EXPECT_NE(header.status().ToString().find("magic"), std::string::npos);
  }
  {
    std::string bad = good;
    bad[4] = 99;  // version
    EXPECT_FALSE(DecodeHeader(bad.data()).ok());
  }
  {
    std::string bad = good;
    bad[5] = 42;  // op beyond kError
    EXPECT_FALSE(DecodeHeader(bad.data()).ok());
  }
  {
    // payload_size above the decoder's bound is refused before any
    // allocation could happen.
    std::string bad = good;
    const uint32_t huge = kMaxPayload + 1;
    std::memcpy(&bad[16], &huge, sizeof(huge));
    auto header = DecodeHeader(bad.data());
    ASSERT_FALSE(header.ok());
    EXPECT_EQ(header.status().code(), StatusCode::kDataLoss);
  }
}

TEST(FrameCodecTest, SearchRequestRoundTrip) {
  SearchRequest request;
  request.query = "data cube olap";
  request.k = 25;
  request.deadline_seconds = 1.5;
  auto decoded = DecodeSearchRequest(EncodeSearchRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->query, request.query);
  EXPECT_EQ(decoded->k, request.k);
  EXPECT_EQ(decoded->deadline_seconds, request.deadline_seconds);
}

TEST(FrameCodecTest, SearchResponseRoundTrip) {
  SearchResponse response;
  for (int i = 0; i < 3; ++i) {
    WireResult r;
    r.node = static_cast<uint64_t>(i) * 17;
    r.score = 0.25 / (i + 1);
    r.type_label = "paper";
    r.display_label = "Title #" + std::to_string(i);
    response.results.push_back(std::move(r));
  }
  response.iterations = 12;
  response.from_rank_cache = true;
  response.cache_hit = true;
  response.coalesced = false;
  response.snapshot_version = 7;
  response.total_seconds = 0.0625;
  auto decoded = DecodeSearchResponse(EncodeSearchResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->results.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded->results[i].node, response.results[i].node);
    EXPECT_EQ(decoded->results[i].score, response.results[i].score);
    EXPECT_EQ(decoded->results[i].display_label,
              response.results[i].display_label);
  }
  EXPECT_EQ(decoded->iterations, 12u);
  EXPECT_TRUE(decoded->from_rank_cache);
  EXPECT_TRUE(decoded->cache_hit);
  EXPECT_EQ(decoded->snapshot_version, 7u);
  EXPECT_EQ(decoded->total_seconds, 0.0625);
}

TEST(FrameCodecTest, RemainingPayloadCodecsRoundTrip) {
  {
    ExplainRequest request{"data cube", 3};
    auto decoded = DecodeExplainRequest(EncodeExplainRequest(request));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->query, "data cube");
    EXPECT_EQ(decoded->target_rank, 3u);
  }
  {
    ExplainResponse response{"subgraph text", 9, 0.5, 0.25};
    auto decoded = DecodeExplainResponse(EncodeExplainResponse(response));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->text, "subgraph text");
    EXPECT_EQ(decoded->iterations, 9u);
  }
  {
    ReformulateRequest request{"data", {1, 4, 9}};
    auto decoded =
        DecodeReformulateRequest(EncodeReformulateRequest(request));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->feedback_ranks, (std::vector<uint32_t>{1, 4, 9}));
  }
  {
    ReformulateResponse response;
    response.reformulated_query = "data mining:0.5";
    response.top_expansion_terms = {{"mining", 0.5}, {"olap", 0.25}};
    response.reformulation_seconds = 0.125;
    auto decoded =
        DecodeReformulateResponse(EncodeReformulateResponse(response));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->reformulated_query, "data mining:0.5");
    ASSERT_EQ(decoded->top_expansion_terms.size(), 2u);
    EXPECT_EQ(decoded->top_expansion_terms[1].first, "olap");
    EXPECT_EQ(decoded->top_expansion_terms[1].second, 0.25);
  }
  {
    ValidateResponse response{false, "edge 7 dangling"};
    auto decoded = DecodeValidateResponse(EncodeValidateResponse(response));
    ASSERT_TRUE(decoded.ok());
    EXPECT_FALSE(decoded->ok);
    EXPECT_EQ(decoded->report, "edge 7 dangling");
  }
  {
    MetricsResponse response;
    response.serve.submitted = 100;
    response.serve.completed = 90;
    response.serve.latency_p99 = 0.25;
    response.frames_received = 123;
    response.error_frames_sent = 4;
    auto decoded = DecodeMetricsResponse(EncodeMetricsResponse(response));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->serve.submitted, 100u);
    EXPECT_EQ(decoded->serve.completed, 90u);
    EXPECT_EQ(decoded->serve.latency_p99, 0.25);
    EXPECT_EQ(decoded->frames_received, 123u);
    EXPECT_EQ(decoded->error_frames_sent, 4u);
  }
  {
    auto decoded = DecodeErrorResponse(
        EncodeErrorResponse(UnavailableError("admission queue full")));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->code, StatusCode::kUnavailable);
    EXPECT_EQ(decoded->message, "admission queue full");
  }
  {
    // Write-side metrics ride at the end of the payload and must
    // round-trip alongside the serve counters.
    MetricsResponse response;
    response.mutate_accepted = 11;
    response.mutate_rejected = 2;
    response.mutate_queued = 3;
    response.snapshots_published = 5;
    response.epochs_live = 1;
    response.rank_terms_reused = 40;
    response.rank_terms_refreshed = 8;
    auto decoded = DecodeMetricsResponse(EncodeMetricsResponse(response));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->mutate_accepted, 11u);
    EXPECT_EQ(decoded->mutate_rejected, 2u);
    EXPECT_EQ(decoded->mutate_queued, 3u);
    EXPECT_EQ(decoded->snapshots_published, 5u);
    EXPECT_EQ(decoded->epochs_live, 1u);
    EXPECT_EQ(decoded->rank_terms_reused, 40u);
    EXPECT_EQ(decoded->rank_terms_refreshed, 8u);
  }
  {
    MutateRequest request;
    request.batch.mutations.push_back(
        mutate::Mutation::AddNode(2, {{"title", "wire paper"}}));
    request.batch.mutations.push_back(mutate::Mutation::AddEdge(7, 3, 1));
    request.batch.mutations.push_back(
        mutate::Mutation::UpdateNodeText(4, {{"title", "rev"}}));
    request.batch.mutations.push_back(mutate::Mutation::RemoveEdge(5, 6, 0));
    request.batch.mutations.push_back(mutate::Mutation::RemoveNode(9));
    auto decoded = DecodeMutateRequest(EncodeMutateRequest(request));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    ASSERT_EQ(decoded->batch.mutations.size(), 5u);
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(decoded->batch.mutations[i].kind,
                request.batch.mutations[i].kind)
          << i;
    }
    EXPECT_EQ(decoded->batch.mutations[0].attributes.size(), 1u);
    EXPECT_EQ(decoded->batch.mutations[0].attributes[0].value, "wire paper");
    EXPECT_EQ(decoded->batch.mutations[1].from, 7u);
    EXPECT_EQ(decoded->batch.mutations[1].to, 3u);
    EXPECT_EQ(decoded->batch.mutations[4].node, 9u);

    // Truncation hardening, same contract as every other codec.
    const std::string payload = EncodeMutateRequest(request);
    for (size_t len = 0; len < payload.size(); ++len) {
      auto prefix = DecodeMutateRequest(payload.substr(0, len));
      ASSERT_FALSE(prefix.ok()) << "prefix length " << len;
      EXPECT_EQ(prefix.status().code(), StatusCode::kDataLoss);
    }
  }
  {
    MutateResponse response{77, 4};
    auto decoded = DecodeMutateResponse(EncodeMutateResponse(response));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->sequence, 77u);
    EXPECT_EQ(decoded->queued, 4u);
  }
}

TEST(FrameCodecTest, DecodersRejectEveryTruncation) {
  // Every strict prefix of a valid payload must decode to kDataLoss —
  // never a crash, never silent acceptance — except the one prefix that
  // ends exactly at the pre-tier legacy boundary, which by design
  // decodes as a frame from an older peer with the tier block defaulted.
  SearchResponse response;
  WireResult r;
  r.node = 5;
  r.score = 0.5;
  r.type_label = "paper";
  r.display_label = "A Title";
  response.results.push_back(r);
  const std::string search_payload = EncodeSearchResponse(response);
  // Trailing tier block: tier_used u8 + error_bound f64 + certified u8
  // + escalated u8.
  const size_t search_legacy = search_payload.size() - 11;
  for (size_t len = 0; len < search_payload.size(); ++len) {
    auto decoded = DecodeSearchResponse(search_payload.substr(0, len));
    if (len == search_legacy) {
      ASSERT_TRUE(decoded.ok());
      EXPECT_EQ(decoded->tier_used, 1);  // defaults: exact, certified
      EXPECT_EQ(decoded->error_bound, 0.0);
      EXPECT_TRUE(decoded->certified);
      EXPECT_FALSE(decoded->escalated);
      continue;
    }
    ASSERT_FALSE(decoded.ok()) << "prefix length " << len;
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
  }

  const std::string metrics_payload =
      EncodeMetricsResponse(MetricsResponse{});
  // Trailing tier block: 9 u64 counters + 6 doubles.
  const size_t metrics_legacy = metrics_payload.size() - (9 + 6) * 8;
  for (size_t len = 0; len < metrics_payload.size(); ++len) {
    auto decoded = DecodeMetricsResponse(metrics_payload.substr(0, len));
    if (len == metrics_legacy) {
      ASSERT_TRUE(decoded.ok());
      continue;
    }
    ASSERT_FALSE(decoded.ok()) << "prefix length " << len;
  }
}

TEST(FrameCodecTest, SearchTierRoundTripsAndLegacyRequestDefaultsToAuto) {
  SearchRequest request;
  request.query = "mining";
  request.k = 10;
  request.deadline_seconds = 0.25;
  request.tier = 2;  // approximate
  auto decoded = DecodeSearchRequest(EncodeSearchRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->tier, 2);

  // A pre-tier client's frame ends after the deadline field.
  const std::string full = EncodeSearchRequest(request);
  auto legacy = DecodeSearchRequest(full.substr(0, full.size() - 1));
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy->tier, 0);  // auto

  // Tier values above kCached are malformed, not future-proof.
  std::string bad = full;
  bad.back() = 9;
  auto rejected = DecodeSearchRequest(bad);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kDataLoss);
}

TEST(FrameCodecTest, SearchResponseTierBlockRoundTrips) {
  SearchResponse response;
  response.iterations = 4;
  response.tier_used = 2;
  response.error_bound = 1.5e-7;
  response.certified = true;
  response.escalated = false;
  auto decoded = DecodeSearchResponse(EncodeSearchResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->tier_used, 2);
  EXPECT_EQ(decoded->error_bound, 1.5e-7);
  EXPECT_TRUE(decoded->certified);
  EXPECT_FALSE(decoded->escalated);

  MetricsResponse metrics;
  metrics.serve.tier_approximate = 7;
  metrics.serve.escalations = 2;
  metrics.serve.miss_error_budget = 3;
  metrics.serve.tier_approximate_p50 = 0.004;
  auto metrics_decoded =
      DecodeMetricsResponse(EncodeMetricsResponse(metrics));
  ASSERT_TRUE(metrics_decoded.ok());
  EXPECT_EQ(metrics_decoded->serve.tier_approximate, 7u);
  EXPECT_EQ(metrics_decoded->serve.escalations, 2u);
  EXPECT_EQ(metrics_decoded->serve.miss_error_budget, 3u);
  EXPECT_EQ(metrics_decoded->serve.tier_approximate_p50, 0.004);
}

TEST(FrameCodecTest, DecodersRejectTrailingGarbage) {
  const std::string payload =
      EncodeSearchRequest(SearchRequest{"data", 10, 0.0});
  auto decoded = DecodeSearchRequest(payload + "x");
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(FrameCodecTest, HostileCountsAreBoundedBeforeAllocation) {
  // A reformulate request claiming 2^31 feedback ranks in a 12-byte
  // payload must be rejected by the count bound, not by attempting the
  // allocation.
  std::string payload;
  AppendString(&payload, "q");
  AppendU32(&payload, 0x7FFFFFFFu);
  auto decoded = DecodeReformulateRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

// --- server lifecycle over loopback ---------------------------------------

ServerOptions TestServerOptions() {
  ServerOptions options;
  options.port = 0;  // ephemeral
  options.num_workers = 2;
  options.tick_interval_ms = 20;
  return options;
}

/// An echo handler: answers every frame with the same op + payload.
Server::FrameHandler EchoHandler() {
  return [](Frame frame, ResponderPtr respond) {
    respond->Send(EncodeFrame(frame.header.op, frame.header.request_id,
                              frame.payload));
  };
}

TEST(NetServerTest, LifecycleAndPing) {
  Server server(TestServerOptions(), EchoHandler());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.Ping().ok());
  }
  client.Close();
  server.Shutdown();
  server.Shutdown();  // idempotent

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.frames_received, 10u);
  EXPECT_EQ(stats.frames_sent, 10u);
  EXPECT_EQ(stats.unanswered_frames, 0u);
  EXPECT_EQ(stats.decode_errors, 0u);
}

TEST(NetServerTest, PipelinedFramesAllAnswered) {
  Server server(TestServerOptions(), EchoHandler());
  ASSERT_TRUE(server.Start().ok());
  auto fd = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok());

  // Fire 64 pipelined frames in one write burst, then collect 64
  // responses; ids must come back bijectively (order is unspecified).
  std::string burst;
  for (uint64_t id = 1; id <= 64; ++id) {
    burst += EncodeFrame(Op::kPing, id, "p" + std::to_string(id));
  }
  ASSERT_TRUE(WriteAll(*fd, burst.data(), burst.size()).ok());
  std::vector<bool> seen(65, false);
  for (int i = 0; i < 64; ++i) {
    char header_bytes[kHeaderSize];
    ASSERT_TRUE(ReadAll(*fd, header_bytes, kHeaderSize, "header").ok());
    auto header = DecodeHeader(header_bytes);
    ASSERT_TRUE(header.ok());
    std::string payload(header->payload_size, '\0');
    ASSERT_TRUE(
        ReadAll(*fd, payload.data(), payload.size(), "payload").ok());
    ASSERT_GE(header->request_id, 1u);
    ASSERT_LE(header->request_id, 64u);
    EXPECT_FALSE(seen[header->request_id]);
    seen[header->request_id] = true;
    EXPECT_EQ(payload, "p" + std::to_string(header->request_id));
  }
  close(*fd);
  server.Shutdown();
  EXPECT_EQ(server.stats().frames_received, 64u);
  EXPECT_EQ(server.stats().unanswered_frames, 0u);
}

TEST(NetServerTest, MalformedHeaderAnsweredWithErrorFrameThenClose) {
  Server server(TestServerOptions(), EchoHandler());
  ASSERT_TRUE(server.Start().ok());
  auto fd = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok());

  std::string garbage(kHeaderSize, '\xFF');
  ASSERT_TRUE(WriteAll(*fd, garbage.data(), garbage.size()).ok());

  char header_bytes[kHeaderSize];
  ASSERT_TRUE(ReadAll(*fd, header_bytes, kHeaderSize, "header").ok());
  auto header = DecodeHeader(header_bytes);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->op, Op::kError);
  std::string payload(header->payload_size, '\0');
  ASSERT_TRUE(ReadAll(*fd, payload.data(), payload.size(), "payload").ok());
  auto error = DecodeErrorResponse(payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->code, StatusCode::kDataLoss);

  // Framing is lost, so the server closes after the error frame: the
  // next read sees EOF.
  char byte;
  Status eof = ReadAll(*fd, &byte, 1, "post-error");
  EXPECT_FALSE(eof.ok());
  close(*fd);
  server.Shutdown();
  EXPECT_EQ(server.stats().decode_errors, 1u);
  EXPECT_EQ(server.stats().error_frames_sent, 1u);
}

TEST(NetServerTest, OversizedPayloadHeaderRejected) {
  ServerOptions options = TestServerOptions();
  options.max_payload = 1024;
  Server server(options, EchoHandler());
  ASSERT_TRUE(server.Start().ok());
  auto fd = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok());

  std::string frame;
  AppendHeader(&frame, Op::kPing, 1, 2048);  // above the server's bound
  ASSERT_TRUE(WriteAll(*fd, frame.data(), frame.size()).ok());
  char header_bytes[kHeaderSize];
  ASSERT_TRUE(ReadAll(*fd, header_bytes, kHeaderSize, "header").ok());
  auto header = DecodeHeader(header_bytes);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->op, Op::kError);
  close(*fd);
  server.Shutdown();
}

TEST(NetServerTest, IdleConnectionsAreSweptByTimeout) {
  ServerOptions options = TestServerOptions();
  options.idle_timeout_seconds = 0.15;
  Server server(options, EchoHandler());
  ASSERT_TRUE(server.Start().ok());

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Ping().ok());

  // Wait out the idle sweep, then expect the connection to be gone.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().idle_closes == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server.stats().idle_closes, 1u);
  EXPECT_FALSE(client.Ping().ok());
  server.Shutdown();
}

TEST(NetServerTest, GracefulShutdownAnswersInflightFrames) {
  // The handler parks each frame's responder on a detached timer thread;
  // Shutdown() must wait for those sends instead of dropping them.
  Server server(TestServerOptions(), [](Frame frame, ResponderPtr respond) {
    std::thread([frame = std::move(frame),
                 respond = std::move(respond)]() mutable {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      respond->Send(EncodeFrame(frame.header.op, frame.header.request_id,
                                frame.payload));
    }).detach();
  });
  ASSERT_TRUE(server.Start().ok());

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  std::atomic<bool> answered{false};
  std::thread caller([&] {
    if (client.Ping().ok()) answered.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Shutdown();
  caller.join();
  EXPECT_TRUE(answered.load());
  EXPECT_EQ(server.stats().unanswered_frames, 0u);
}

TEST(NetServerTest, ShutdownFromAnotherThreadBeforeStart) {
  // Regression: Shutdown() before Start() used to tear down acceptor
  // state that had never been set up. It must be a safe no-op — from a
  // foreign thread, the worst case for the started_ handshake — and
  // must not poison a later Start()/Shutdown() cycle.
  Server server(TestServerOptions(), EchoHandler());
  std::thread early([&] { server.Shutdown(); });
  early.join();

  ASSERT_TRUE(server.Start().ok());
  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Ping().ok());
  client.Close();
  server.Shutdown();
  EXPECT_EQ(server.stats().unanswered_frames, 0u);
}

// Forked death tests don't coexist with TSan's runtime; the loop-thread
// contract is still exercised indirectly by every server test there.
#if defined(__SANITIZE_THREAD__)
#define ORX_NET_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ORX_NET_TSAN_BUILD 1
#endif
#endif

#ifndef ORX_NET_TSAN_BUILD
TEST(NetServerTest, EventLoopRegistrationOffLoopThreadDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        EventLoop loop(/*tick=*/nullptr, /*tick_interval_ms=*/20);
        std::atomic<bool> bound{false};
        std::thread loop_thread([&] { loop.Run(); });
        // After this task runs, Run() has bound the loop thread id and
        // the loop-thread-only contract is armed.
        loop.RunInLoop([&] { bound.store(true); });
        while (!bound.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        IgnoreError(
            loop.AddFd(0, EPOLLIN, [](uint32_t) {}));  // wrong thread: aborts
        loop.Stop();
        loop_thread.join();
      },
      "AddFd called off the loop thread");
}
#endif

// --- full protocol stack over a DBLP snapshot ------------------------------

std::shared_ptr<const serve::ServeSnapshot> MakeSnapshot(uint32_t papers,
                                                         uint64_t seed) {
  auto owner = std::make_shared<datasets::DblpDataset>(datasets::GenerateDblp(
      datasets::DblpGeneratorConfig::Tiny(papers, seed)));
  graph::TransferRates rates = datasets::DblpGroundTruthRates(
      owner->dataset.schema(), owner->types);
  return std::make_shared<serve::ServeSnapshot>(serve::SnapshotFromOwner(
      owner, owner->dataset.data(), owner->dataset.authority(),
      owner->dataset.corpus(), std::move(rates)));
}

/// The corpus term with the highest document frequency — a query
/// guaranteed to have a non-empty base set.
std::string HeadTerm(const text::Corpus& corpus) {
  text::TermId best = 0;
  uint32_t best_df = 0;
  for (text::TermId t = 0; t < corpus.vocab_size(); ++t) {
    if (corpus.Df(t) > best_df) {
      best_df = corpus.Df(t);
      best = t;
    }
  }
  return corpus.TermString(best);
}

struct FullStack {
  std::shared_ptr<const serve::ServeSnapshot> snapshot;
  std::unique_ptr<serve::SearchService> service;
  std::unique_ptr<ServeHandler> handler;
  std::unique_ptr<Server> server;

  explicit FullStack(serve::SearchService::Options service_options = {}) {
    snapshot = MakeSnapshot(80, 11);
    service = std::make_unique<serve::SearchService>(snapshot,
                                                     service_options);
    handler = std::make_unique<ServeHandler>(service.get());
    server = std::make_unique<Server>(
        TestServerOptions(), [this](Frame frame, ResponderPtr respond) {
          handler->Handle(std::move(frame), std::move(respond));
        });
    handler->set_server_stats(
        [server = server.get()] { return server->stats(); });
  }
};

TEST(NetFullStackTest, SearchExplainReformulateValidateMetrics) {
  FullStack stack;
  ASSERT_TRUE(stack.server->Start().ok());
  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()).ok());

  const std::string query = HeadTerm(*stack.snapshot->corpus);
  auto search = client.Search({query, 10, 0.0});
  ASSERT_TRUE(search.ok()) << search.status();
  ASSERT_FALSE(search->results.empty());
  for (size_t i = 1; i < search->results.size(); ++i) {
    EXPECT_GE(search->results[i - 1].score, search->results[i].score);
  }
  EXPECT_FALSE(search->results[0].display_label.empty());
  EXPECT_FALSE(search->results[0].type_label.empty());

  // The same query again is a result-cache hit end to end.
  auto again = client.Search({query, 10, 0.0});
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->cache_hit);
  ASSERT_EQ(again->results.size(), search->results.size());
  EXPECT_EQ(again->results[0].node, search->results[0].node);
  EXPECT_EQ(again->results[0].score, search->results[0].score);

  auto explain = client.Explain({query, 1});
  ASSERT_TRUE(explain.ok()) << explain.status();
  EXPECT_FALSE(explain->text.empty());

  auto reform = client.Reformulate({query, {1}});
  ASSERT_TRUE(reform.ok()) << reform.status();
  EXPECT_FALSE(reform->reformulated_query.empty());

  auto validate = client.Validate();
  ASSERT_TRUE(validate.ok());
  EXPECT_TRUE(validate->ok) << validate->report;

  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_GE(metrics->serve.submitted, 4u);
  EXPECT_LE(metrics->serve.completed, metrics->serve.submitted);
  EXPECT_GT(metrics->frames_received, 0u);

  auto empty = client.Search({"", 10, 0.0});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  stack.server->Shutdown();
}

TEST(NetFullStackTest, AdmissionOverflowArrivesAsUnavailableErrorFrame) {
  // max_pending = 0 rejects every execution at admission; with the cache
  // and single flight off, every search must come back as a
  // kError/kUnavailable frame — never silence, never a dropped
  // connection.
  serve::SearchService::Options options;
  options.max_pending = 0;
  options.result_cache_entries = 0;
  options.single_flight = false;
  FullStack stack(options);
  ASSERT_TRUE(stack.server->Start().ok());
  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()).ok());

  const std::string query = HeadTerm(*stack.snapshot->corpus);
  for (int i = 0; i < 5; ++i) {
    auto search = client.Search({query, 10, 0.0});
    ASSERT_FALSE(search.ok());
    EXPECT_EQ(search.status().code(), StatusCode::kUnavailable);
  }
  // The rejections all flowed through the same still-healthy connection.
  ASSERT_TRUE(client.Ping().ok());
  stack.server->Shutdown();
  EXPECT_EQ(stack.server->stats().error_frames_sent, 5u);
  EXPECT_EQ(stack.server->stats().unanswered_frames, 0u);
}

TEST(NetFullStackTest, ConcurrentClientsAllAnswered) {
  FullStack stack;
  ASSERT_TRUE(stack.server->Start().ok());
  const std::string query = HeadTerm(*stack.snapshot->corpus);
  const uint16_t port = stack.server->port();

  constexpr int kThreads = 6;
  constexpr int kCallsPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      BlockingClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        failures.fetch_add(kCallsPerThread);
        return;
      }
      for (int i = 0; i < kCallsPerThread; ++i) {
        const bool ping = (i + t) % 3 == 0;
        const Status status =
            ping ? client.Ping()
                 : client.Search({query, 10, 0.0}).status();
        // kUnavailable is an acceptable answer under load; silence or
        // transport errors are not.
        if (!status.ok() && status.code() != StatusCode::kUnavailable) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  stack.server->Shutdown();

  const ServerStats stats = stack.server->stats();
  EXPECT_EQ(stats.frames_received, kThreads * kCallsPerThread);
  EXPECT_EQ(stats.frames_sent, kThreads * kCallsPerThread);
  EXPECT_EQ(stats.unanswered_frames, 0u);
}

TEST(NetFullStackTest, MutateOnReadOnlyServerIsFailedPrecondition) {
  // A handler without mutation hooks is a read-only server: kMutate must
  // come back as kError/kFailedPrecondition on a still-healthy
  // connection, never silence or a close.
  FullStack stack;
  ASSERT_TRUE(stack.server->Start().ok());
  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()).ok());

  MutateRequest request;
  request.batch.mutations.push_back(
      mutate::Mutation::UpdateNodeText(0, {{"title", "nope"}}));
  auto response = client.Mutate(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(client.Ping().ok());
  stack.server->Shutdown();
  EXPECT_EQ(stack.server->stats().unanswered_frames, 0u);
}

TEST(NetFullStackTest, MutateAcceptedAndBecomesSearchableOverTheWire) {
  // The whole write path end to end over loopback: kMutate append ->
  // builder drain -> snapshot publication -> the new document answers a
  // search on the SAME connection, and kMetrics reports the write-side
  // counters.
  auto owner = std::make_shared<datasets::DblpDataset>(datasets::GenerateDblp(
      datasets::DblpGeneratorConfig::Tiny(60, 13)));
  graph::TransferRates rates = datasets::DblpGroundTruthRates(
      owner->dataset.schema(), owner->types);
  auto snapshot = std::make_shared<serve::ServeSnapshot>(
      serve::SnapshotFromOwner(owner, owner->dataset.data(),
                               owner->dataset.authority(),
                               owner->dataset.corpus(), std::move(rates)));

  serve::SearchService service(snapshot, {});
  mutate::DeltaLog log(owner->dataset.schema());
  mutate::EpochManager epochs;
  mutate::SnapshotBuilder builder(&service, &log, &epochs, snapshot, {});
  ServeHandler handler(&service);
  handler.set_mutation_hooks({&log, &epochs, &builder});
  Server server(TestServerOptions(),
                [&handler](Frame frame, ResponderPtr respond) {
                  handler.Handle(std::move(frame), std::move(respond));
                });
  builder.Start();
  ASSERT_TRUE(server.Start().ok());
  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Unknown term before the write.
  auto before = client.Search({"xylocarp", 10, 0.0});
  const bool absent_before =
      !before.ok() || before->results.empty();
  EXPECT_TRUE(absent_before);

  MutateRequest request;
  request.batch.mutations.push_back(mutate::Mutation::AddNode(
      owner->types.paper, {{"title", "xylocarp indexing methods"}}));
  auto accepted = client.Mutate(request);
  ASSERT_TRUE(accepted.ok()) << accepted.status();
  EXPECT_GT(accepted->sequence, 0u);

  // Acceptance is log-side only; poll until the covering snapshot
  // publishes and the document becomes visible to readers.
  ASSERT_TRUE(builder.WaitForSequence(accepted->sequence, 30.0));
  auto after = client.Search({"xylocarp", 10, 0.0});
  ASSERT_TRUE(after.ok()) << after.status();
  ASSERT_FALSE(after->results.empty());
  EXPECT_EQ(after->results[0].display_label, "xylocarp indexing methods");
  EXPECT_GT(after->snapshot_version, 1u);

  // A statically invalid batch (unknown edge type — node-id dangling is
  // an apply-time concern) is rejected at the log with kInvalidArgument
  // and counted.
  MutateRequest bad;
  bad.batch.mutations.push_back(mutate::Mutation::AddEdge(0, 1, 250));
  auto rejected = client.Mutate(bad);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_GE(metrics->mutate_accepted, 1u);
  EXPECT_GE(metrics->mutate_rejected, 1u);
  EXPECT_GE(metrics->snapshots_published, 1u);
  EXPECT_GE(metrics->epochs_live, 1u);

  server.Shutdown();
  builder.Stop();
  EXPECT_EQ(server.stats().unanswered_frames, 0u);
  EXPECT_GE(builder.stats().publications, 1u);
}

}  // namespace
}  // namespace orx::net
