#include "core/hits.h"

#include <gtest/gtest.h>

#include "datasets/figure1.h"
#include "text/query.h"

namespace orx::core {
namespace {

class HitsTest : public ::testing::Test {
 protected:
  HitsTest() : fig_(datasets::MakeFigure1Dataset()) {
    text::QueryVector q(text::ParseQuery("olap"));
    base_ = *BuildBaseSet(fig_.dataset.corpus(), q);
  }

  datasets::Figure1Dataset fig_;
  BaseSet base_;
};

TEST_F(HitsTest, AuthorityFavorsTheMostCitedPaper) {
  auto result = ComputeHits(fig_.dataset.data(), base_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  // v7 is cited by three papers inside the focused subgraph.
  for (graph::NodeId v = 0; v < fig_.dataset.data().num_nodes(); ++v) {
    if (v == fig_.v7_data_cube) continue;
    EXPECT_GE(result->authorities[fig_.v7_data_cube],
              result->authorities[v]);
  }
}

TEST_F(HitsTest, HubFavorsThePaperCitingMost) {
  auto result = ComputeHits(fig_.dataset.data(), base_);
  ASSERT_TRUE(result.ok());
  // v4 cites two papers (v7, v5), more than any other single node points
  // to high-authority nodes.
  EXPECT_GT(result->hubs[fig_.v4_range_queries],
            result->hubs[fig_.v7_data_cube]);
}

TEST_F(HitsTest, VectorsAreNormalizedOverTheSubgraph) {
  auto result = ComputeHits(fig_.dataset.data(), base_);
  ASSERT_TRUE(result.ok());
  double auth_sum = 0.0, hub_sum = 0.0;
  for (size_t v = 0; v < result->authorities.size(); ++v) {
    EXPECT_GE(result->authorities[v], 0.0);
    EXPECT_GE(result->hubs[v], 0.0);
    auth_sum += result->authorities[v];
    hub_sum += result->hubs[v];
  }
  EXPECT_NEAR(auth_sum, 1.0, 1e-9);
  EXPECT_NEAR(hub_sum, 1.0, 1e-9);
  EXPECT_GT(result->subgraph_size, 0u);
  EXPECT_LE(result->subgraph_size, fig_.dataset.data().num_nodes());
}

TEST_F(HitsTest, ZeroExpansionRestrictsToRootSet) {
  HitsOptions options;
  options.expansion_hops = 0;
  auto result = ComputeHits(fig_.dataset.data(), base_, options);
  ASSERT_TRUE(result.ok());
  // Root set = {v1, v4}; nothing else may carry mass.
  EXPECT_EQ(result->subgraph_size, 2u);
  EXPECT_DOUBLE_EQ(result->authorities[fig_.v7_data_cube], 0.0);
}

TEST_F(HitsTest, EmptyBaseSetIsInvalid) {
  BaseSet empty;
  EXPECT_EQ(ComputeHits(fig_.dataset.data(), empty).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace orx::core
