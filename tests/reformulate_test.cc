#include "reformulate/reformulator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "datasets/figure1.h"
#include "text/query.h"

namespace orx::reform {
namespace {

class ReformulateFigure1Test : public ::testing::Test {
 protected:
  ReformulateFigure1Test()
      : fig_(datasets::MakeFigure1Dataset()),
        rates_(datasets::DblpGroundTruthRates(fig_.dataset.schema(),
                                              fig_.types)),
        engine_(fig_.dataset.authority()),
        reformulator_(fig_.dataset.data(), fig_.dataset.authority(),
                      fig_.dataset.corpus()) {
    query_ = text::QueryVector(text::ParseQuery("olap"));
    base_ = *core::BuildBaseSet(fig_.dataset.corpus(), query_);
    core::ObjectRankOptions options;
    options.epsilon = 1e-10;
    scores_ = engine_.Compute(base_, rates_, options).scores;
  }

  StatusOr<ReformulationResult> ReformulateV4(
      ReformulationOptions options) {
    options.explain.radius = 5;
    const graph::NodeId feedback[] = {fig_.v4_range_queries};
    return reformulator_.Reformulate(query_, rates_, base_, scores_,
                                     feedback, options);
  }

  datasets::Figure1Dataset fig_;
  graph::TransferRates rates_;
  core::ObjectRankEngine engine_;
  Reformulator reformulator_;
  text::QueryVector query_;
  core::BaseSet base_;
  std::vector<double> scores_;
};

// Example 2 (Section 5.2): with C_f = 0.5, PP and PY decrease, PA
// increases; PF stays 0.
TEST_F(ReformulateFigure1Test, Example2StructureDirections) {
  ReformulationOptions options;
  options.structure.adjustment = 0.5;
  options.content.expansion = 0.0;
  auto result = ReformulateV4(options);
  ASSERT_TRUE(result.ok());

  auto before = datasets::DblpRateVector(rates_, fig_.types);
  auto after = datasets::DblpRateVector(result->rates, fig_.types);
  // Order: [PP, PF, PA, AP, CY, YC, YP, PY].
  EXPECT_LT(after[0], before[0]);             // PP: 0.70 -> ~0.66
  EXPECT_DOUBLE_EQ(after[1], 0.0);            // PF stays 0
  EXPECT_GT(after[2], before[2]);             // PA boosted
  EXPECT_LT(after[7], before[7]);             // PY: 0.10 -> ~0.08
  EXPECT_NEAR(after[0], 0.67, 0.03);
  EXPECT_NEAR(after[7], 0.08, 0.01);
}

TEST_F(ReformulateFigure1Test, StructureNormalizationInvariants) {
  ReformulationOptions options;
  options.structure.adjustment = 0.5;
  auto result = ReformulateV4(options);
  ASSERT_TRUE(result.ok());
  const graph::SchemaGraph& schema = fig_.dataset.schema();
  for (uint32_t s = 0; s < result->rates.num_slots(); ++s) {
    EXPECT_GE(result->rates.slot(s), 0.0);
    EXPECT_LE(result->rates.slot(s), 1.0 + 1e-12);
  }
  for (graph::TypeId t = 0; t < schema.num_node_types(); ++t) {
    EXPECT_LE(result->rates.OutgoingSum(schema, t), 1.0 + 1e-9);
  }
}

// Example 2 (Section 5.1): the expansion terms come from the explaining
// subgraph; "olap" and "cubes" (terms of the feedback object) are among
// the top expansion terms.
TEST_F(ReformulateFigure1Test, Example2ContentExpansion) {
  ReformulationOptions options;
  options.content.expansion = 1.0;
  options.content.decay = 0.5;
  options.content.top_terms = 10;
  auto result = ReformulateV4(options);
  ASSERT_TRUE(result.ok());
  bool has_olap = false, has_cubes = false, has_range = false;
  for (const auto& [term, w] : result->top_expansion_terms) {
    has_olap |= term == "olap";
    has_cubes |= term == "cubes";
    has_range |= term == "range";
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, 1.0 + 1e-12);  // normalized against the max
  }
  EXPECT_TRUE(has_olap);
  EXPECT_TRUE(has_cubes);
  EXPECT_TRUE(has_range);

  // The query vector grew and "olap"'s weight was bumped above 1.
  EXPECT_GT(result->query.size(), query_.size());
  EXPECT_GT(result->query.Weight("olap"), 1.0);
  EXPECT_GT(result->query.Weight("cubes"), 0.0);
}

TEST_F(ReformulateFigure1Test, ExpansionFactorZeroKeepsQuery) {
  ReformulationOptions options;
  options.content.expansion = 0.0;
  auto result = ReformulateV4(options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->query.terms(), query_.terms());
  EXPECT_EQ(result->query.weights(), query_.weights());
}

TEST_F(ReformulateFigure1Test, AdjustmentFactorZeroKeepsRates) {
  ReformulationOptions options;
  options.structure.adjustment = 0.0;
  auto result = ReformulateV4(options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rates.slots(), rates_.slots());
}

TEST_F(ReformulateFigure1Test, NoFeedbackObjectsIsInvalid) {
  EXPECT_EQ(reformulator_
                .Reformulate(query_, rates_, base_, scores_, {}, {})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ReformulateFigure1Test, ZeroRateFeedbackLeavesInputsUnchanged) {
  // Under all-zero rates no authority flows anywhere. A feedback object
  // that belongs to the base set still yields a trivial explanation (its
  // score is pure jump mass: a single-node, zero-edge subgraph), which
  // carries no signal — the query and rates must come back unchanged.
  graph::TransferRates zero(fig_.dataset.schema(), 0.0);
  const graph::NodeId feedback[] = {fig_.v4_range_queries};
  auto result = reformulator_.Reformulate(query_, zero, base_, scores_,
                                          feedback, {});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->explanations.size(), 1u);
  EXPECT_EQ(result->explanations[0].subgraph.num_edges(), 0u);
  EXPECT_EQ(result->query.terms(), query_.terms());
  EXPECT_EQ(result->rates.slots(), zero.slots());

  // A feedback object *outside* the base set is skipped entirely.
  const graph::NodeId unreachable[] = {fig_.v7_data_cube};
  auto skipped = reformulator_.Reformulate(query_, zero, base_, scores_,
                                           unreachable, {});
  ASSERT_TRUE(skipped.ok());
  EXPECT_TRUE(skipped->explanations.empty());
}

TEST_F(ReformulateFigure1Test, MultipleFeedbackObjectsAggregate) {
  ReformulationOptions options;
  options.explain.radius = 5;
  options.content.expansion = 1.0;
  const graph::NodeId feedback[] = {fig_.v4_range_queries,
                                    fig_.v7_data_cube};
  auto result = reformulator_.Reformulate(query_, rates_, base_, scores_,
                                          feedback, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->explanations.size(), 2u);
  EXPECT_GT(result->avg_explain_iterations, 0.0);
  // Terms of v7's subgraph (e.g. "cube" from the Data Cube title) should
  // now be available as expansion candidates too.
  EXPECT_GT(result->query.size(), query_.size());
}

TEST_F(ReformulateFigure1Test, AggregateKindsAllProduceValidRates) {
  for (AggregateKind kind :
       {AggregateKind::kSum, AggregateKind::kMin, AggregateKind::kMax,
        AggregateKind::kAvg}) {
    ReformulationOptions options;
    options.aggregate = kind;
    options.explain.radius = 5;
    const graph::NodeId feedback[] = {fig_.v4_range_queries,
                                      fig_.v5_modeling};
    auto result = reformulator_.Reformulate(query_, rates_, base_, scores_,
                                            feedback, options);
    ASSERT_TRUE(result.ok());
    for (uint32_t s = 0; s < result->rates.num_slots(); ++s) {
      EXPECT_GE(result->rates.slot(s), 0.0);
      EXPECT_LE(result->rates.slot(s), 1.0 + 1e-12);
    }
  }
}

// Direct unit tests of the structure pipeline against the paper's
// Example 2 numbers, using a hand-crafted flow vector shaped like the
// paper's (PA flows dominate, PP moderate, others negligible).
TEST(StructureReformulatorTest, Example2EndToEnd) {
  datasets::DblpTypes types;
  auto schema = datasets::MakeDblpSchema(&types);
  graph::TransferRates rates = datasets::DblpGroundTruthRates(*schema, types);

  std::vector<double> flows(schema->num_rate_slots(), 0.0);
  flows[graph::RateIndex(types.by, graph::Direction::kForward)] = 1.0;   // PA
  flows[graph::RateIndex(types.cites, graph::Direction::kForward)] = 0.39;
  StructureOptions options;
  options.adjustment = 0.5;
  graph::TransferRates next =
      ReformulateStructure(*schema, rates, flows, options);

  auto v = datasets::DblpRateVector(next, types);
  // Paper: [0.67, 0.0, 0.24, 0.16, 0.24, 0.24, 0.24, 0.08].
  EXPECT_NEAR(v[0], 0.67, 0.01);  // PP
  EXPECT_DOUBLE_EQ(v[1], 0.0);    // PF
  EXPECT_NEAR(v[2], 0.24, 0.01);  // PA
  EXPECT_NEAR(v[3], 0.16, 0.01);  // AP
  EXPECT_NEAR(v[4], 0.24, 0.01);  // CY
  EXPECT_NEAR(v[5], 0.24, 0.01);  // YC
  EXPECT_NEAR(v[6], 0.24, 0.01);  // YP
  EXPECT_NEAR(v[7], 0.08, 0.01);  // PY
}

TEST(StructureReformulatorTest, AllZeroFlowsAreANoOp) {
  datasets::DblpTypes types;
  auto schema = datasets::MakeDblpSchema(&types);
  graph::TransferRates rates = datasets::DblpGroundTruthRates(*schema, types);
  std::vector<double> flows(schema->num_rate_slots(), 0.0);
  graph::TransferRates next =
      ReformulateStructure(*schema, rates, flows, {});
  EXPECT_EQ(next.slots(), rates.slots());
}


// Direct unit tests of the content pipeline with hand-computed numbers.
TEST(ContentReformulatorTest, NormalizationAndEquation12ByHand) {
  // Current query: [olap] with weight 1 -> average weight a_w = 1.
  text::QueryVector current(text::Query{"olap"});
  // Raw expansion weights: cubes 0.004, range 0.002 -> normalized by
  // a_w / max = 1/0.004: cubes 1.0, range 0.5. With C_e = 0.5 the new
  // weights are 0.5 and 0.25 (Equation 12).
  std::vector<std::pair<std::string, double>> weights{
      {"cubes", 0.004}, {"range", 0.002}};
  ContentOptions options;
  options.expansion = 0.5;
  options.top_terms = 5;
  text::QueryVector next = ReformulateContent(current, weights, options);
  EXPECT_DOUBLE_EQ(next.Weight("olap"), 1.0);
  EXPECT_DOUBLE_EQ(next.Weight("cubes"), 0.5);
  EXPECT_DOUBLE_EQ(next.Weight("range"), 0.25);
}

TEST(ContentReformulatorTest, ExistingTermsGetBumpedNotDuplicated) {
  text::QueryVector current(text::Query{"olap"});
  std::vector<std::pair<std::string, double>> weights{{"olap", 0.01}};
  ContentOptions options;
  options.expansion = 1.0;
  text::QueryVector next = ReformulateContent(current, weights, options);
  EXPECT_EQ(next.size(), 1u);
  // Normalized olap weight = a_w = 1; bumped by C_e * 1.
  EXPECT_DOUBLE_EQ(next.Weight("olap"), 2.0);
}

TEST(ContentReformulatorTest, TopTermsCapAndTieBreaks) {
  text::QueryVector current(text::Query{"seed"});
  std::vector<std::pair<std::string, double>> weights{
      {"zeta", 0.5}, {"alpha", 0.5}, {"beta", 0.5}, {"gamma", 1.0}};
  ContentOptions options;
  options.expansion = 1.0;
  options.top_terms = 2;
  text::QueryVector next = ReformulateContent(current, weights, options);
  // gamma (max) and alpha (lexicographic winner among the tie) survive.
  EXPECT_GT(next.Weight("gamma"), 0.0);
  EXPECT_GT(next.Weight("alpha"), 0.0);
  EXPECT_DOUBLE_EQ(next.Weight("beta"), 0.0);
  EXPECT_DOUBLE_EQ(next.Weight("zeta"), 0.0);
}

TEST(ContentReformulatorTest, SumTermWeightsAggregates) {
  std::vector<std::vector<std::pair<std::string, double>>> per_object{
      {{"a", 1.0}, {"b", 2.0}}, {{"b", 3.0}, {"c", 4.0}}};
  auto sum = SumTermWeights(per_object);
  double a = 0, b = 0, c = 0;
  for (const auto& [term, w] : sum) {
    if (term == "a") a = w;
    if (term == "b") b = w;
    if (term == "c") c = w;
  }
  EXPECT_DOUBLE_EQ(a, 1.0);
  EXPECT_DOUBLE_EQ(b, 5.0);
  EXPECT_DOUBLE_EQ(c, 4.0);
}

TEST(StructureReformulatorTest, EdgeTypeFlowAggregation) {
  // Sum of per-object flow vectors (Equation 15).
  std::vector<std::vector<double>> per_object{{1.0, 0.0, 2.0},
                                              {0.5, 1.5, 0.0}};
  auto sum = SumEdgeTypeFlows(per_object);
  EXPECT_EQ(sum, (std::vector<double>{1.5, 1.5, 2.0}));
}

}  // namespace
}  // namespace orx::reform
