// Death tests for the invariant-checking macros in common/check.h: the
// comparison macros must print both operand values, ORX_CHECK_OK the
// rendered Status, and none of them may evaluate an operand twice.

#include "common/check.h"

#include <string>

#include "common/status.h"
#include "gtest/gtest.h"

namespace orx {
namespace {

TEST(CheckTest, CheckPassesOnTrue) {
  ORX_CHECK(1 + 1 == 2);
  ORX_CHECK_MSG(true, "never printed");
}

TEST(CheckDeathTest, CheckPrintsConditionAndLocation) {
  EXPECT_DEATH(ORX_CHECK(2 + 2 == 5), "ORX_CHECK failed at .*check_test.cc");
}

TEST(CheckTest, ComparisonMacrosPassOnSatisfiedRelation) {
  ORX_CHECK_EQ(4, 2 + 2);
  ORX_CHECK_NE(std::string("a"), std::string("b"));
  ORX_CHECK_LT(1, 2);
  ORX_CHECK_LE(2, 2);
}

TEST(CheckDeathTest, EqPrintsBothOperandValues) {
  const size_t have = 3, want = 5;
  EXPECT_DEATH(ORX_CHECK_EQ(have, want), "have == want \\(3 vs. 5\\)");
}

TEST(CheckDeathTest, NePrintsBothOperandValues) {
  EXPECT_DEATH(ORX_CHECK_NE(7, 7), "7 != 7 \\(7 vs. 7\\)");
}

TEST(CheckDeathTest, LtPrintsBothOperandValues) {
  EXPECT_DEATH(ORX_CHECK_LT(9, 4), "9 < 4 \\(9 vs. 4\\)");
}

TEST(CheckDeathTest, LePrintsBothOperandValues) {
  EXPECT_DEATH(ORX_CHECK_LE(10, 4), "10 <= 4 \\(10 vs. 4\\)");
}

TEST(CheckDeathTest, StringOperandsRenderTheirContents) {
  const std::string got = "apple", expected = "pear";
  EXPECT_DEATH(ORX_CHECK_EQ(got, expected), "\\(apple vs. pear\\)");
}

TEST(CheckTest, OperandsEvaluateExactlyOnce) {
  int evaluations = 0;
  auto count = [&evaluations] { return ++evaluations; };
  ORX_CHECK_EQ(count(), 1);
  EXPECT_EQ(evaluations, 1);
  ORX_CHECK_LE(1, count());
  EXPECT_EQ(evaluations, 2);
}

TEST(CheckTest, CheckOkPassesOnOkStatusAndStatusOr) {
  ORX_CHECK_OK(Status::OK());
  StatusOr<int> ok_value(42);
  ORX_CHECK_OK(ok_value);
}

TEST(CheckDeathTest, CheckOkPrintsRenderedStatus) {
  EXPECT_DEATH(ORX_CHECK_OK(InvalidArgumentError("bad damping")),
               "ORX_CHECK_OK failed at .* is INVALID_ARGUMENT: bad damping");
}

TEST(CheckDeathTest, CheckOkPrintsStatusOrError) {
  StatusOr<int> failed(NotFoundError("no such term"));
  EXPECT_DEATH(ORX_CHECK_OK(failed), "NOT_FOUND: no such term");
}

TEST(CheckTest, DcheckOkCompiledInMatchesBuildMode) {
#ifdef NDEBUG
  // Compiles out: the failing expression must not be evaluated at all.
  bool evaluated = false;
  ORX_DCHECK_OK(
      (evaluated = true, InvalidArgumentError("unreachable in NDEBUG")));
  EXPECT_FALSE(evaluated);
#else
  ORX_DCHECK_OK(Status::OK());
#endif
}

}  // namespace
}  // namespace orx
