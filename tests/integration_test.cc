// End-to-end pipeline tests: generate a dataset, search, explain the top
// result, reformulate from feedback, and search again — the full loop the
// paper's system executes per user interaction.

#include <gtest/gtest.h>

#include "core/searcher.h"
#include "datasets/bio_generator.h"
#include "datasets/dblp_generator.h"
#include "explain/explainer.h"
#include "reformulate/reformulator.h"
#include "text/query.h"

namespace orx {
namespace {

class DblpPipelineTest : public ::testing::Test {
 protected:
  DblpPipelineTest()
      : dblp_(datasets::GenerateDblp(
            datasets::DblpGeneratorConfig::Tiny(/*papers=*/1500,
                                                /*seed=*/77))),
        rates_(datasets::DblpGroundTruthRates(dblp_.dataset.schema(),
                                              dblp_.types)) {}

  datasets::DblpDataset dblp_;
  graph::TransferRates rates_;
};

TEST_F(DblpPipelineTest, SearchExplainReformulateSearch) {
  const graph::DataGraph& data = dblp_.dataset.data();
  core::Searcher searcher(data, dblp_.dataset.authority(),
                          dblp_.dataset.corpus());
  searcher.PrecomputeGlobalRank(rates_);

  // 1. Search.
  text::QueryVector query(text::ParseQuery("query optimization"));
  core::SearchOptions search_options;
  search_options.result_type = dblp_.types.paper;
  auto search = searcher.Search(query, rates_, search_options);
  ASSERT_TRUE(search.ok());
  ASSERT_FALSE(search->top.empty());
  EXPECT_TRUE(search->converged);

  // 2. Explain the top result.
  auto base = core::BuildBaseSet(dblp_.dataset.corpus(), query);
  ASSERT_TRUE(base.ok());
  explain::Explainer explainer(data, dblp_.dataset.authority());
  explain::ExplainOptions explain_options;
  explain_options.radius = 3;
  auto explanation = explainer.Explain(search->top[0].node, *base,
                                       search->scores, rates_, 0.85,
                                       explain_options);
  ASSERT_TRUE(explanation.ok());
  EXPECT_TRUE(explanation->subgraph.Contains(search->top[0].node));
  EXPECT_GT(explanation->subgraph.num_edges(), 0u);

  // 3. Reformulate with the top result as feedback.
  reform::Reformulator reformulator(data, dblp_.dataset.authority(),
                                    dblp_.dataset.corpus());
  reform::ReformulationOptions reform_options;
  reform_options.content.expansion = 0.2;
  reform_options.structure.adjustment = 0.5;
  const graph::NodeId feedback[] = {search->top[0].node};
  auto reformulated = reformulator.Reformulate(
      query, rates_, *base, search->scores, feedback, reform_options);
  ASSERT_TRUE(reformulated.ok());
  ASSERT_EQ(reformulated->explanations.size(), 1u);
  EXPECT_GE(reformulated->query.size(), query.size());

  // 4. Search with the reformulated query and rates; warm start should
  //    make it cheaper than the initial query.
  auto second = searcher.Search(reformulated->query, reformulated->rates,
                                search_options);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->top.empty());
  EXPECT_LE(second->iterations, search->iterations);
}

TEST_F(DblpPipelineTest, FeedbackBoostsSimilarResults) {
  // Marking a result relevant and reformulating should keep that result's
  // neighborhood highly ranked: the feedback object itself must stay in
  // the top-k of the reformulated query (content expansion pulls its
  // terms in; structure adjustment favors its inflow edge types).
  const graph::DataGraph& data = dblp_.dataset.data();
  core::Searcher searcher(data, dblp_.dataset.authority(),
                          dblp_.dataset.corpus());
  text::QueryVector query(text::ParseQuery("mining"));
  core::SearchOptions search_options;
  search_options.result_type = dblp_.types.paper;
  search_options.k = 20;
  auto search = searcher.Search(query, rates_, search_options);
  ASSERT_TRUE(search.ok());
  ASSERT_GE(search->top.size(), 3u);
  const graph::NodeId liked = search->top[2].node;

  auto base = core::BuildBaseSet(dblp_.dataset.corpus(), query);
  reform::Reformulator reformulator(data, dblp_.dataset.authority(),
                                    dblp_.dataset.corpus());
  reform::ReformulationOptions reform_options;
  reform_options.content.expansion = 0.5;
  reform_options.structure.adjustment = 0.5;
  const graph::NodeId feedback[] = {liked};
  auto reformulated = reformulator.Reformulate(
      query, rates_, *base, search->scores, feedback, reform_options);
  ASSERT_TRUE(reformulated.ok());

  auto second = searcher.Search(reformulated->query, reformulated->rates,
                                search_options);
  ASSERT_TRUE(second.ok());
  bool liked_still_top = false;
  for (const core::ScoredNode& r : second->top) {
    liked_still_top |= (r.node == liked);
  }
  EXPECT_TRUE(liked_still_top);
}

TEST(BioPipelineTest, CrossEntityExplanation) {
  datasets::BioDataset bio = datasets::GenerateBio(
      datasets::BioGeneratorConfig::Tiny(/*pubs=*/1500, /*seed=*/41));
  const graph::DataGraph& data = bio.dataset.data();
  graph::TransferRates rates =
      datasets::BioGroundTruthRates(bio.dataset.schema(), bio.types);

  core::Searcher searcher(data, bio.dataset.authority(),
                          bio.dataset.corpus());
  text::QueryVector query(text::ParseQuery("kinase"));
  core::SearchOptions options;
  options.k = 50;
  auto search = searcher.Search(query, rates, options);
  ASSERT_TRUE(search.ok());

  // Find a highly-ranked gene or protein (an object that typically does
  // not contain the keyword) and explain it.
  graph::NodeId entity = graph::kInvalidNodeId;
  for (const core::ScoredNode& r : search->top) {
    if (data.NodeType(r.node) == bio.types.gene ||
        data.NodeType(r.node) == bio.types.protein) {
      entity = r.node;
      break;
    }
  }
  ASSERT_NE(entity, graph::kInvalidNodeId)
      << "expected an entity in the top-50";

  auto base = core::BuildBaseSet(bio.dataset.corpus(), query);
  explain::Explainer explainer(data, bio.dataset.authority());
  auto explanation =
      explainer.Explain(entity, *base, search->scores, rates, 0.85, {});
  ASSERT_TRUE(explanation.ok());
  // The explanation must include at least one publication (the authority
  // source type) — that's what justifies the entity's rank to the user.
  bool has_pub = false;
  const auto& sub = explanation->subgraph;
  for (explain::LocalId v = 0; v < sub.num_nodes(); ++v) {
    has_pub |= data.NodeType(sub.GlobalId(v)) == bio.types.pubmed;
  }
  EXPECT_TRUE(has_pub);
}

TEST(ScaleSmokeTest, MidSizeDblpEndToEnd) {
  // A mid-size graph exercises CSR paths that tiny graphs may not
  // (multi-block offsets, larger base sets).
  datasets::DblpGeneratorConfig config =
      datasets::DblpGeneratorConfig::Tiny(/*papers=*/5000, /*seed=*/3);
  config.avg_citations = 6.0;
  datasets::DblpDataset dblp = datasets::GenerateDblp(config);
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  core::Searcher searcher(dblp.dataset.data(), dblp.dataset.authority(),
                          dblp.dataset.corpus());
  text::QueryVector q(text::ParseQuery("data"));
  auto result = searcher.Search(q, rates);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->top.size(), 10u);
}

}  // namespace
}  // namespace orx
