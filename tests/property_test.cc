// Parameterized property sweeps (TEST_P): invariants that must hold across
// damping factors, seeds, radii and adjustment factors, on generated
// graphs rather than hand-built ones.

#include <gtest/gtest.h>

#include <cmath>

#include "core/searcher.h"
#include "datasets/dblp_generator.h"
#include "explain/explainer.h"
#include "reformulate/reformulator.h"
#include "text/query.h"

namespace orx {
namespace {

// One shared mid-size graph for all properties (generation dominates test
// time otherwise).
class SharedDblp {
 public:
  static const datasets::DblpDataset& Get() {
    static const datasets::DblpDataset& dblp = *new datasets::DblpDataset(
        datasets::GenerateDblp(
            datasets::DblpGeneratorConfig::Tiny(/*papers=*/1000,
                                                /*seed=*/123)));
    return dblp;
  }
};

// ----------------------------------------------------------------------
// ObjectRank properties across damping factors.
// ----------------------------------------------------------------------

class ObjectRankDampingProperty : public ::testing::TestWithParam<double> {};

TEST_P(ObjectRankDampingProperty, ScoresAreAProbabilitySubdistribution) {
  const auto& dblp = SharedDblp::Get();
  const double damping = GetParam();
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  core::ObjectRankEngine engine(dblp.dataset.authority());

  text::QueryVector q(text::ParseQuery("data"));
  auto base = core::BuildBaseSet(dblp.dataset.corpus(), q);
  ASSERT_TRUE(base.ok());
  core::ObjectRankOptions options;
  options.damping = damping;
  options.epsilon = 1e-8;
  auto result = engine.Compute(*base, rates, options);
  EXPECT_TRUE(result.converged);

  double sum = 0.0;
  for (double s : result.scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_TRUE(std::isfinite(s));
    sum += s;
  }
  // The jump mass injects (1 - d) each step and each node forwards at
  // most d of its mass, so the stationary total is at most 1.
  EXPECT_LE(sum, 1.0 + 1e-6);
  if (damping < 1.0) {
    EXPECT_GT(sum, 0.0);
  }
}

TEST_P(ObjectRankDampingProperty, WarmStartFindsTheSameFixpoint) {
  const auto& dblp = SharedDblp::Get();
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  core::ObjectRankEngine engine(dblp.dataset.authority());
  text::QueryVector q(text::ParseQuery("systems"));
  auto base = core::BuildBaseSet(dblp.dataset.corpus(), q);
  ASSERT_TRUE(base.ok());

  core::ObjectRankOptions options;
  options.damping = GetParam();
  options.epsilon = 1e-10;
  auto cold = engine.Compute(*base, rates, options);
  auto global = engine.ComputeGlobal(rates, options);
  auto warm = engine.Compute(*base, rates, options, &global.scores);
  for (size_t v = 0; v < cold.scores.size(); ++v) {
    EXPECT_NEAR(cold.scores[v], warm.scores[v], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(DampingSweep, ObjectRankDampingProperty,
                         ::testing::Values(0.05, 0.25, 0.5, 0.75, 0.85,
                                           0.95));

// ----------------------------------------------------------------------
// Parallel engine: identical fixpoints for every thread count, and
// bit-identical results across parallel partitionings.
// ----------------------------------------------------------------------

class ObjectRankThreadsProperty : public ::testing::TestWithParam<int> {};

TEST_P(ObjectRankThreadsProperty, MatchesSequentialFixpoint) {
  const auto& dblp = SharedDblp::Get();
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  core::ObjectRankEngine engine(dblp.dataset.authority());
  text::QueryVector q(text::ParseQuery("data"));
  auto base = core::BuildBaseSet(dblp.dataset.corpus(), q);
  ASSERT_TRUE(base.ok());

  core::ObjectRankOptions sequential;
  sequential.epsilon = 1e-10;
  auto seq = engine.Compute(*base, rates, sequential);

  core::ObjectRankOptions parallel = sequential;
  parallel.num_threads = GetParam();
  auto par = engine.Compute(*base, rates, parallel);
  ASSERT_EQ(seq.scores.size(), par.scores.size());
  for (size_t v = 0; v < seq.scores.size(); ++v) {
    EXPECT_NEAR(seq.scores[v], par.scores[v], 1e-9);
  }

  // Pull-based passes are bit-identical across thread counts.
  core::ObjectRankOptions two = parallel;
  two.num_threads = 2;
  auto par2 = engine.Compute(*base, rates, two);
  if (GetParam() >= 2) {
    EXPECT_EQ(par.scores, par2.scores);
    EXPECT_EQ(par.iterations, par2.iterations);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, ObjectRankThreadsProperty,
                         ::testing::Values(2, 3, 4, 8));

// ----------------------------------------------------------------------
// Explaining-subgraph properties across radii.
// ----------------------------------------------------------------------

class ExplainRadiusProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExplainRadiusProperty, SubgraphInvariants) {
  const auto& dblp = SharedDblp::Get();
  const int radius = GetParam();
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  core::ObjectRankEngine engine(dblp.dataset.authority());
  text::QueryVector q(text::ParseQuery("data"));
  auto base = core::BuildBaseSet(dblp.dataset.corpus(), q);
  ASSERT_TRUE(base.ok());
  auto rank = engine.Compute(*base, rates, {});

  auto top = core::TopKOfType(rank.scores, 3, dblp.dataset.data(),
                              dblp.types.paper);
  ASSERT_FALSE(top.empty());
  explain::Explainer explainer(dblp.dataset.data(),
                               dblp.dataset.authority());
  explain::ExplainOptions options;
  options.radius = radius;
  options.epsilon = 1e-10;

  for (const core::ScoredNode& target : top) {
    auto explanation = explainer.Explain(target.node, *base, rank.scores,
                                         rates, 0.85, options);
    if (!explanation.ok()) {
      EXPECT_EQ(explanation.status().code(), StatusCode::kNotFound);
      continue;
    }
    const auto& sub = explanation->subgraph;
    EXPECT_TRUE(explanation->converged);
    EXPECT_DOUBLE_EQ(sub.ReductionFactor(sub.target_local()), 1.0);
    for (explain::LocalId v = 0; v < sub.num_nodes(); ++v) {
      EXPECT_GE(sub.ReductionFactor(v), 0.0);
      EXPECT_LE(sub.ReductionFactor(v), 1.0 + 1e-9);
      // Reachable (pruning removes dead ends); the distance may exceed
      // the radius when only a longer high-flow path survives pruning.
      EXPECT_GE(sub.DistanceToTarget(v), 0);
      if (v != sub.target_local()) {
        // Equation 10 holds at the fixpoint.
        double expected = 0.0;
        for (uint32_t ei : sub.OutEdgeIndices(v)) {
          expected += sub.ReductionFactor(sub.edges()[ei].to) *
                      sub.edges()[ei].rate;
        }
        EXPECT_NEAR(sub.ReductionFactor(v), expected, 1e-7);
      }
    }
    for (const explain::ExplainEdge& e : sub.edges()) {
      EXPECT_GE(e.adjusted_flow, 0.0);
      EXPECT_LE(e.adjusted_flow, e.original_flow + 1e-12);
      EXPECT_GT(e.rate, 0.0);
    }
    // Monotonicity: with pruning disabled, larger radii can only add
    // nodes/edges. (Relative pruning breaks this: a bigger ball can raise
    // the max flow and hence the pruning threshold.)
    if (radius > 1) {
      explain::ExplainOptions unpruned = options;
      unpruned.prune_fraction = 0.0;
      explain::ExplainOptions smaller = unpruned;
      smaller.radius = radius - 1;
      auto big = explainer.Explain(target.node, *base, rank.scores, rates,
                                   0.85, unpruned);
      auto prev = explainer.Explain(target.node, *base, rank.scores, rates,
                                    0.85, smaller);
      if (big.ok() && prev.ok()) {
        EXPECT_LE(prev->subgraph.num_nodes(), big->subgraph.num_nodes());
        EXPECT_LE(prev->subgraph.num_edges(), big->subgraph.num_edges());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RadiusSweep, ExplainRadiusProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ----------------------------------------------------------------------
// Structure-reformulation properties across C_f.
// ----------------------------------------------------------------------

class ReformAdjustmentProperty : public ::testing::TestWithParam<double> {};

TEST_P(ReformAdjustmentProperty, RepeatedRoundsPreserveRateInvariants) {
  const auto& dblp = SharedDblp::Get();
  const double cf = GetParam();
  const graph::SchemaGraph& schema = dblp.dataset.schema();
  graph::TransferRates rates = datasets::DblpUniformRates(schema, 0.3);
  core::ObjectRankEngine engine(dblp.dataset.authority());
  reform::Reformulator reformulator(dblp.dataset.data(),
                                    dblp.dataset.authority(),
                                    dblp.dataset.corpus());

  text::QueryVector query(text::ParseQuery("data"));
  for (int round = 0; round < 3; ++round) {
    auto base = core::BuildBaseSet(dblp.dataset.corpus(), query);
    ASSERT_TRUE(base.ok());
    auto rank = engine.Compute(*base, rates, {});
    auto top = core::TopKOfType(rank.scores, 2, dblp.dataset.data(),
                                dblp.types.paper);
    ASSERT_FALSE(top.empty());
    std::vector<graph::NodeId> feedback;
    for (const auto& r : top) feedback.push_back(r.node);

    reform::ReformulationOptions options;
    options.structure.adjustment = cf;
    options.content.expansion = 0.2;
    auto result = reformulator.Reformulate(query, rates, *base, rank.scores,
                                           feedback, options);
    ASSERT_TRUE(result.ok());
    query = result->query;
    rates = result->rates;

    for (uint32_t s = 0; s < rates.num_slots(); ++s) {
      EXPECT_GE(rates.slot(s), 0.0);
      EXPECT_LE(rates.slot(s), 1.0 + 1e-12);
    }
    for (graph::TypeId t = 0; t < schema.num_node_types(); ++t) {
      EXPECT_LE(rates.OutgoingSum(schema, t), 1.0 + 1e-9);
    }
    for (double w : query.weights()) {
      EXPECT_GT(w, 0.0);
      EXPECT_TRUE(std::isfinite(w));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AdjustmentSweep, ReformAdjustmentProperty,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

// ----------------------------------------------------------------------
// Base-set properties across queries.
// ----------------------------------------------------------------------

class BaseSetQueryProperty
    : public ::testing::TestWithParam<const char*> {};

TEST_P(BaseSetQueryProperty, WeightsAreAProbabilityDistribution) {
  const auto& dblp = SharedDblp::Get();
  text::QueryVector q(text::ParseQuery(GetParam()));
  auto base = core::BuildBaseSet(dblp.dataset.corpus(), q);
  ASSERT_TRUE(base.ok());
  EXPECT_NEAR(base->WeightSum(), 1.0, 1e-9);
  graph::NodeId prev = 0;
  bool first = true;
  for (const auto& [node, w] : base->entries) {
    EXPECT_GT(w, 0.0);
    if (!first) {
      EXPECT_GT(node, prev);  // sorted, deduplicated
    }
    prev = node;
    first = false;
  }
}

INSTANTIATE_TEST_SUITE_P(QuerySweep, BaseSetQueryProperty,
                         ::testing::Values("data", "query optimization",
                                           "xml", "mining",
                                           "proximity search",
                                           "ranked search", "olap"));

}  // namespace
}  // namespace orx
