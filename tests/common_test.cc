#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/timer.h"

namespace orx {
namespace {

// ----------------------------------------------------------------------
// Status / StatusOr
// ----------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, OkStatusWithoutValueBecomesInternal) {
  StatusOr<int> v = Status::OK();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

// ----------------------------------------------------------------------
// Strings
// ----------------------------------------------------------------------

TEST(StringsTest, StrSplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitWhitespaceDropsEmpties) {
  EXPECT_EQ(SplitWhitespace("  a\t b \n c  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ", "), "");
  EXPECT_EQ(StrJoin({"solo"}, ", "), "solo");
}

TEST(StringsTest, AsciiLower) {
  EXPECT_EQ(AsciiLower("OLAP Data-Cube 42"), "olap data-cube 42");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("conference", "conf"));
  EXPECT_FALSE(StartsWith("conf", "conference"));
  EXPECT_TRUE(EndsWith("dblp.xml", ".xml"));
  EXPECT_FALSE(EndsWith(".xml", "dblp.xml"));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.12345, 2), "0.12");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
}

// ----------------------------------------------------------------------
// Rng
// ----------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(uint64_t{17}), 17u);
    int64_t v = rng.UniformInt(int64_t{-5}, int64_t{5});
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    min = std::min(min, u);
    max = std::max(max, u);
  }
  EXPECT_LT(min, 0.05);
  EXPECT_GT(max, 0.95);
}

TEST(RngTest, PoissonMeanApproximatesLambda) {
  Rng rng(99);
  const double lambda = 4.8;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(lambda);
  EXPECT_NEAR(sum / n, lambda, 0.1);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(1);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, NormalMoments) {
  Rng rng(5);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(42);
  Rng child = a.Fork();
  // The child stream must not replay the parent's.
  EXPECT_NE(child.NextUint64(), a.NextUint64());
}

// ----------------------------------------------------------------------
// TablePrinter / Timer
// ----------------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"Name", "#"});
  t.AddRow({"DBLPtop", "22653"});
  t.AddRow({"x", "1"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| Name    | #     |"), std::string::npos);
  EXPECT_NE(s.find("| DBLPtop | 22653 |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(i);
  ::testing::Test::RecordProperty("sink", sink);
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds());  // ms >= s numerically
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace orx
