// Unit + integration tests of the live write path: mutation batch
// semantics (atomicity, intra-batch references, detach-only removal),
// the bounded DeltaLog (sequences, backpressure, close semantics), the
// EpochManager accounting, and the SnapshotBuilder end to end — a write
// acknowledged by the log becomes visible to searches through a
// hot-swapped snapshot.

#include "mutate/mutation.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datasets/dblp_generator.h"
#include "mutate/delta_log.h"
#include "mutate/epoch.h"
#include "mutate/incremental.h"
#include "mutate/snapshot_builder.h"
#include "serve/search_service.h"
#include "serve/snapshot.h"
#include "text/query.h"

namespace orx::mutate {
namespace {

using datasets::DblpDataset;
using datasets::DblpGeneratorConfig;
using datasets::GenerateDblp;

/// A tiny generated DBLP world shared by the fixtures: schema handles,
/// the immutable generated dataset, and ground-truth rates.
struct TinyWorld {
  std::shared_ptr<DblpDataset> owner;
  graph::TransferRates rates;

  explicit TinyWorld(uint32_t papers, uint64_t seed = 11)
      : owner(std::make_shared<DblpDataset>(
            GenerateDblp(DblpGeneratorConfig::Tiny(papers, seed)))),
        rates(datasets::DblpGroundTruthRates(owner->dataset.schema(),
                                             owner->types)) {}

  const graph::SchemaGraph& schema() const {
    return owner->dataset.schema();
  }
  const graph::DataGraph& data() const { return owner->dataset.data(); }
  const datasets::DblpTypes& types() const { return owner->types; }

  std::shared_ptr<const serve::ServeSnapshot> Snapshot() const {
    return std::make_shared<serve::ServeSnapshot>(serve::SnapshotFromOwner(
        owner, owner->dataset.data(), owner->dataset.authority(),
        owner->dataset.corpus(), rates));
  }

  graph::NodeId FirstOfType(graph::TypeId type, size_t skip = 0) const {
    const graph::DataGraph& g = data();
    for (graph::NodeId v = 0; v < static_cast<graph::NodeId>(g.num_nodes());
         ++v) {
      if (g.NodeType(v) == type) {
        if (skip == 0) return v;
        --skip;
      }
    }
    ADD_FAILURE() << "no node of type " << type;
    return graph::kInvalidNodeId;
  }
};

// --- ApplyBatch ------------------------------------------------------------

TEST(ApplyBatchTest, AddNodeAssignsDenseIdsWithIntraBatchReferences) {
  TinyWorld world(40);
  graph::DataGraph g = world.data();
  const graph::NodeId base = static_cast<graph::NodeId>(g.num_nodes());
  const graph::NodeId existing = world.FirstOfType(world.types().paper);

  MutationBatch batch;
  batch.mutations.push_back(Mutation::AddNode(
      world.types().paper, {{"title", "fresh paper one"}}));
  batch.mutations.push_back(Mutation::AddNode(
      world.types().paper, {{"title", "fresh paper two"}}));
  // The second new node cites the first, and the first cites an
  // existing paper — both addressed by their batch-assigned dense ids.
  batch.mutations.push_back(
      Mutation::AddEdge(base + 1, base, world.types().cites));
  batch.mutations.push_back(
      Mutation::AddEdge(base, existing, world.types().cites));

  ApplyEffects effects;
  ASSERT_TRUE(ApplyBatch(g, batch, &effects).ok());
  EXPECT_EQ(g.num_nodes(), base + 2u);
  EXPECT_EQ(g.NodeType(base), world.types().paper);
  EXPECT_EQ(g.Text(base), "fresh paper one");
  EXPECT_EQ(effects.new_nodes, (std::vector<graph::NodeId>{base, base + 1}));
  EXPECT_TRUE(effects.stats_changed);
}

TEST(ApplyBatchTest, FailureLeavesGraphUntouched) {
  TinyWorld world(40);
  graph::DataGraph g = world.data();
  const size_t nodes_before = g.num_nodes();
  const graph::NodeId paper = world.FirstOfType(world.types().paper);

  MutationBatch batch;
  batch.mutations.push_back(Mutation::AddNode(
      world.types().paper, {{"title", "doomed"}}));
  batch.mutations.push_back(Mutation::UpdateNodeText(
      paper, {{"title", "also doomed"}}));
  // Dangling endpoint: the whole batch must roll back.
  batch.mutations.push_back(Mutation::AddEdge(
      paper, static_cast<graph::NodeId>(nodes_before + 99),
      world.types().cites));

  ApplyEffects effects;
  Status applied = ApplyBatch(g, batch, &effects);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(g.num_nodes(), nodes_before);
  EXPECT_EQ(g.Text(paper), world.data().Text(paper));
}

TEST(ApplyBatchTest, ExactDuplicateEdgeIsRejected) {
  TinyWorld world(40);
  graph::DataGraph g = world.data();
  ASSERT_FALSE(g.edges().empty());
  const graph::DataEdge edge = g.edges().front();

  MutationBatch batch;
  batch.mutations.push_back(Mutation::AddEdge(edge.from, edge.to, edge.type));
  EXPECT_FALSE(ApplyBatch(g, batch).ok());
}

TEST(ApplyBatchTest, RemoveNodeDetachesButKeepsIdsDense) {
  TinyWorld world(40);
  graph::DataGraph g = world.data();
  const size_t nodes_before = g.num_nodes();
  ASSERT_FALSE(g.edges().empty());
  const graph::NodeId victim = g.edges().front().from;

  MutationBatch batch;
  batch.mutations.push_back(Mutation::RemoveNode(victim));
  ApplyEffects effects;
  ASSERT_TRUE(ApplyBatch(g, batch, &effects).ok());
  EXPECT_EQ(g.num_nodes(), nodes_before);  // husk stays allocated
  for (const graph::DataEdge& e : g.edges()) {
    EXPECT_NE(e.from, victim);
    EXPECT_NE(e.to, victim);
  }
  EXPECT_EQ(g.Text(victim), "");
  EXPECT_TRUE(effects.stats_changed);
}

TEST(ApplyBatchTest, EdgeOnlyBatchDoesNotTouchCorpusStats) {
  TinyWorld world(40);
  graph::DataGraph g = world.data();
  const graph::NodeId a = world.FirstOfType(world.types().paper, 0);
  const graph::NodeId author = world.FirstOfType(world.types().author);

  MutationBatch batch;
  batch.mutations.push_back(Mutation::AddEdge(a, author, world.types().by));
  ApplyEffects effects;
  Status applied = ApplyBatch(g, batch, &effects);
  if (applied.ok()) {  // the generator may already have this authorship
    EXPECT_FALSE(effects.stats_changed);
    EXPECT_EQ(effects.edge_endpoints,
              (std::vector<graph::NodeId>{a, author}));
  }
}

TEST(ValidateStaticTest, RejectsOutOfRangeTypeIds) {
  TinyWorld world(40);
  MutationBatch batch;
  batch.mutations.push_back(
      Mutation::AddNode(static_cast<graph::TypeId>(9999), {}));
  EXPECT_EQ(ValidateStatic(batch, world.schema()).code(),
            StatusCode::kInvalidArgument);

  MutationBatch edge_batch;
  edge_batch.mutations.push_back(
      Mutation::AddEdge(0, 1, static_cast<graph::EdgeTypeId>(9999)));
  EXPECT_EQ(ValidateStatic(edge_batch, world.schema()).code(),
            StatusCode::kInvalidArgument);
}

// --- DeltaLog --------------------------------------------------------------

MutationBatch TextBatch(graph::NodeId node, const std::string& text) {
  MutationBatch batch;
  batch.mutations.push_back(Mutation::UpdateNodeText(node, {{"title", text}}));
  return batch;
}

TEST(DeltaLogTest, AppendAssignsMonotoneSequences) {
  TinyWorld world(40);
  DeltaLog log(world.schema());
  auto s1 = log.Append(TextBatch(0, "one"));
  auto s2 = log.Append(TextBatch(1, "two"));
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s1, 1u);
  EXPECT_EQ(*s2, 2u);
  const DeltaLog::Stats stats = log.stats();
  EXPECT_EQ(stats.appended, 2u);
  EXPECT_EQ(stats.queued, 2u);
  EXPECT_EQ(stats.next_sequence, 3u);
}

TEST(DeltaLogTest, AppendValidatesStatically) {
  TinyWorld world(40);
  DeltaLog log(world.schema());
  MutationBatch bad;
  bad.mutations.push_back(
      Mutation::AddNode(static_cast<graph::TypeId>(9999), {}));
  EXPECT_EQ(log.Append(std::move(bad)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(log.stats().rejected, 1u);
  EXPECT_EQ(log.stats().queued, 0u);
}

TEST(DeltaLogTest, FullLogShedsWithUnavailable) {
  TinyWorld world(40);
  DeltaLog::Options options;
  options.capacity = 2;
  DeltaLog log(world.schema(), options);
  ASSERT_TRUE(log.Append(TextBatch(0, "a")).ok());
  ASSERT_TRUE(log.Append(TextBatch(0, "b")).ok());
  EXPECT_EQ(log.Append(TextBatch(0, "c")).status().code(),
            StatusCode::kUnavailable);
  // Draining frees capacity again.
  EXPECT_EQ(log.Drain(1).size(), 1u);
  EXPECT_TRUE(log.Append(TextBatch(0, "c")).ok());
}

TEST(DeltaLogTest, CloseRejectsAppendsButDrainsQueued) {
  TinyWorld world(40);
  DeltaLog log(world.schema());
  ASSERT_TRUE(log.Append(TextBatch(0, "queued")).ok());
  log.Close();
  EXPECT_EQ(log.Append(TextBatch(0, "late")).status().code(),
            StatusCode::kFailedPrecondition);
  std::vector<DeltaLog::PendingBatch> drained = log.Drain(8);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].sequence, 1u);
  // Closed and fully drained: the empty result is the terminal signal.
  EXPECT_TRUE(log.Drain(8).empty());
}

TEST(DeltaLogTest, DrainBlocksUntilAppend) {
  TinyWorld world(40);
  DeltaLog log(world.schema());
  std::atomic<bool> drained{false};
  std::thread consumer([&] {
    std::vector<DeltaLog::PendingBatch> got = log.Drain(8);
    EXPECT_EQ(got.size(), 1u);
    drained.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(drained.load());
  ASSERT_TRUE(log.Append(TextBatch(0, "wake")).ok());
  consumer.join();
  EXPECT_TRUE(drained.load());
}

// --- EpochManager ----------------------------------------------------------

TEST(EpochManagerTest, CountsPublishAndReclaim) {
  TinyWorld world(40);
  EpochManager epochs;
  auto tracked = epochs.Publish(world.Snapshot());
  EXPECT_EQ(epochs.published(), 1u);
  EXPECT_EQ(epochs.reclaimed(), 0u);
  EXPECT_EQ(epochs.live(), 1u);

  auto reader = tracked;  // a pinned reader
  tracked.reset();
  EXPECT_EQ(epochs.reclaimed(), 0u);  // reader still holds the epoch
  reader.reset();
  EXPECT_EQ(epochs.reclaimed(), 1u);
  EXPECT_EQ(epochs.live(), 0u);
}

TEST(EpochManagerTest, WaitForReclaimUnderBlocksUntilRelease) {
  TinyWorld world(40);
  EpochManager epochs;
  auto a = epochs.Publish(world.Snapshot());
  auto b = epochs.Publish(world.Snapshot());
  EXPECT_FALSE(epochs.WaitForReclaimUnder(2, 0.05));
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    a.reset();
  });
  EXPECT_TRUE(epochs.WaitForReclaimUnder(2, 5.0));
  releaser.join();
  b.reset();
  EXPECT_EQ(epochs.reclaimed(), 2u);
}

TEST(EpochManagerTest, ReclaimAfterManagerDestructionIsSafe) {
  TinyWorld world(40);
  std::shared_ptr<const serve::ServeSnapshot> survivor;
  {
    EpochManager epochs;
    survivor = epochs.Publish(world.Snapshot());
  }
  // The manager is gone; dropping the last reference must not touch
  // freed state (the deleter shares the counter block).
  survivor.reset();
}

// --- SnapshotBuilder end to end --------------------------------------------

serve::ServeRequest MakeRequest(const std::string& query_text) {
  serve::ServeRequest request;
  request.query = text::QueryVector(text::ParseQuery(query_text));
  return request;
}

TEST(SnapshotBuilderTest, AcknowledgedWriteBecomesSearchable) {
  TinyWorld world(60);
  auto seed = world.Snapshot();
  serve::SearchService service(seed, {});
  DeltaLog log(world.schema());
  EpochManager epochs;
  SnapshotBuilder builder(&service, &log, &epochs, seed);
  builder.Start();

  // The unique term is absent before the write...
  auto before = service.Submit(MakeRequest("zyzzyvaquery")).get();
  EXPECT_FALSE(before.ok());

  const graph::NodeId new_node =
      static_cast<graph::NodeId>(world.data().num_nodes());
  MutationBatch batch;
  batch.mutations.push_back(Mutation::AddNode(
      world.types().paper, {{"title", "zyzzyvaquery systems"}}));
  batch.mutations.push_back(Mutation::AddEdge(
      new_node, world.FirstOfType(world.types().paper),
      world.types().cites));
  auto sequence = log.Append(std::move(batch));
  ASSERT_TRUE(sequence.ok());
  ASSERT_TRUE(builder.WaitForSequence(*sequence, 30.0));

  // ...and lands in the hot-swapped snapshot afterwards.
  EXPECT_GE(service.snapshot_version(), 2u);
  auto after = service.Submit(MakeRequest("zyzzyvaquery")).get();
  ASSERT_TRUE(after.ok()) << after.status();
  ASSERT_FALSE(after->result.top.empty());
  EXPECT_EQ(after->result.top.front().node, new_node);

  builder.Stop();
  const SnapshotBuilder::Stats stats = builder.stats();
  EXPECT_EQ(stats.batches_applied, 1u);
  EXPECT_EQ(stats.mutations_applied, 2u);
  EXPECT_GE(stats.publications, 1u);
  EXPECT_GE(stats.corpus_rebuilds, 1u);
  EXPECT_EQ(stats.applied_sequence, *sequence);
  EXPECT_GE(epochs.published(), 1u);
}

TEST(SnapshotBuilderTest, ApplyTimeRejectionAdvancesSequence) {
  TinyWorld world(60);
  auto seed = world.Snapshot();
  serve::SearchService service(seed, {});
  DeltaLog log(world.schema());
  EpochManager epochs;
  SnapshotBuilder builder(&service, &log, &epochs, seed);
  builder.Start();

  // Statically fine, but the edge already exists: rejected at apply.
  ASSERT_FALSE(world.data().edges().empty());
  const graph::DataEdge existing = world.data().edges().front();
  MutationBatch duplicate;
  duplicate.mutations.push_back(
      Mutation::AddEdge(existing.from, existing.to, existing.type));
  auto sequence = log.Append(std::move(duplicate));
  ASSERT_TRUE(sequence.ok());
  ASSERT_TRUE(builder.WaitForSequence(*sequence, 30.0));

  builder.Stop();
  const SnapshotBuilder::Stats stats = builder.stats();
  EXPECT_EQ(stats.batches_applied, 0u);
  EXPECT_EQ(stats.batches_rejected, 1u);
  EXPECT_EQ(stats.applied_sequence, *sequence);
  EXPECT_FALSE(stats.last_reject.empty());
}

TEST(SnapshotBuilderTest, StopDrainsEveryAcknowledgedBatch) {
  TinyWorld world(60);
  auto seed = world.Snapshot();
  serve::SearchService service(seed, {});
  DeltaLog log(world.schema());
  EpochManager epochs;
  SnapshotBuilder builder(&service, &log, &epochs, seed);
  builder.Start();

  const graph::NodeId paper = world.FirstOfType(world.types().paper);
  uint64_t last = 0;
  for (int i = 0; i < 20; ++i) {
    auto sequence =
        log.Append(TextBatch(paper, "revision " + std::to_string(i)));
    ASSERT_TRUE(sequence.ok());
    last = *sequence;
  }
  builder.Stop();  // must drain all 20, not abandon the queue
  const SnapshotBuilder::Stats stats = builder.stats();
  EXPECT_EQ(stats.applied_sequence, last);
  EXPECT_EQ(stats.batches_applied, 20u);
  EXPECT_EQ(log.stats().queued, 0u);
  // Post-drain, the service serves the final revision.
  auto response = service.Submit(MakeRequest("revision")).get();
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_FALSE(response->result.top.empty());
  EXPECT_EQ(response->result.top.front().node, paper);
}

}  // namespace
}  // namespace orx::mutate
