#include "io/graph_tsv.h"

#include <gtest/gtest.h>

#include "core/searcher.h"
#include "datasets/bio_generator.h"
#include "datasets/figure1.h"
#include "graph/conformance.h"
#include "text/query.h"

namespace orx::io {
namespace {

constexpr const char* kTinyTsv = R"(# orx-graph-tsv v1
D	hand-written
S	Paper
S	Author
E	Paper	Paper	cites
E	Paper	Author	by
N	p1	Paper	Title=Data Cube	Year=1996
N	p2	Paper	Title=Range Queries in OLAP
N	a1	Author	Name=R. Agrawal
L	p2	p1	cites
L	p2	a1	by
)";

TEST(GraphTsvParseTest, ParsesHandWrittenFile) {
  auto dataset = ParseGraphTsv(kTinyTsv);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->name(), "hand-written");
  EXPECT_EQ(dataset->data().num_nodes(), 3u);
  EXPECT_EQ(dataset->data().num_edges(), 2u);
  EXPECT_TRUE(dataset->finalized());
  EXPECT_TRUE(
      graph::CheckConformance(dataset->data(), dataset->schema()).ok());
  // Attribute values with spaces survive.
  EXPECT_EQ(dataset->data().AttributeValue(1, "Title"),
            "Range Queries in OLAP");
}

TEST(GraphTsvParseTest, EmptyInputYieldsEmptyDataset) {
  auto dataset = ParseGraphTsv("# nothing here\n");
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->data().num_nodes(), 0u);
}

TEST(GraphTsvParseTest, MalformedInputsFail) {
  struct Case {
    const char* text;
    const char* what;
  };
  for (const Case& c : {
           Case{"X\tweird\n", "unknown tag"},
           Case{"N\tk1\tGhost\n", "undeclared type"},
           Case{"S\tPaper\nN\tk1\tPaper\nN\tk1\tPaper\n", "duplicate key"},
           Case{"S\tPaper\nE\tPaper\tPaper\tcites\nN\tk1\tPaper\n"
                "L\tk1\tmissing\tcites\n",
                "dangling key"},
           Case{"S\tPaper\nN\tk1\tPaper\tnoequalsign\n", "bad attribute"},
           Case{"S\tPaper\nN\tk1\tPaper\nS\tAuthor\n",
                "schema after nodes"},
           Case{"S\tPaper\nE\tPaper\tGhost\tcites\n", "unknown endpoint"},
           Case{"L\ta\tb\tcites\n", "edge before nodes"},
           Case{"S\tPaper\nE\tPaper\tPaper\tcites\nN\tk1\tPaper\n"
                "N\tk2\tPaper\nL\tk1\tk2\tghostrole\n",
                "unknown role"},
       }) {
    auto result = ParseGraphTsv(c.text);
    EXPECT_FALSE(result.ok()) << c.what;
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss) << c.what;
  }
}

TEST(GraphTsvRoundTripTest, Figure1SurvivesAndRanksIdentically) {
  datasets::Figure1Dataset fig = datasets::MakeFigure1Dataset();
  const std::string tsv = WriteGraphTsv(fig.dataset);
  auto loaded = ParseGraphTsv(tsv);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->data().num_nodes(), 7u);
  ASSERT_EQ(loaded->data().num_edges(), 9u);

  auto types = datasets::DblpTypesFromSchema(loaded->schema());
  ASSERT_TRUE(types.ok());
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(loaded->schema(), *types);
  core::Searcher searcher(loaded->data(), loaded->authority(),
                          loaded->corpus());
  text::QueryVector query(text::ParseQuery("olap"));
  auto result = searcher.Search(query, rates);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->scores[fig.v7_data_cube], 0.083, 0.001);

  // Round-trip is textually stable after one pass (keys normalize to
  // n<id> on the first write).
  EXPECT_EQ(WriteGraphTsv(*loaded), tsv);
}

TEST(GraphTsvRoundTripTest, BioDatasetRoundTrips) {
  datasets::BioDataset bio = datasets::GenerateBio(
      datasets::BioGeneratorConfig::Tiny(/*pubs=*/150, /*seed=*/23));
  auto loaded = ParseGraphTsv(WriteGraphTsv(bio.dataset));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->data().num_nodes(), bio.dataset.data().num_nodes());
  EXPECT_EQ(loaded->data().num_edges(), bio.dataset.data().num_edges());
  EXPECT_TRUE(datasets::BioTypesFromSchema(loaded->schema()).ok());
}

TEST(GraphTsvFileTest, SaveAndLoad) {
  datasets::Figure1Dataset fig = datasets::MakeFigure1Dataset();
  const std::string path = ::testing::TempDir() + "/orx_graph.tsv";
  ASSERT_TRUE(SaveGraphTsv(fig.dataset, path).ok());
  auto loaded = LoadGraphTsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->data().num_nodes(), 7u);
  EXPECT_EQ(LoadGraphTsv("/nonexistent/x.tsv").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace orx::io
