#include "core/searcher.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "datasets/dblp_generator.h"
#include "datasets/figure1.h"
#include "text/query.h"

namespace orx::core {
namespace {

class SearcherFigure1Test : public ::testing::Test {
 protected:
  SearcherFigure1Test()
      : fig_(datasets::MakeFigure1Dataset()),
        rates_(datasets::DblpGroundTruthRates(fig_.dataset.schema(),
                                              fig_.types)),
        searcher_(fig_.dataset.data(), fig_.dataset.authority(),
                  fig_.dataset.corpus()) {}

  datasets::Figure1Dataset fig_;
  graph::TransferRates rates_;
  Searcher searcher_;
};

TEST_F(SearcherFigure1Test, TopResultIsDataCube) {
  text::QueryVector q(text::ParseQuery("olap"));
  auto result = searcher_.Search(q, rates_);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->top.empty());
  EXPECT_EQ(result->top[0].node, fig_.v7_data_cube);
  EXPECT_EQ(result->base_set_size, 2u);
  EXPECT_TRUE(result->converged);
  EXPECT_GT(result->iterations, 0);
}

TEST_F(SearcherFigure1Test, ResultTypeFilter) {
  text::QueryVector q(text::ParseQuery("olap"));
  SearchOptions options;
  options.result_type = fig_.types.author;
  auto result = searcher_.Search(q, rates_, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->top.size(), 1u);
  EXPECT_EQ(result->top[0].node, fig_.v6_agrawal);
}

TEST_F(SearcherFigure1Test, EmptyQueryIsInvalid) {
  text::QueryVector q;
  EXPECT_EQ(searcher_.Search(q, rates_).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SearcherFigure1Test, UnknownKeywordIsNotFound) {
  text::QueryVector q(text::ParseQuery("doesnotappear"));
  EXPECT_EQ(searcher_.Search(q, rates_).status().code(),
            StatusCode::kNotFound);
}

TEST_F(SearcherFigure1Test, BaselineModeRanksPapers) {
  text::QueryVector q(text::ParseQuery("olap"));
  SearchOptions options;
  options.mode = RankMode::kObjectRankBaseline;
  auto result = searcher_.Search(q, rates_, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->top.empty());
  // The baseline also ranks "Data Cube" first on this graph.
  EXPECT_EQ(result->top[0].node, fig_.v7_data_cube);
}

TEST_F(SearcherFigure1Test, BaselineMultiKeywordProductSemantics) {
  // [olap, multidimensional]: only nodes reachable from both keywords'
  // base sets keep a nonzero product score.
  text::QueryVector q(text::ParseQuery("olap multidimensional"));
  SearchOptions options;
  options.mode = RankMode::kObjectRankBaseline;
  auto result = searcher_.Search(q, rates_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->scores[fig_.v7_data_cube], 0.0);
  // v2 (conference) receives authority from both sides too — just check
  // the product semantics kept the vector finite and non-negative.
  for (double s : result->scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_TRUE(std::isfinite(s));
  }
}

TEST_F(SearcherFigure1Test, OutOfRangeOptionsAreInvalid) {
  text::QueryVector q(text::ParseQuery("olap"));
  auto expect_invalid = [&](const SearchOptions& options) {
    auto result = searcher_.Search(q, rates_, options);
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << result.status();
  };
  SearchOptions options;
  options.k = 0;
  expect_invalid(options);

  options = SearchOptions();
  options.objectrank.damping = 1.5;
  expect_invalid(options);
  options.objectrank.damping = 1.0;  // boundary: the iteration never mixes
  expect_invalid(options);           // the base set back in
  options.objectrank.damping = -0.1;
  expect_invalid(options);
  options.objectrank.damping = std::nan("");
  expect_invalid(options);

  options = SearchOptions();
  options.objectrank.epsilon = 0.0;
  expect_invalid(options);
  options.objectrank.epsilon = -1.0;
  expect_invalid(options);
  options.objectrank.epsilon = std::nan("");
  expect_invalid(options);

  options = SearchOptions();
  options.objectrank.max_iterations = -1;
  expect_invalid(options);

  // The boundary values the experiments actually use stay accepted.
  options = SearchOptions();
  options.objectrank.damping = 0.0;
  options.objectrank.max_iterations = 0;
  EXPECT_TRUE(searcher_.Search(q, rates_, options).ok());
}

TEST_F(SearcherFigure1Test, CancellationSurfacesDeadlineExceeded) {
  text::QueryVector q(text::ParseQuery("olap"));
  SearchOptions options;
  options.objectrank.cancel = [] { return true; };  // trip immediately
  auto result = searcher_.Search(q, rates_, options);
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // The partial iterate must not leak into the session's warm-start
  // state.
  EXPECT_EQ(searcher_.previous_scores(), nullptr);

  // The session works normally once the hook stops firing.
  options.objectrank.cancel = nullptr;
  EXPECT_TRUE(searcher_.Search(q, rates_, options).ok());
  EXPECT_NE(searcher_.previous_scores(), nullptr);
}

TEST_F(SearcherFigure1Test, BaselineModeHonorsCancellation) {
  text::QueryVector q(text::ParseQuery("olap multidimensional"));
  SearchOptions options;
  options.mode = RankMode::kObjectRankBaseline;
  // Let the first per-keyword run finish, then cancel the second.
  auto calls = std::make_shared<int>(0);
  int first_run_iterations = 0;
  {
    SearchOptions probe;
    probe.mode = RankMode::kObjectRankBaseline;
    text::QueryVector single(text::ParseQuery("olap"));
    auto result = searcher_.Search(single, rates_, probe);
    ASSERT_TRUE(result.ok());
    first_run_iterations = result->iterations;
    searcher_.ResetSession();
  }
  options.objectrank.cancel = [calls, first_run_iterations] {
    return ++*calls > first_run_iterations;
  };
  auto result = searcher_.Search(q, rates_, options);
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(SearcherWarmStartTest, WarmStartReducesIterations) {
  datasets::DblpDataset dblp = datasets::GenerateDblp(
      datasets::DblpGeneratorConfig::Tiny(/*papers=*/800, /*seed=*/5));
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  Searcher searcher(dblp.dataset.data(), dblp.dataset.authority(),
                    dblp.dataset.corpus());

  text::QueryVector q(text::ParseQuery("data"));
  SearchOptions options;
  options.objectrank.epsilon = 1e-6;
  auto cold = searcher.Search(q, rates, options);
  ASSERT_TRUE(cold.ok());
  // Re-running the identical query warm-started from its own fixpoint
  // must converge in far fewer iterations (Section 6.2's optimization).
  auto warm = searcher.Search(q, rates, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_LT(warm->iterations, cold->iterations);

  searcher.ResetSession();
  auto cold_again = searcher.Search(q, rates, options);
  ASSERT_TRUE(cold_again.ok());
  EXPECT_EQ(cold_again->iterations, cold->iterations);
}

TEST(SearcherWarmStartTest, GlobalSeedHelpsFirstQuery) {
  datasets::DblpDataset dblp = datasets::GenerateDblp(
      datasets::DblpGeneratorConfig::Tiny(/*papers=*/800, /*seed=*/6));
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);

  text::QueryVector q(text::ParseQuery("data"));
  SearchOptions options;
  options.objectrank.epsilon = 1e-6;

  Searcher unseeded(dblp.dataset.data(), dblp.dataset.authority(),
                    dblp.dataset.corpus());
  auto cold = unseeded.Search(q, rates, options);
  ASSERT_TRUE(cold.ok());

  Searcher seeded(dblp.dataset.data(), dblp.dataset.authority(),
                  dblp.dataset.corpus());
  seeded.PrecomputeGlobalRank(rates, options.objectrank);
  auto warm = seeded.Search(q, rates, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_LE(warm->iterations, cold->iterations);
  // Same fixpoint either way.
  for (size_t v = 0; v < cold->scores.size(); ++v) {
    EXPECT_NEAR(cold->scores[v], warm->scores[v], 1e-4);
  }
}

}  // namespace
}  // namespace orx::core
