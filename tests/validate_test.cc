#include "graph/validate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/rank_cache.h"
#include "datasets/figure1.h"
#include "graph/spmv_layout.h"
#include "graph/transfer_rates.h"

namespace orx::core {

// Test-only backdoor for forging invalid internal states that the public
// API cannot produce (mirrors the peer in rank_cache_test.cc; each test
// binary carries its own copy).
struct RankCacheTestPeer {
  static void AppendScore(RankCache& cache, const std::string& term) {
    cache.entries_.at(term).scores.mut().push_back(0.0f);
  }
  static void SetMass(RankCache& cache, const std::string& term, double mass) {
    cache.entries_.at(term).mass = mass;
  }
  static void SetScore(RankCache& cache, const std::string& term, size_t node,
                       float value) {
    cache.entries_.at(term).scores.mut()[node] = value;
  }
};

}  // namespace orx::core

namespace orx::graph {
namespace {

constexpr size_t kNoRateBound = static_cast<size_t>(-1);

class ValidateTest : public ::testing::Test {
 protected:
  ValidateTest() : fig_(datasets::MakeFigure1Dataset()) {}

  const AuthorityGraph& authority() const {
    return fig_.dataset.authority();
  }

  datasets::Figure1Dataset fig_;
};

TEST_F(ValidateTest, WellFormedGraphPasses) {
  EXPECT_TRUE(ValidateInvariants(authority()).ok());
  // And under the true rate-slot bound of its schema.
  EXPECT_TRUE(ValidateInvariants(authority(),
                                 fig_.dataset.schema().num_rate_slots())
                  .ok());
}

TEST_F(ValidateTest, CsrRejectsOutOfRangeColumn) {
  const AuthorityGraph& g = authority();
  std::vector<AuthorityEdge> edges(g.out_edges().begin(),
                                   g.out_edges().end());
  ASSERT_FALSE(edges.empty());
  edges[2].target = static_cast<NodeId>(g.num_nodes());  // one past the end
  Status status = ValidateCsr(g.out_offsets(), edges, g.num_nodes(),
                              kNoRateBound, "out-adjacency");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("out of range"), std::string::npos)
      << status.ToString();
}

TEST_F(ValidateTest, CsrRejectsNonMonotoneOffsets) {
  const AuthorityGraph& g = authority();
  std::vector<uint64_t> offsets(g.out_offsets().begin(),
                                g.out_offsets().end());
  ASSERT_GE(offsets.size(), 3u);
  offsets[1] = offsets[2] + 1;  // row 1 now "ends" before it begins
  Status status = ValidateCsr(offsets, g.out_edges(), g.num_nodes(),
                              kNoRateBound, "out-adjacency");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("monotone"), std::string::npos)
      << status.ToString();
}

TEST_F(ValidateTest, CsrRejectsBadNormalizationAndRateIndex) {
  const AuthorityGraph& g = authority();
  {
    std::vector<AuthorityEdge> edges(g.out_edges().begin(),
                                     g.out_edges().end());
    edges[0].inv_out_deg = 0.0f;  // 1/deg can never be zero
    EXPECT_FALSE(ValidateCsr(g.out_offsets(), edges, g.num_nodes(),
                             kNoRateBound, "out-adjacency")
                     .ok());
    edges[0].inv_out_deg = std::numeric_limits<float>::quiet_NaN();
    EXPECT_FALSE(ValidateCsr(g.out_offsets(), edges, g.num_nodes(),
                             kNoRateBound, "out-adjacency")
                     .ok());
  }
  {
    std::vector<AuthorityEdge> edges(g.out_edges().begin(),
                                     g.out_edges().end());
    edges[0].rate_index = 10'000;
    Status status =
        ValidateCsr(g.out_offsets(), edges, g.num_nodes(),
                    fig_.dataset.schema().num_rate_slots(), "out-adjacency");
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("rate_index"), std::string::npos);
  }
}

TEST_F(ValidateTest, CsrRejectsOffsetEdgeCountMismatch) {
  const AuthorityGraph& g = authority();
  std::vector<uint64_t> offsets(g.out_offsets().begin(),
                                g.out_offsets().end());
  offsets.back() += 8;  // claims edges the array does not hold
  EXPECT_FALSE(ValidateCsr(offsets, g.out_edges(), g.num_nodes(),
                           kNoRateBound, "out-adjacency")
                   .ok());
}

TEST_F(ValidateTest, WellFormedSellPasses) {
  SellStructure sell(authority());
  EXPECT_TRUE(ValidateInvariants(sell).ok());
}

TEST_F(ValidateTest, SellRejectsBadSlicePadding) {
  SellStructure sell(authority());
  // A chunk's slot count must be a multiple of kChunkRows; growing the
  // final cumulative offset by a non-multiple breaks exactly that.
  sell.chunk_offsets.mut().back() += 3;
  Status status = ValidateInvariants(sell);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("multiple"), std::string::npos)
      << status.ToString();
}

TEST_F(ValidateTest, SellRejectsNonBijectivePermutation) {
  SellStructure sell(authority());
  ASSERT_GE(sell.num_rows, 2u);
  sell.row_order.mut()[0] = sell.row_order[1];  // two rows claim one node
  Status status = ValidateInvariants(sell);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("bijection"), std::string::npos)
      << status.ToString();
}

TEST_F(ValidateTest, SellRejectsInconsistentSourcesRow) {
  SellStructure sell(authority());
  ASSERT_FALSE(sell.sources_row.empty());
  sell.sources_row.mut()[0] =
      (sell.sources_row[0] + 1) % static_cast<uint32_t>(sell.num_rows);
  EXPECT_FALSE(ValidateInvariants(sell).ok());
}

TEST_F(ValidateTest, WellFormedFusedLayoutPasses) {
  TransferRates rates(fig_.dataset.schema(), 0.3);
  FusedLayout layout(authority(), rates);
  EXPECT_TRUE(ValidateInvariants(layout).ok());
}

}  // namespace
}  // namespace orx::graph

namespace orx::core {
namespace {

class RankCacheValidateTest : public ::testing::Test {
 protected:
  RankCacheValidateTest()
      : fig_(datasets::MakeFigure1Dataset()),
        cache_(RankCache::BuildForTerms(
            fig_.dataset.authority(), fig_.dataset.corpus(),
            graph::TransferRates(fig_.dataset.schema(), 0.3), {"olap"},
            RankCache::Options{})) {}

  datasets::Figure1Dataset fig_;
  RankCache cache_;
};

TEST_F(RankCacheValidateTest, WellFormedCachePasses) {
  ASSERT_TRUE(cache_.Contains("olap"));
  EXPECT_TRUE(cache_.ValidateInvariants().ok());
}

TEST_F(RankCacheValidateTest, RejectsScoreVectorLengthMismatch) {
  RankCacheTestPeer::AppendScore(cache_, "olap");
  Status status = cache_.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("scores"), std::string::npos)
      << status.ToString();
}

TEST_F(RankCacheValidateTest, RejectsNonFiniteMassAndScores) {
  RankCacheTestPeer::SetMass(cache_, "olap",
                             std::numeric_limits<double>::infinity());
  EXPECT_FALSE(cache_.ValidateInvariants().ok());
  RankCacheTestPeer::SetMass(cache_, "olap", 1.0);
  ASSERT_TRUE(cache_.ValidateInvariants().ok());
  RankCacheTestPeer::SetScore(cache_, "olap", 0,
                              std::numeric_limits<float>::quiet_NaN());
  EXPECT_FALSE(cache_.ValidateInvariants().ok());
}

}  // namespace
}  // namespace orx::core
