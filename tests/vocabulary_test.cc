#include "datasets/vocabulary.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace orx::datasets {
namespace {

TEST(VocabularyTest, PoolsAreNonEmptyAndDistinct) {
  EXPECT_GT(CsVocabulary().size(), 200u);
  EXPECT_GT(BioVocabulary().size(), 100u);
  EXPECT_GT(FirstNames().size(), 100u);
  EXPECT_GT(LastNames().size(), 100u);
  EXPECT_GT(ConferenceNames().size(), 20u);
  EXPECT_GT(Locations().size(), 20u);
}

TEST(VocabularyTest, CsTermsAreUniqueAndIndexable) {
  std::unordered_set<std::string> seen;
  for (const std::string& term : CsVocabulary()) {
    EXPECT_TRUE(seen.insert(term).second) << "duplicate: " << term;
    // Every vocabulary term must survive index tokenization unchanged
    // (single lowercase token, not a stopword) so queries can hit it.
    auto tokens = text::TokenizeForIndex(term);
    ASSERT_EQ(tokens.size(), 1u) << term;
    EXPECT_EQ(tokens[0], term);
    EXPECT_FALSE(text::IsStopword(term)) << term;
  }
}

TEST(VocabularyTest, Table2QueryKeywordsPresent) {
  std::unordered_set<std::string> vocab(CsVocabulary().begin(),
                                        CsVocabulary().end());
  for (const char* keyword :
       {"olap", "query", "optimization", "xml", "mining", "proximity",
        "search", "indexing", "ranked"}) {
    EXPECT_TRUE(vocab.count(keyword)) << keyword;
  }
}

TEST(VocabularyTest, BioContainsCancerInMidTail) {
  const auto& bio = BioVocabulary();
  int index = -1;
  for (size_t i = 0; i < bio.size(); ++i) {
    if (bio[i] == "cancer") index = static_cast<int>(i);
  }
  ASSERT_GE(index, 0);
  // DS7cancer's selectivity depends on "cancer" being mid-tail (see the
  // comment in vocabulary.cc): not in the Zipf head, not at the very end.
  EXPECT_GT(index, 20);
  EXPECT_LT(index, 60);
}

TEST(VocabularyTest, ConferencePoolLeadsWithRealVenues) {
  EXPECT_EQ(ConferenceNames()[0], "ICDE");  // the paper's venue first
  std::unordered_set<std::string> names(ConferenceNames().begin(),
                                        ConferenceNames().end());
  EXPECT_TRUE(names.count("SIGMOD"));
  EXPECT_TRUE(names.count("VLDB"));
}

}  // namespace
}  // namespace orx::datasets
