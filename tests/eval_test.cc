#include <gtest/gtest.h>

#include <cmath>

#include "datasets/dblp_generator.h"
#include "eval/metrics.h"
#include "eval/residual_collection.h"
#include "eval/simulated_user.h"
#include "eval/survey.h"
#include "text/query.h"

namespace orx::eval {
namespace {

// ----------------------------------------------------------------------
// Metrics
// ----------------------------------------------------------------------

TEST(MetricsTest, CosineSimilarity) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {1, 0}), 1.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {0, 1}), 0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 1}, {1, 0}), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {1, 1}), 0.0);
  // Scale invariance.
  EXPECT_NEAR(CosineSimilarity({2, 4, 6}, {1, 2, 3}), 1.0, 1e-12);
}

TEST(MetricsTest, Precision) {
  std::unordered_set<graph::NodeId> relevant{1, 3};
  std::vector<core::ScoredNode> results{{1, .9}, {2, .8}, {3, .7}, {4, .6}};
  EXPECT_DOUBLE_EQ(Precision(results, relevant), 0.5);
  EXPECT_DOUBLE_EQ(Precision({}, relevant), 0.0);
}

TEST(MetricsTest, Mean) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

// ----------------------------------------------------------------------
// ResidualCollection
// ----------------------------------------------------------------------

TEST(ResidualCollectionTest, RemovalAffectsTopK) {
  graph::SchemaGraph schema;
  graph::TypeId t = *schema.AddNodeType("Paper");
  graph::DataGraph data(schema);
  for (int i = 0; i < 4; ++i) *data.AddNode(t, {});

  ResidualCollection residual(4);
  std::vector<double> scores{0.4, 0.3, 0.2, 0.1};
  auto top = residual.ResidualTopK(scores, 2, data, std::nullopt);
  EXPECT_EQ(top[0].node, 0u);

  residual.Remove(0);
  EXPECT_TRUE(residual.IsRemoved(0));
  EXPECT_EQ(residual.num_removed(), 1u);
  top = residual.ResidualTopK(scores, 2, data, std::nullopt);
  EXPECT_EQ(top[0].node, 1u);
  EXPECT_EQ(top[1].node, 2u);
}

TEST(ResidualCollectionTest, OutOfRangeRemoveIsSafe) {
  ResidualCollection residual(2);
  residual.Remove(99);
  EXPECT_EQ(residual.num_removed(), 0u);
  EXPECT_FALSE(residual.IsRemoved(99));
}

// ----------------------------------------------------------------------
// SimulatedUser + survey session
// ----------------------------------------------------------------------

class SurveyTest : public ::testing::Test {
 protected:
  SurveyTest()
      : dblp_(datasets::GenerateDblp(
            datasets::DblpGeneratorConfig::Tiny(/*papers=*/1200,
                                                /*seed=*/31))),
        ground_truth_(datasets::DblpGroundTruthRates(dblp_.dataset.schema(),
                                                     dblp_.types)) {}

  SimulatedUser MakeUser(int pool = 20) {
    SimulatedUserOptions options;
    options.relevant_pool = pool;
    options.search.result_type = dblp_.types.paper;
    return SimulatedUser(dblp_.dataset.data(), dblp_.dataset.authority(),
                         dblp_.dataset.corpus(), ground_truth_, options);
  }

  datasets::DblpDataset dblp_;
  graph::TransferRates ground_truth_;
};

TEST_F(SurveyTest, UserJudgesGroundTruthTopAsRelevant) {
  SimulatedUser user = MakeUser(15);
  text::QueryVector q(text::ParseQuery("data"));
  ASSERT_TRUE(user.SetIntent(q));
  EXPECT_GT(user.relevant_set().size(), 0u);
  EXPECT_LE(user.relevant_set().size(), 15u);
  for (graph::NodeId v : user.relevant_set()) {
    EXPECT_TRUE(user.IsRelevant(v));
    EXPECT_EQ(dblp_.dataset.data().NodeType(v), dblp_.types.paper);
  }
}

TEST_F(SurveyTest, KeywordContainmentRestrictsRelevance) {
  SimulatedUserOptions options;
  options.relevant_pool = 15;
  options.require_keyword_containment = true;
  options.search.result_type = dblp_.types.paper;
  SimulatedUser strict(dblp_.dataset.data(), dblp_.dataset.authority(),
                       dblp_.dataset.corpus(), ground_truth_, options);
  text::QueryVector q(text::ParseQuery("mining"));
  ASSERT_TRUE(strict.SetIntent(q));
  auto term = dblp_.dataset.corpus().TermIdOf("mining");
  ASSERT_TRUE(term.has_value());
  for (graph::NodeId v : strict.relevant_set()) {
    EXPECT_TRUE(dblp_.dataset.corpus().DocContains(v, *term))
        << "relevant object " << v << " lacks the keyword";
  }
  // The unrestricted judge accepts keyword-free objects too, so its pool
  // is a superset-or-different set, generally not all keyword-matching.
  SimulatedUser lax = MakeUser(15);
  ASSERT_TRUE(lax.SetIntent(q));
  bool lax_has_keyword_free = false;
  for (graph::NodeId v : lax.relevant_set()) {
    lax_has_keyword_free |= !dblp_.dataset.corpus().DocContains(v, *term);
  }
  EXPECT_TRUE(lax_has_keyword_free);
}

TEST_F(SurveyTest, UserIntentFailsForUnknownKeyword) {
  SimulatedUser user = MakeUser();
  text::QueryVector q(text::ParseQuery("zzznotaword"));
  EXPECT_FALSE(user.SetIntent(q));
  EXPECT_TRUE(user.relevant_set().empty());
}

TEST_F(SurveyTest, SessionRunsAllIterations) {
  SimulatedUser user = MakeUser(25);
  text::QueryVector q(text::ParseQuery("data"));
  ASSERT_TRUE(user.SetIntent(q));

  SurveyConfig config;
  config.feedback_iterations = 3;
  config.search.result_type = dblp_.types.paper;
  config.reform.structure.adjustment = 0.5;
  config.reform.content.expansion = 0.0;

  graph::TransferRates initial =
      datasets::DblpUniformRates(dblp_.dataset.schema(), 0.3);
  SurveyResult result = RunFeedbackSession(
      dblp_.dataset.data(), dblp_.dataset.authority(),
      dblp_.dataset.corpus(), q, initial, user, config);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.iterations.size(), 4u);

  // Precision is a valid fraction everywhere; the search ran each round.
  for (const SurveyIteration& it : result.iterations) {
    EXPECT_GE(it.precision, 0.0);
    EXPECT_LE(it.precision, 1.0);
    EXPECT_GT(it.objectrank_iterations, 0);
    EXPECT_GT(it.base_set_size, 0u);
  }
  // Feedback in round 0 must change the rates used in round 1
  // (structure-only reformulation).
  if (result.iterations[0].feedback_count > 0) {
    EXPECT_NE(result.iterations[1].rates.slots(),
              result.iterations[0].rates.slots());
  }
}

TEST_F(SurveyTest, StructureFeedbackMovesRatesTowardGroundTruth) {
  SimulatedUser user = MakeUser(30);
  text::QueryVector q(text::ParseQuery("mining"));
  ASSERT_TRUE(user.SetIntent(q));

  SurveyConfig config;
  config.feedback_iterations = 3;
  config.max_feedback_objects = 3;
  config.search.result_type = dblp_.types.paper;
  config.reform.structure.adjustment = 0.5;
  config.reform.content.expansion = 0.0;

  graph::TransferRates initial =
      datasets::DblpUniformRates(dblp_.dataset.schema(), 0.3);
  SurveyResult result = RunFeedbackSession(
      dblp_.dataset.data(), dblp_.dataset.authority(),
      dblp_.dataset.corpus(), q, initial, user, config);
  ASSERT_TRUE(result.ok);

  const auto gt_vector =
      datasets::DblpRateVector(ground_truth_, dblp_.types);
  const double initial_cos = CosineSimilarity(
      datasets::DblpRateVector(initial, dblp_.types), gt_vector);
  double best_cos = 0.0;
  for (const SurveyIteration& it : result.iterations) {
    best_cos = std::max(
        best_cos, CosineSimilarity(
                      datasets::DblpRateVector(it.rates, dblp_.types),
                      gt_vector));
  }
  // Training must improve over the uniform start at some iteration
  // (Figure 11's rising phase).
  EXPECT_GT(best_cos, initial_cos - 1e-9);
}

TEST_F(SurveyTest, FailedInitialQueryReturnsNotOk) {
  SimulatedUser user = MakeUser();
  text::QueryVector q(text::ParseQuery("zzznotaword"));
  SurveyConfig config;
  graph::TransferRates initial =
      datasets::DblpUniformRates(dblp_.dataset.schema(), 0.3);
  SurveyResult result = RunFeedbackSession(
      dblp_.dataset.data(), dblp_.dataset.authority(),
      dblp_.dataset.corpus(), q, initial, user, config);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.iterations.empty());
}


TEST_F(SurveyTest, ZeroFeedbackObjectsDisablesLearning) {
  SimulatedUser user = MakeUser(25);
  text::QueryVector q(text::ParseQuery("data"));
  ASSERT_TRUE(user.SetIntent(q));
  SurveyConfig config;
  config.feedback_iterations = 2;
  config.max_feedback_objects = 0;  // the user never marks anything
  config.search.result_type = dblp_.types.paper;
  graph::TransferRates initial =
      datasets::DblpUniformRates(dblp_.dataset.schema(), 0.3);
  SurveyResult result = RunFeedbackSession(
      dblp_.dataset.data(), dblp_.dataset.authority(),
      dblp_.dataset.corpus(), q, initial, user, config);
  ASSERT_TRUE(result.ok);
  // Without feedback the rates never change across iterations.
  for (size_t i = 1; i < result.iterations.size(); ++i) {
    EXPECT_EQ(result.iterations[i].rates.slots(),
              result.iterations[0].rates.slots());
    EXPECT_EQ(result.iterations[i].feedback_count, 0u);
  }
}

TEST_F(SurveyTest, SessionEnforcesRateSumInvariant) {
  // Uniform 0.3 gives Paper an outgoing sum of 1.2; the session must cap
  // it before the first search (ObjectRank2 convergence requirement).
  SimulatedUser user = MakeUser(25);
  text::QueryVector q(text::ParseQuery("data"));
  ASSERT_TRUE(user.SetIntent(q));
  SurveyConfig config;
  config.feedback_iterations = 1;
  config.search.result_type = dblp_.types.paper;
  graph::TransferRates initial =
      datasets::DblpUniformRates(dblp_.dataset.schema(), 0.3);
  SurveyResult result = RunFeedbackSession(
      dblp_.dataset.data(), dblp_.dataset.authority(),
      dblp_.dataset.corpus(), q, initial, user, config);
  ASSERT_TRUE(result.ok);
  const graph::SchemaGraph& schema = dblp_.dataset.schema();
  for (const SurveyIteration& it : result.iterations) {
    for (graph::TypeId t = 0; t < schema.num_node_types(); ++t) {
      EXPECT_LE(it.rates.OutgoingSum(schema, t), 1.0 + 1e-9);
    }
  }
}

TEST(PerturbedRatesTest, PreservesZerosAndInvariants) {
  datasets::DblpTypes types;
  auto schema = datasets::MakeDblpSchema(&types);
  graph::TransferRates gt = datasets::DblpGroundTruthRates(*schema, types);
  Rng rng(9);
  graph::TransferRates noisy = PerturbedRates(*schema, gt, 0.3, rng);
  // PF stays exactly zero; every slot stays in [0, 1]; per-type sums <= 1.
  EXPECT_DOUBLE_EQ(
      noisy.Get(types.cites, graph::Direction::kBackward), 0.0);
  for (uint32_t s = 0; s < noisy.num_slots(); ++s) {
    EXPECT_GE(noisy.slot(s), 0.0);
    EXPECT_LE(noisy.slot(s), 1.0);
  }
  for (graph::TypeId t = 0; t < schema->num_node_types(); ++t) {
    EXPECT_LE(noisy.OutgoingSum(*schema, t), 1.0 + 1e-9);
  }
  // And it actually differs from the ground truth.
  EXPECT_NE(noisy.slots(), gt.slots());
  EXPECT_NE(noisy.Fingerprint(), gt.Fingerprint());
}

}  // namespace
}  // namespace orx::eval
