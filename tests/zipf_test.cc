#include "datasets/zipf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace orx::datasets {
namespace {

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfSampler zipf(100, 1.0);
  double sum = 0.0;
  for (size_t k = 0; k < zipf.size(); ++k) sum += zipf.Probability(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, ProbabilitiesAreMonotoneDecreasing) {
  ZipfSampler zipf(50, 1.2);
  for (size_t k = 1; k < zipf.size(); ++k) {
    EXPECT_LE(zipf.Probability(k), zipf.Probability(k - 1) + 1e-12);
  }
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (size_t k = 0; k < zipf.size(); ++k) {
    EXPECT_NEAR(zipf.Probability(k), 0.1, 1e-9);
  }
}

TEST(ZipfTest, ZipfRatioMatchesExponent) {
  ZipfSampler zipf(1000, 1.0);
  // P(0)/P(1) == 2 for s=1.
  EXPECT_NEAR(zipf.Probability(0) / zipf.Probability(1), 2.0, 1e-9);
}

TEST(ZipfTest, SamplesStayInRangeAndSkew) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(42);
  std::vector<int> counts(100, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    size_t k = zipf.Sample(rng);
    ASSERT_LT(k, 100u);
    ++counts[k];
  }
  // Empirical frequency of rank 0 close to its probability.
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, zipf.Probability(0), 0.01);
  // Head dominates tail.
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(ZipfTest, SingleElement) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(1);
  EXPECT_EQ(zipf.Sample(rng), 0u);
  EXPECT_NEAR(zipf.Probability(0), 1.0, 1e-12);
}

}  // namespace
}  // namespace orx::datasets
