// Robustness sweeps over the parsers/deserializers: byte mutations and
// exhaustive truncations of valid inputs must produce a clean Status (or
// a successful parse), never a crash, hang, or runaway allocation.

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "core/rank_cache.h"
#include "datasets/dblp_generator.h"
#include "datasets/dblp_xml.h"
#include "datasets/figure1.h"
#include "io/dataset_io.h"
#include "io/graph_tsv.h"

namespace orx {
namespace {

// Valid inputs to mutate.
std::string ValidXml() {
  datasets::DblpDataset dblp =
      datasets::GenerateDblp(datasets::DblpGeneratorConfig::Tiny(40, 3));
  return datasets::WriteDblpXml(dblp.dataset.data(), dblp.types);
}

std::string ValidTsv() {
  datasets::Figure1Dataset fig = datasets::MakeFigure1Dataset();
  return io::WriteGraphTsv(fig.dataset);
}

std::string ValidBinary() {
  datasets::Figure1Dataset fig = datasets::MakeFigure1Dataset();
  std::stringstream stream;
  EXPECT_TRUE(io::SerializeDataset(fig.dataset, stream).ok());
  return stream.str();
}

std::string ValidCache() {
  datasets::Figure1Dataset fig = datasets::MakeFigure1Dataset();
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(fig.dataset.schema(), fig.types);
  core::RankCache cache = core::RankCache::BuildForTerms(
      fig.dataset.authority(), fig.dataset.corpus(), rates, {"olap"},
      core::RankCache::Options{});
  std::stringstream stream;
  EXPECT_TRUE(cache.Serialize(stream).ok());
  return stream.str();
}

// Applies `parse` to `rounds` mutated copies of `valid`; the only
// requirement is no crash (the parse may succeed or fail cleanly).
template <typename ParseFn>
void MutationSweep(const std::string& valid, ParseFn parse, int rounds,
                   uint64_t seed) {
  Rng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    std::string mutated = valid;
    const int mutations = 1 + static_cast<int>(rng.UniformInt(uint64_t{4}));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.UniformInt(mutated.size());
      mutated[pos] = static_cast<char>(rng.UniformInt(uint64_t{256}));
    }
    parse(mutated);  // must not crash
  }
  SUCCEED();
}

// Applies `parse` to every truncation of `valid` (stride > 1 for long
// inputs to bound runtime).
template <typename ParseFn>
void TruncationSweep(const std::string& valid, ParseFn parse) {
  const size_t stride = std::max<size_t>(1, valid.size() / 400);
  for (size_t cut = 0; cut < valid.size(); cut += stride) {
    parse(valid.substr(0, cut));
  }
  SUCCEED();
}

TEST(RobustnessTest, DblpXmlMutations) {
  const std::string valid = ValidXml();
  auto parse = [](const std::string& input) {
    auto result = datasets::ParseDblpXml(input);
    (void)result;
  };
  MutationSweep(valid, parse, 200, 1);
  TruncationSweep(valid, parse);
}

TEST(RobustnessTest, GraphTsvMutations) {
  const std::string valid = ValidTsv();
  auto parse = [](const std::string& input) {
    auto result = io::ParseGraphTsv(input);
    (void)result;
  };
  MutationSweep(valid, parse, 200, 2);
  TruncationSweep(valid, parse);
}

TEST(RobustnessTest, BinaryDatasetMutations) {
  const std::string valid = ValidBinary();
  auto parse = [](const std::string& input) {
    std::stringstream stream(input);
    auto result = io::DeserializeDataset(stream);
    (void)result;
  };
  MutationSweep(valid, parse, 200, 3);
  TruncationSweep(valid, parse);
}

TEST(RobustnessTest, RankCacheMutations) {
  const std::string valid = ValidCache();
  auto parse = [](const std::string& input) {
    std::stringstream stream(input);
    auto result = core::RankCache::Deserialize(stream);
    (void)result;
  };
  MutationSweep(valid, parse, 200, 4);
  TruncationSweep(valid, parse);
}

}  // namespace
}  // namespace orx
