// Randomized equivalence suite for the approximate authority-flow tier
// (core/approx.h, docs/approx_tier.md). The contract under test is the
// one every serving response repeats: for every node v,
//     scores[v] <= exact[v] <= scores[v] + linf_bound
// across arbitrary graphs, rates, base sets, and thresholds — and a
// certified top-k set IS the exact top-k set, not an approximation of
// it. The reference comes from the power iteration driven far past its
// production tolerance, so the reference error is negligible against
// every bound checked here.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/approx.h"
#include "core/objectrank.h"
#include "core/rank_cache.h"
#include "core/searcher.h"
#include "core/top_k.h"
#include "datasets/dblp_generator.h"
#include "graph/spmv_layout.h"
#include "text/query.h"

namespace orx::core {
namespace {

// Reference solve: tolerance orders of magnitude below any bound the
// push can report, so the measured-vs-bound comparisons below are about
// the push, not the referee.
constexpr double kReferenceEpsilon = 1e-13;
constexpr double kReferenceSlack = 1e-9;

struct RandomCase {
  datasets::DblpDataset dblp;
  graph::TransferRates rates;
  BaseSet base;
};

BaseSet MakeRandomBase(Rng& rng, size_t n, size_t base_nodes) {
  std::vector<graph::NodeId> nodes;
  while (nodes.size() < std::min(base_nodes, n)) {
    const auto v = static_cast<graph::NodeId>(rng.UniformInt(n));
    if (std::find(nodes.begin(), nodes.end(), v) == nodes.end()) {
      nodes.push_back(v);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  std::vector<double> weights(nodes.size());
  double total = 0.0;
  for (double& w : weights) {
    w = rng.UniformDouble() + 0.01;
    total += w;
  }
  BaseSet base;
  for (size_t i = 0; i < nodes.size(); ++i) {
    base.entries.emplace_back(nodes[i], weights[i] / total);
  }
  return base;
}

RandomCase MakeRandomCase(uint64_t seed) {
  Rng rng(seed * 6364136223846793005ULL + 1442695040888963407ULL);
  const auto papers = static_cast<uint32_t>(30 + rng.UniformInt(120));
  RandomCase c{datasets::GenerateDblp(
                   datasets::DblpGeneratorConfig::Tiny(papers, seed)),
               {}, {}};
  c.rates = graph::TransferRates(c.dblp.dataset.schema(), 0.0);
  for (uint32_t slot = 0; slot < c.rates.num_slots(); ++slot) {
    c.rates.set_slot(slot, rng.UniformDouble());
  }
  c.rates.CapOutgoingSums(c.dblp.dataset.schema());
  const size_t n = c.dblp.dataset.data().num_nodes();
  c.base = MakeRandomBase(rng, n, 1 + rng.UniformInt(6));
  return c;
}

std::vector<double> ReferenceScores(const ObjectRankEngine& engine,
                                    const RandomCase& c) {
  ObjectRankOptions options;
  options.epsilon = kReferenceEpsilon;
  options.max_iterations = 5000;
  return engine.Compute(c.base, c.rates, options).scores;
}

// 200 random (graph, rates, base, threshold) cases: the reported bounds
// must dominate the measured errors, and the estimate must stay
// one-sided, for every case — a single violation is a soundness bug.
TEST(ApproxTierRandomized, BoundDominatesMeasuredErrorOn200RandomGraphs) {
  size_t nontrivial = 0;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    const RandomCase c = MakeRandomCase(seed);
    const ObjectRankEngine engine(c.dblp.dataset.authority());
    const std::vector<double> exact = ReferenceScores(engine, c);

    ApproxOptions options;
    const double thresholds[] = {1e-4, 1e-5, 1e-6, 1e-7};
    options.r_max = thresholds[seed % 4];
    const ApproxResult push =
        engine.ComputeApproximate(c.base, c.rates, options);
    ASSERT_TRUE(push.certified) << "seed " << seed;
    ASSERT_EQ(push.scores.size(), exact.size()) << "seed " << seed;

    double linf = 0.0;
    double l1 = 0.0;
    for (size_t v = 0; v < exact.size(); ++v) {
      const double diff = exact[v] - push.scores[v];
      // One-sided: the push never overshoots the fixpoint.
      EXPECT_GE(diff, -kReferenceSlack)
          << "seed " << seed << " node " << v << " overshoots";
      linf = std::max(linf, diff);
      l1 += std::max(diff, 0.0);
    }
    EXPECT_LE(linf, push.linf_bound + kReferenceSlack)
        << "seed " << seed << ": measured L-inf " << linf
        << " exceeds reported bound " << push.linf_bound;
    EXPECT_LE(l1, push.l1_bound + kReferenceSlack)
        << "seed " << seed << ": measured L1 " << l1
        << " exceeds reported bound " << push.l1_bound;
    if (linf > 0.0) ++nontrivial;
  }
  // The sweep must actually exercise approximation, not 200 exact runs.
  EXPECT_GE(nontrivial, 100u);
}

// Certification is exactness: whenever CertifyTopK accepts a top-k set
// under the reported bound, that set equals the reference top-k set.
TEST(ApproxTierRandomized, CertifiedTopKSetsEqualExactTopKSets) {
  size_t certified_cases = 0;
  for (uint64_t seed = 300; seed < 400; ++seed) {
    const RandomCase c = MakeRandomCase(seed);
    const ObjectRankEngine engine(c.dblp.dataset.authority());
    const std::vector<double> exact = ReferenceScores(engine, c);
    const graph::DataGraph& data = c.dblp.dataset.data();

    ApproxOptions options;
    options.r_max = 1e-9;  // tight run so certification has teeth
    const ApproxResult push =
        engine.ComputeApproximate(c.base, c.rates, options);
    ASSERT_TRUE(push.certified) << "seed " << seed;

    for (const size_t k : {size_t{1}, size_t{5}, size_t{10}}) {
      for (const std::optional<graph::TypeId> type :
           {std::optional<graph::TypeId>{},
            std::optional<graph::TypeId>{c.dblp.types.paper}}) {
        const CertifiedTopK cert =
            CertifyTopK(push.scores, push.linf_bound, k, data, type);
        if (!cert.certified) continue;
        ++certified_cases;
        const std::vector<ScoredNode> truth = TopKOfType(exact, k, data, type);
        ASSERT_EQ(cert.top.size(), truth.size())
            << "seed " << seed << " k " << k;
        std::vector<uint64_t> got, want;
        for (const ScoredNode& s : cert.top) got.push_back(s.node);
        for (const ScoredNode& s : truth) want.push_back(s.node);
        std::sort(got.begin(), got.end());
        std::sort(want.begin(), want.end());
        EXPECT_EQ(got, want) << "seed " << seed << " k " << k
                             << ": certified set differs from exact set";
      }
    }
  }
  // Tight pushes on tiny graphs should certify most of the time; if they
  // never do, the assertion above is vacuous.
  EXPECT_GE(certified_cases, 100u);
}

// Searcher-level tier contract: the approximate tier either returns a
// certified answer (positive bound, exact top-k) or escalates to the
// exact kernel — never an uncertified un-escalated ranking.
TEST(ApproxTierSearcher, ApproximateTierCertifiesOrEscalates) {
  const datasets::DblpDataset dblp =
      datasets::GenerateDblp(datasets::DblpGeneratorConfig::Tiny(300, 7));
  const graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  const text::Corpus& corpus = dblp.dataset.corpus();

  size_t checked = 0;
  for (text::TermId t = 0; t < corpus.vocab_size() && checked < 12; ++t) {
    if (corpus.Df(t) < 2) continue;
    ++checked;
    const text::QueryVector query(
        text::ParseQuery(corpus.TermString(t)));

    Searcher exact_searcher(dblp.dataset.data(), dblp.dataset.authority(),
                            corpus);
    SearchOptions exact_options;
    exact_options.k = 5;
    exact_options.tier = SearchTier::kExact;
    exact_options.objectrank.epsilon = kReferenceEpsilon;
    exact_options.objectrank.max_iterations = 5000;
    const auto exact = exact_searcher.Search(query, rates, exact_options);
    ASSERT_TRUE(exact.ok());

    Searcher searcher(dblp.dataset.data(), dblp.dataset.authority(), corpus);
    SearchOptions options;
    options.k = 5;
    options.tier = SearchTier::kApproximate;
    const auto result = searcher.Search(query, rates, options);
    ASSERT_TRUE(result.ok());
    if (result->escalated) {
      EXPECT_EQ(result->tier_used, SearchTier::kExact);
      continue;
    }
    EXPECT_EQ(result->tier_used, SearchTier::kApproximate);
    EXPECT_TRUE(result->certified);
    EXPECT_GT(result->error_bound, 0.0);
    std::vector<uint64_t> got, want;
    for (const ScoredNode& s : result->top) got.push_back(s.node);
    for (const ScoredNode& s : exact->top) want.push_back(s.node);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "term " << corpus.TermString(t);
  }
  ASSERT_GE(checked, 1u);
}

// Compressed-cache tier: a compressed hit that passes certification
// returns the same top-k set as the dense cache; one that cannot certify
// escalates with the kErrorBudget miss reason instead of serving an
// unproven set.
TEST(ApproxTierSearcher, CompressedCacheHitsCertifyAgainstDense) {
  const datasets::DblpDataset dblp =
      datasets::GenerateDblp(datasets::DblpGeneratorConfig::Tiny(400, 11));
  const graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  const text::Corpus& corpus = dblp.dataset.corpus();

  std::vector<std::string> terms;
  for (text::TermId t = 0; t < corpus.vocab_size() && terms.size() < 12;
       ++t) {
    if (corpus.Df(t) >= 2) terms.push_back(corpus.TermString(t));
  }
  ASSERT_FALSE(terms.empty());

  RankCache::Options cache_options;
  RankCache dense = RankCache::BuildForTerms(
      dblp.dataset.authority(), corpus, rates, terms, cache_options);
  RankCache compressed = RankCache::BuildForTerms(
      dblp.dataset.authority(), corpus, rates, terms, cache_options);
  const RankCache::CompressionStats stats = compressed.Compress();
  EXPECT_GT(stats.terms_compressed + stats.terms_dense, 0u);

  for (const std::string& term : terms) {
    const text::QueryVector query(text::ParseQuery(term));

    Searcher dense_searcher(dblp.dataset.data(), dblp.dataset.authority(),
                            corpus);
    dense_searcher.AttachRankCache(&dense);
    SearchOptions options;
    options.k = 5;
    options.tier = SearchTier::kCached;
    const auto dense_hit = dense_searcher.Search(query, rates, options);
    ASSERT_TRUE(dense_hit.ok());
    ASSERT_TRUE(dense_hit->from_cache);

    Searcher searcher(dblp.dataset.data(), dblp.dataset.authority(), corpus);
    searcher.AttachRankCache(&compressed);
    const auto hit = searcher.Search(query, rates, options);
    ASSERT_TRUE(hit.ok());
    if (!hit->from_cache) {
      // Certification rejected the compressed entry: the miss reason must
      // say so, and the escalated answer is the exact kernel's.
      EXPECT_EQ(hit->cache_miss_reason, CacheMissReason::kErrorBudget);
      EXPECT_TRUE(hit->escalated);
      continue;
    }
    std::vector<uint64_t> got, want;
    for (const ScoredNode& s : hit->top) got.push_back(s.node);
    for (const ScoredNode& s : dense_hit->top) want.push_back(s.node);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "term " << term;
  }
}

// Concurrent tier selection: many threads mixing tiers against a shared
// RankCache and per-thread Searchers over the same graph. The shared
// surfaces (cache queries, fused-weight memoization inside the engines'
// layout cache, certification) must be race-free — this test carries the
// tsan label.
TEST(ApproxTierConcurrent, MixedTiersAreRaceFree) {
  const datasets::DblpDataset dblp =
      datasets::GenerateDblp(datasets::DblpGeneratorConfig::Tiny(300, 23));
  const graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  const text::Corpus& corpus = dblp.dataset.corpus();

  std::vector<std::string> terms;
  for (text::TermId t = 0; t < corpus.vocab_size() && terms.size() < 8;
       ++t) {
    if (corpus.Df(t) >= 2) terms.push_back(corpus.TermString(t));
  }
  ASSERT_FALSE(terms.empty());

  RankCache::Options cache_options;
  RankCache cache = RankCache::BuildForTerms(
      dblp.dataset.authority(), corpus, rates, terms, cache_options);
  const RankCache::CompressionStats stats = cache.Compress();
  (void)stats;

  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 12;
  const SearchTier tiers[] = {SearchTier::kAuto, SearchTier::kExact,
                              SearchTier::kApproximate, SearchTier::kCached};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      Searcher searcher(dblp.dataset.data(), dblp.dataset.authority(),
                        corpus);
      searcher.AttachRankCache(&cache);
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const std::string& term = terms[(w + q) % terms.size()];
        SearchOptions options;
        options.k = 5;
        options.tier = tiers[(w * kQueriesPerThread + q) % 4];
        const auto result = searcher.Search(
            text::QueryVector(text::ParseQuery(term)), rates, options);
        if (!result.ok() || result->top.empty()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace orx::core
