// Randomized equivalence of the incremental ObjectRank recompute: 200+
// random mutation batches stream through the same pipeline the
// SnapshotBuilder runs (apply -> dirty region -> incremental RankCache
// refresh), and every round is checked against ground truth:
//
//  * at the solver level, the warm-started power iteration agrees with a
//    cold solve on the mutated graph to <= 1e-12 L-inf (both at a 1e-14
//    L1 tolerance) while spending no more iterations — the paper's
//    Section 6.2 warm-start claim, quantified;
//  * at the cache level, entries reused verbatim are bit-identical to
//    the previous cache (reuse must be provably safe, not re-derived),
//    and refreshed entries match a cold BuildForTerms of the new graph
//    to float storage precision.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/base_set.h"
#include "core/objectrank.h"
#include "core/rank_cache.h"
#include "datasets/dblp_generator.h"
#include "graph/authority_graph.h"
#include "mutate/incremental.h"
#include "mutate/mutation.h"
#include "text/corpus.h"
#include "text/query.h"

namespace orx::core {

/// Test-only backdoor into the cache's entry table for bit-identity
/// assertions (a friend of RankCache).
struct RankCacheTestPeer {
  static double Mass(const RankCache& cache, const std::string& term) {
    return cache.entries_.at(term).mass;
  }
  static std::span<const float> Scores(const RankCache& cache,
                                       const std::string& term) {
    return cache.entries_.at(term).scores;
  }
};

}  // namespace orx::core

namespace orx::mutate {
namespace {

using core::RankCache;
using core::RankCacheTestPeer;

class MutateEquivalenceTest : public ::testing::Test {
 protected:
  MutateEquivalenceTest()
      : dblp_(datasets::GenerateDblp(
            datasets::DblpGeneratorConfig::Tiny(/*papers=*/120,
                                                /*seed=*/29))),
        rates_(datasets::DblpGroundTruthRates(dblp_.dataset.schema(),
                                              dblp_.types)),
        graph_(dblp_.dataset.data()) {
    // Tight solver tolerance so warm and cold solves are comparable at
    // 1e-12: both iterates end within ~eps of the shared fixpoint.
    options_.objectrank.epsilon = 1e-14;
    options_.objectrank.max_iterations = 400;
    // The term universe stays fixed across mutations: the cache's job is
    // to keep exactly these terms fresh as the graph changes underneath.
    const text::Corpus& corpus = dblp_.dataset.corpus();
    std::vector<std::pair<uint32_t, std::string>> by_df;
    for (text::TermId t = 0; t < corpus.vocab_size(); ++t) {
      by_df.emplace_back(corpus.Df(t), corpus.TermString(t));
    }
    std::sort(by_df.begin(), by_df.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    for (size_t i = 0; i < by_df.size() && df_terms_.size() < 8; ++i) {
      df_terms_.push_back(by_df[i].second);
    }
    terms_ = df_terms_;
    // A hermit paper that no edge ever touches and whose term appears
    // nowhere else: its rank vector is nonzero only at the hermit itself,
    // so edge-only mutation windows elsewhere leave it provably reusable.
    auto hermit = graph_.AddNode(dblp_.types.paper, {{"title", "hermitterm"}});
    hermit_ = *hermit;
    terms_.push_back("hermitterm");
  }

  /// One random mutation against the current graph (always statically
  /// valid; apply-time rejections — duplicate edges and the like — are
  /// part of the exercise). With `edge_only` the mutation is drawn from
  /// the edge kinds alone, so the window keeps corpus stats unchanged.
  /// The hermit node is never picked: no mutation may reach it.
  Mutation RandomMutation(Rng& rng, bool edge_only = false) {
    const auto node_of_type = [&](graph::TypeId type) -> graph::NodeId {
      for (int tries = 0; tries < 64; ++tries) {
        const auto v = static_cast<graph::NodeId>(
            rng.UniformInt(graph_.num_nodes()));
        if (v != hermit_ && graph_.NodeType(v) == type) return v;
      }
      return graph::kInvalidNodeId;
    };
    const std::string text =
        df_terms_[rng.UniformInt(df_terms_.size())] + " " +
        df_terms_[rng.UniformInt(df_terms_.size())] + " edit" +
        std::to_string(rng.UniformInt(1000));
    switch (edge_only ? 2 + rng.UniformInt(2) : rng.UniformInt(5)) {
      case 0:
        return Mutation::AddNode(dblp_.types.paper, {{"title", text}});
      case 1: {
        const graph::NodeId v = node_of_type(dblp_.types.paper);
        if (v == graph::kInvalidNodeId) break;
        return Mutation::UpdateNodeText(v, {{"title", text}});
      }
      case 2: {
        const graph::NodeId a = node_of_type(dblp_.types.paper);
        const graph::NodeId b = node_of_type(dblp_.types.paper);
        if (a == graph::kInvalidNodeId || b == graph::kInvalidNodeId ||
            a == b) {
          break;
        }
        return Mutation::AddEdge(a, b, dblp_.types.cites);
      }
      case 3: {
        if (graph_.edges().empty()) break;
        const graph::DataEdge e =
            graph_.edges()[rng.UniformInt(graph_.edges().size())];
        return Mutation::RemoveEdge(e.from, e.to, e.type);
      }
      default: {
        const graph::NodeId v = node_of_type(dblp_.types.paper);
        if (v != graph::kInvalidNodeId) return Mutation::RemoveNode(v);
        break;
      }
    }
    if (edge_only) {
      // Stats-neutral fallback; a duplicate-edge rejection at apply time
      // is fine, the window must just never touch corpus stats.
      const graph::DataEdge e = graph_.edges().front();
      return Mutation::RemoveEdge(e.from, e.to, e.type);
    }
    return Mutation::AddNode(dblp_.types.paper, {{"title", text}});
  }

  datasets::DblpDataset dblp_;
  graph::TransferRates rates_;
  graph::DataGraph graph_;
  RankCache::Options options_;
  std::vector<std::string> df_terms_;
  std::vector<std::string> terms_;
  graph::NodeId hermit_ = graph::kInvalidNodeId;
};

TEST_F(MutateEquivalenceTest, IncrementalMatchesFullRebuildOver200Batches) {
  ASSERT_GE(terms_.size(), 4u);
  Rng rng(4242);

  graph::AuthorityGraph authority = graph::AuthorityGraph::Build(graph_);
  auto corpus = std::make_shared<text::Corpus>(text::Corpus::Build(graph_));
  RankCache cache = RankCache::BuildForTerms(authority, *corpus, rates_,
                                             terms_, options_);
  // Ground-truth double-precision rank vectors per term, maintained
  // alongside the cache for the warm-start comparisons.
  std::unordered_map<std::string, std::vector<double>> prev_scores;
  {
    core::ObjectRankEngine engine(authority);
    for (const std::string& term : terms_) {
      auto base = core::BuildBaseSet(*corpus,
                                     text::QueryVector(text::ParseQuery(term)),
                                     core::BaseSetMode::kIrWeighted,
                                     options_.bm25);
      ASSERT_TRUE(base.ok()) << base.status();
      prev_scores[term] =
          engine.Compute(*base, rates_, options_.objectrank).scores;
    }
  }

  RankCache::IncrementalOptions iopts;
  iopts.options = options_;

  size_t batches_applied = 0;
  size_t total_reused = 0;
  size_t total_refreshed = 0;
  long long warm_iterations = 0;
  long long cold_iterations = 0;
  int round = 0;
  while (batches_applied < 200) {
    ++round;
    // A window of up to 4 random batches, merged like the builder does.
    // Every fourth window is edge-only so stats-unchanged rounds (the
    // only rounds where verbatim reuse is legal) are actually exercised.
    const bool edge_only = round % 4 == 0;
    ApplyEffects window;
    const size_t batches = 1 + rng.UniformInt(4);
    for (size_t b = 0; b < batches; ++b) {
      MutationBatch batch;
      const size_t count = 1 + rng.UniformInt(3);
      for (size_t m = 0; m < count; ++m) {
        batch.mutations.push_back(RandomMutation(rng, edge_only));
      }
      ApplyEffects effects;
      if (ApplyBatch(graph_, batch, &effects).ok()) {
        MergeEffects(window, std::move(effects));
        ++batches_applied;
      }
    }

    authority = graph::AuthorityGraph::Build(graph_);
    corpus = std::make_shared<text::Corpus>(text::Corpus::Build(graph_));
    const DirtyRegion dirty = ComputeDirtyRegion(window, authority);

    RankCache::IncrementalStats istats;
    RankCache incremental = RankCache::IncrementalBuild(
        cache, authority, *corpus, rates_, terms_, dirty.dirty,
        dirty.stats_changed, iopts, &istats);
    RankCache full = RankCache::BuildForTerms(authority, *corpus, rates_,
                                              terms_, options_);
    total_reused += istats.terms_reused;
    total_refreshed += istats.terms_refreshed;

    core::ObjectRankEngine engine(authority);
    for (const std::string& term : terms_) {
      auto base = core::BuildBaseSet(*corpus,
                                     text::QueryVector(text::ParseQuery(term)),
                                     core::BaseSetMode::kIrWeighted,
                                     options_.bm25);
      ASSERT_TRUE(base.ok()) << term << " round " << round;

      // Solver-level equivalence: cold vs warm-started (previous vector
      // padded to the new node count, exactly what IncrementalBuild
      // feeds the engine).
      const core::ObjectRankResult cold =
          engine.Compute(*base, rates_, options_.objectrank);
      std::vector<double> warm_start = prev_scores[term];
      warm_start.resize(graph_.num_nodes(), 0.0);
      const core::ObjectRankResult warm = engine.Compute(
          *base, rates_, options_.objectrank, &warm_start);
      ASSERT_EQ(cold.scores.size(), warm.scores.size());
      double linf = 0.0;
      for (size_t v = 0; v < cold.scores.size(); ++v) {
        linf = std::max(linf, std::fabs(cold.scores[v] - warm.scores[v]));
      }
      EXPECT_LE(linf, 1e-12) << term << " round " << round;
      EXPECT_LE(warm.iterations, cold.iterations)
          << term << " round " << round;
      warm_iterations += warm.iterations;
      cold_iterations += cold.iterations;
      prev_scores[term] = cold.scores;

      // Cache-level equivalence against the cold full rebuild.
      if (!full.Contains(term)) {
        EXPECT_FALSE(incremental.Contains(term)) << term;
        continue;
      }
      ASSERT_TRUE(incremental.Contains(term)) << term << " round " << round;
      EXPECT_EQ(RankCacheTestPeer::Mass(incremental, term),
                RankCacheTestPeer::Mass(full, term))
          << term << " round " << round;
      const std::span<const float> inc_scores =
          RankCacheTestPeer::Scores(incremental, term);
      const std::span<const float> full_scores =
          RankCacheTestPeer::Scores(full, term);
      ASSERT_EQ(inc_scores.size(), full_scores.size());
      const bool reused =
          !dirty.stats_changed && cache.Contains(term) &&
          cache.num_nodes() == incremental.num_nodes() &&
          !cache.TermTouchesRegion(term, std::span<const uint8_t>(
                                             dirty.dirty));
      for (size_t v = 0; v < inc_scores.size(); ++v) {
        EXPECT_NEAR(inc_scores[v], full_scores[v], 1e-6)
            << term << " node " << v << " round " << round;
      }
      if (reused) {
        // Reused verbatim: bit-identical to the previous cache.
        const std::span<const float> old_scores =
            RankCacheTestPeer::Scores(cache, term);
        ASSERT_EQ(inc_scores.size(), old_scores.size());
        for (size_t v = 0; v < inc_scores.size(); ++v) {
          ASSERT_EQ(inc_scores[v], old_scores[v])
              << term << " node " << v << " round " << round;
        }
      }
    }
    cache = std::move(incremental);
  }

  // The incremental path must be measurably cheaper than recomputing
  // everything: some entries are reused outright, and warm starts save
  // iterations over cold solves in aggregate.
  EXPECT_GT(total_reused, 0u);
  EXPECT_GT(total_refreshed, 0u);
  EXPECT_LT(warm_iterations, cold_iterations)
      << "warm starts saved nothing over " << round << " rounds";
  std::printf(
      "equivalence: %zu batches in %d rounds, %zu terms reused / %zu "
      "refreshed, warm %lld vs cold %lld iterations (%.1f%% saved)\n",
      batches_applied, round, total_reused, total_refreshed, warm_iterations,
      cold_iterations,
      100.0 * static_cast<double>(cold_iterations - warm_iterations) /
          static_cast<double>(cold_iterations));
}

TEST_F(MutateEquivalenceTest, MassiveDirtyRegionFallsBackToFullRebuild) {
  graph::AuthorityGraph authority = graph::AuthorityGraph::Build(graph_);
  auto corpus = std::make_shared<text::Corpus>(text::Corpus::Build(graph_));
  RankCache cache = RankCache::BuildForTerms(authority, *corpus, rates_,
                                             terms_, options_);

  // Touch well over half the graph in one window.
  ApplyEffects window;
  MutationBatch batch;
  for (graph::NodeId v = 0;
       v < static_cast<graph::NodeId>(graph_.num_nodes()); ++v) {
    if (graph_.NodeType(v) != dblp_.types.paper) continue;
    batch.mutations.push_back(Mutation::UpdateNodeText(
        v, {{"title", terms_[v % terms_.size()] + " rewrite"}}));
  }
  ApplyEffects effects;
  ASSERT_TRUE(ApplyBatch(graph_, batch, &effects).ok());
  MergeEffects(window, std::move(effects));

  authority = graph::AuthorityGraph::Build(graph_);
  corpus = std::make_shared<text::Corpus>(text::Corpus::Build(graph_));
  const DirtyRegion dirty = ComputeDirtyRegion(window, authority);
  ASSERT_GT(dirty.Fraction(), 0.5);

  RankCache::IncrementalOptions iopts;
  iopts.options = options_;
  RankCache::IncrementalStats istats;
  RankCache incremental = RankCache::IncrementalBuild(
      cache, authority, *corpus, rates_, terms_, dirty.dirty,
      dirty.stats_changed, iopts, &istats);
  EXPECT_TRUE(istats.full_rebuild);
  EXPECT_EQ(istats.terms_reused, 0u);

  // The fallback must still agree with a direct cold build.
  RankCache full = RankCache::BuildForTerms(authority, *corpus, rates_,
                                            terms_, options_);
  for (const std::string& term : terms_) {
    ASSERT_EQ(incremental.Contains(term), full.Contains(term)) << term;
    if (!full.Contains(term)) continue;
    const std::span<const float> a =
        RankCacheTestPeer::Scores(incremental, term);
    const std::span<const float> b = RankCacheTestPeer::Scores(full, term);
    ASSERT_EQ(a.size(), b.size());
    for (size_t v = 0; v < a.size(); ++v) {
      ASSERT_EQ(a[v], b[v]) << term << " node " << v;
    }
  }
}

}  // namespace
}  // namespace orx::mutate
