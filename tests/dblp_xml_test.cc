#include "datasets/dblp_xml.h"

#include <gtest/gtest.h>

#include "core/searcher.h"
#include "datasets/dblp_generator.h"
#include "graph/conformance.h"
#include "text/query.h"

namespace orx::datasets {
namespace {

constexpr const char* kFigure1Xml = R"(<?xml version="1.0"?>
<!-- The paper's Figure 1 excerpt as DBLP XML. -->
<dblp>
  <inproceedings key="conf/icde/Gupta97">
    <author>H. Gupta</author>
    <author>V. Harinarayan</author>
    <title>Index Selection for OLAP.</title>
    <year>1997</year>
    <booktitle>ICDE</booktitle>
    <cite>conf/icde/Gray96</cite>
  </inproceedings>
  <inproceedings key="conf/sigmod/Ho97">
    <author>C. Ho</author>
    <author>R. Agrawal</author>
    <title>Range Queries in OLAP Data Cubes.</title>
    <year>1997</year>
    <booktitle>SIGMOD</booktitle>
    <cite>conf/icde/Gray96</cite>
    <cite>conf/icde/Agrawal97</cite>
    <cite>...</cite>
  </inproceedings>
  <inproceedings key="conf/icde/Agrawal97">
    <author>R. Agrawal</author>
    <title>Modeling Multidimensional Databases.</title>
    <year>1997</year>
    <booktitle>ICDE</booktitle>
    <cite>conf/icde/Gray96</cite>
  </inproceedings>
  <inproceedings key="conf/icde/Gray96">
    <author>J. Gray</author>
    <title>Data Cube: A Relational Aggregation Operator &amp; More.</title>
    <year>1996</year>
    <booktitle>ICDE</booktitle>
  </inproceedings>
</dblp>
)";

TEST(DblpXmlParseTest, ParsesFigure1Excerpt) {
  auto result = ParseDblpXml(kFigure1Xml);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->papers, 4u);
  // H. Gupta, V. Harinarayan, C. Ho, R. Agrawal, J. Gray.
  EXPECT_EQ(result->authors, 5u);
  EXPECT_EQ(result->conferences, 2u);  // ICDE, SIGMOD
  EXPECT_EQ(result->years, 3u);        // ICDE 1997, SIGMOD 1997, ICDE 1996
  EXPECT_EQ(result->citations_resolved, 4u);
  EXPECT_EQ(result->citations_unresolved, 1u);  // the "..." placeholder
  EXPECT_TRUE(graph::CheckConformance(result->dataset.data(),
                                      result->dataset.schema())
                  .ok());
}

TEST(DblpXmlParseTest, EntityDecoding) {
  auto result = ParseDblpXml(kFigure1Xml);
  ASSERT_TRUE(result.ok());
  bool found = false;
  const graph::DataGraph& data = result->dataset.data();
  for (graph::NodeId v = 0; v < data.num_nodes(); ++v) {
    if (data.AttributeValue(v, "Title") ==
        "Data Cube: A Relational Aggregation Operator & More.") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DblpXmlParseTest, AuthorsAreDeduplicated) {
  auto result = ParseDblpXml(kFigure1Xml);
  ASSERT_TRUE(result.ok());
  // R. Agrawal appears on two papers but is one node with two in-edges.
  const graph::DataGraph& data = result->dataset.data();
  int agrawal_nodes = 0, agrawal_in = 0;
  graph::NodeId agrawal = graph::kInvalidNodeId;
  for (graph::NodeId v = 0; v < data.num_nodes(); ++v) {
    if (data.NodeType(v) == result->types.author &&
        data.AttributeValue(v, "Name") == "R. Agrawal") {
      ++agrawal_nodes;
      agrawal = v;
    }
  }
  EXPECT_EQ(agrawal_nodes, 1);
  for (const graph::DataEdge& e : data.edges()) {
    if (e.type == result->types.by && e.to == agrawal) ++agrawal_in;
  }
  EXPECT_EQ(agrawal_in, 2);
}

TEST(DblpXmlParseTest, SkipsIncompleteRecords) {
  const char* xml = R"(<dblp>
    <inproceedings key="a"><title>No venue</title><year>2000</year></inproceedings>
    <inproceedings key="b">
      <title>Complete</title><year>2000</year><booktitle>X</booktitle>
    </inproceedings>
  </dblp>)";
  auto result = ParseDblpXml(xml);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->papers, 1u);
}

TEST(DblpXmlParseTest, ArticleRecordsUseJournal) {
  const char* xml = R"(<dblp>
    <article key="journals/tods/X">
      <author>A. B.</author>
      <title>Journal Paper</title><year>1999</year>
      <journal>TODS</journal>
    </article>
  </dblp>)";
  auto result = ParseDblpXml(xml);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->papers, 1u);
  EXPECT_EQ(result->conferences, 1u);
}

TEST(DblpXmlParseTest, MalformedInputsFailWithDataLoss) {
  for (const char* bad : {
           "not xml at all",
           "<dblp><inproceedings key=\"a\">",          // unterminated record
           "<dblp><unknown></unknown></dblp>",          // bad record type
           "<dblp><inproceedings key=\"a\"><title>t</wrong></inproceedings></dblp>",
           "<dblp><inproceedings key=\"a\"><title>t &bogus; t</title></inproceedings></dblp>",
           "<dblp>",                                    // missing close
       }) {
    auto result = ParseDblpXml(bad);
    EXPECT_FALSE(result.ok()) << bad;
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss) << bad;
  }
}

TEST(DblpXmlParseTest, MissingFileIsNotFound) {
  EXPECT_EQ(ParseDblpXmlFile("/nonexistent/dblp.xml").status().code(),
            StatusCode::kNotFound);
}

TEST(DblpXmlRoundTripTest, GeneratedGraphSurvivesRoundTrip) {
  DblpDataset generated = GenerateDblp(DblpGeneratorConfig::Tiny(300, 21));
  const std::string xml =
      WriteDblpXml(generated.dataset.data(), generated.types);
  auto parsed = ParseDblpXml(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  // Paper/year/conference counts survive exactly.
  const graph::DataGraph& a = generated.dataset.data();
  size_t papers = 0;
  for (graph::NodeId v = 0; v < a.num_nodes(); ++v) {
    papers += (a.NodeType(v) == generated.types.paper);
  }
  EXPECT_EQ(parsed->papers, papers);

  // Citation edges survive exactly.
  size_t cites = 0;
  for (const graph::DataEdge& e : a.edges()) {
    cites += (e.type == generated.types.cites);
  }
  EXPECT_EQ(parsed->citations_resolved, cites);
  EXPECT_EQ(parsed->citations_unresolved, 0u);

  // And the round-tripped graph ranks like the original: compare top-5 for
  // a query (author dedup may shift scores microscopically).
  graph::TransferRates rates_a =
      DblpGroundTruthRates(generated.dataset.schema(), generated.types);
  graph::TransferRates rates_b =
      DblpGroundTruthRates(parsed->dataset.schema(), parsed->types);
  core::Searcher sa(a, generated.dataset.authority(),
                    generated.dataset.corpus());
  core::Searcher sb(parsed->dataset.data(), parsed->dataset.authority(),
                    parsed->dataset.corpus());
  text::QueryVector q(text::ParseQuery("data"));
  auto ra = sa.Search(q, rates_a);
  auto rb = sb.Search(q, rates_b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra->top.size(), rb->top.size());
  for (size_t i = 0; i < ra->top.size(); ++i) {
    EXPECT_EQ(generated.dataset.data().DisplayLabel(ra->top[i].node),
              parsed->dataset.data().DisplayLabel(rb->top[i].node));
  }
}

TEST(DblpXmlWriteTest, EscapesSpecialCharacters) {
  DblpTypes types;
  auto schema = MakeDblpSchema(&types);
  graph::DataGraph data(*schema);
  graph::NodeId conf = *data.AddNode(types.conference, {{"Name", "C"}});
  graph::NodeId year =
      *data.AddNode(types.year, {{"Name", "C"}, {"Year", "2000"}});
  graph::NodeId paper = *data.AddNode(
      types.paper, {{"Title", "A<B & \"C\">"}, {"Authors", ""}});
  ASSERT_TRUE(data.AddEdge(conf, year, types.has_instance).ok());
  ASSERT_TRUE(data.AddEdge(year, paper, types.contains).ok());

  const std::string xml = WriteDblpXml(data, types);
  EXPECT_NE(xml.find("A&lt;B &amp; &quot;C&quot;&gt;"), std::string::npos);
  auto parsed = ParseDblpXml(xml);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->papers, 1u);
}


TEST(DblpXmlParseTest, NumericEntitiesAndComments) {
  const char* xml = R"(<dblp>
    <!-- a comment between records -->
    <inproceedings key="x">
      <author>A&#46; B&#46;</author>
      <title>Title &#38; more</title>
      <year>2001</year><booktitle>VLDB</booktitle>
    </inproceedings>
  </dblp>)";
  auto result = datasets::ParseDblpXml(xml);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->papers, 1u);
  const graph::DataGraph& data = result->dataset.data();
  bool found = false;
  for (graph::NodeId v = 0; v < data.num_nodes(); ++v) {
    if (data.AttributeValue(v, "Title") == "Title & more") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(DblpXmlParseTest, NonAsciiNumericEntityDegradesToPlaceholder) {
  const char* xml = R"(<dblp>
    <inproceedings key="x">
      <title>caf&#233;</title><year>2001</year><booktitle>VLDB</booktitle>
    </inproceedings>
  </dblp>)";
  auto result = datasets::ParseDblpXml(xml);
  ASSERT_TRUE(result.ok());
  const graph::DataGraph& data = result->dataset.data();
  bool found = false;
  for (graph::NodeId v = 0; v < data.num_nodes(); ++v) {
    if (data.AttributeValue(v, "Title") == "caf?") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(DblpXmlParseTest, SelfCitationKeyIsIgnored) {
  const char* xml = R"(<dblp>
    <inproceedings key="self">
      <title>t</title><year>2001</year><booktitle>VLDB</booktitle>
      <cite>self</cite>
    </inproceedings>
  </dblp>)";
  auto result = datasets::ParseDblpXml(xml);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->citations_resolved, 0u);
  EXPECT_EQ(result->citations_unresolved, 1u);
}

}  // namespace
}  // namespace orx::datasets
