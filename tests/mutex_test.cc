// Tests for the annotated lock layer (common/mutex.h): wrapper
// semantics, cond-var wakeups (TSan-labeled, see tests/CMakeLists.txt),
// and the runtime lock-order validator's death paths — self-deadlock,
// waiting a CondVar on an unheld mutex, and the acquisition-order
// inversion check the static analysis cannot express.
//
// Death tests run in "threadsafe" style (the child re-executes the test
// body up to the death statement), and the validator enable call lives
// *inside* each EXPECT_DEATH statement so the flag is set in the child
// regardless of style. The default-build validator state is left
// untouched outside the statements.
#include "common/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace orx {
namespace {

// Death tests fork; TSan's runtime does not survive that reliably, so
// the validator death paths are exercised in the plain builds only.
#if defined(__SANITIZE_THREAD__)
#define ORX_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ORX_TSAN_BUILD 1
#endif
#endif

TEST(MutexTest, MutexLockProtectsCounter) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> acquired{false};
  std::thread other([&] { acquired.store(mu.TryLock()); });
  other.join();
  EXPECT_FALSE(acquired.load());
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, CondVarSignalWakesWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::atomic<bool> observed{false};
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    observed.store(true);
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.Signal();
  waiter.join();
  EXPECT_TRUE(observed.load());
}

TEST(MutexTest, CondVarSignalAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> woke{0};
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      woke.fetch_add(1);
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.SignalAll();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

TEST(MutexTest, CondVarWaitUntilTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  // Nobody signals: the wait must come back false at the deadline with
  // the mutex reacquired (the guarded access below would be a race
  // otherwise, and the TSan run of this test would catch it).
  EXPECT_FALSE(cv.WaitUntil(mu, deadline));
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

TEST(MutexTest, CondVarWaitUntilSeesSignal) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread signaler([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    {
      MutexLock lock(mu);
      ready = true;
    }
    cv.Signal();
  });
  {
    MutexLock lock(mu);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (!ready) {
      ASSERT_TRUE(cv.WaitUntil(mu, deadline)) << "signal never arrived";
    }
  }
  signaler.join();
}

// A consistent acquisition order across many threads must never trip
// the validator: a -> b on every path is exactly the discipline the
// order graph certifies.
TEST(MutexTest, ValidatorAcceptsConsistentOrder) {
  const bool was = LockOrderValidationEnabled();
  SetLockOrderValidation(true);
  {
    Mutex a("test.consistent_a");
    Mutex b("test.consistent_b");
    int value = 0;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 200; ++i) {
          MutexLock la(a);
          MutexLock lb(b);
          ++value;
        }
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(value, 4 * 200);
  }
  SetLockOrderValidation(was);
  ResetLockOrderGraphForTest();
}

TEST(MutexTest, AssertHeldPassesWhenHeld) {
  const bool was = LockOrderValidationEnabled();
  SetLockOrderValidation(true);
  {
    Mutex mu("test.assert_held");
    MutexLock lock(mu);
    mu.AssertHeld();  // must not die
  }
  SetLockOrderValidation(was);
  ResetLockOrderGraphForTest();
}

#ifndef ORX_TSAN_BUILD

class MutexDeathTest : public testing::Test {
 protected:
  void SetUp() override {
    // Child re-executes the test body instead of forking mid-state:
    // required because the body above EXPECT_DEATH spawns nothing, but
    // other tests in this binary run threads.
    testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(MutexDeathTest, LockOrderInversionDies) {
  EXPECT_DEATH(
      {
        SetLockOrderValidation(true);
        Mutex a("test.inv_a");
        Mutex b("test.inv_b");
        {
          // Establish a -> b.
          MutexLock la(a);
          MutexLock lb(b);
        }
        {
          // Acquire in the opposite order: deterministic abort, no
          // second thread or unlucky interleaving needed.
          MutexLock lb(b);
          MutexLock la(a);
        }
      },
      "lock-order inversion.*test.inv_a.*test.inv_b");
}

TEST_F(MutexDeathTest, InversionThroughChainDies) {
  // a -> b and b -> c recorded; acquiring a under c closes a cycle
  // through the intermediate lock.
  EXPECT_DEATH(
      {
        SetLockOrderValidation(true);
        Mutex a("test.chain_a");
        Mutex b("test.chain_b");
        Mutex c("test.chain_c");
        {
          MutexLock la(a);
          MutexLock lb(b);
        }
        {
          MutexLock lb(b);
          MutexLock lc(c);
        }
        {
          MutexLock lc(c);
          MutexLock la(a);
        }
      },
      "lock-order inversion");
}

TEST_F(MutexDeathTest, SelfDeadlockDies) {
  EXPECT_DEATH(
      {
        SetLockOrderValidation(true);
        Mutex mu("test.self_deadlock");
        mu.Lock();
        mu.Lock();  // would block forever without the validator
      },
      "self-deadlock.*test.self_deadlock");
}

TEST_F(MutexDeathTest, WaitOnUnheldMutexDies) {
  EXPECT_DEATH(
      {
        SetLockOrderValidation(true);
        Mutex mu("test.wait_unheld");
        CondVar cv;
        cv.Wait(mu);  // UB on std::condition_variable; deterministic here
      },
      "condition wait on unheld mutex.*test.wait_unheld");
}

TEST_F(MutexDeathTest, AssertHeldDiesWhenNotHeld) {
  EXPECT_DEATH(
      {
        SetLockOrderValidation(true);
        Mutex mu("test.assert_unheld");
        mu.AssertHeld();
      },
      "AssertHeld.*test.assert_unheld");
}

// Unnamed mutexes stay out of the order graph (aliasing many instances
// onto one node would fabricate cycles), so an inverted pair must NOT
// die — this pins the opt-in-by-name semantics.
TEST_F(MutexDeathTest, UnnamedMutexesExemptFromOrdering) {
  const bool was = LockOrderValidationEnabled();
  SetLockOrderValidation(true);
  {
    Mutex a;
    Mutex b;
    {
      MutexLock la(a);
      MutexLock lb(b);
    }
    {
      MutexLock lb(b);
      MutexLock la(a);  // survives: no names, no edges
    }
  }
  SetLockOrderValidation(was);
  ResetLockOrderGraphForTest();
}

// With validation off (the Release default), an inversion of named
// mutexes is not checked — the validator must be free when disabled.
TEST_F(MutexDeathTest, DisabledValidatorIgnoresInversion) {
  const bool was = LockOrderValidationEnabled();
  SetLockOrderValidation(false);
  {
    Mutex a("test.off_a");
    Mutex b("test.off_b");
    {
      MutexLock la(a);
      MutexLock lb(b);
    }
    {
      MutexLock lb(b);
      MutexLock la(a);
    }
  }
  SetLockOrderValidation(was);
  ResetLockOrderGraphForTest();
}

#endif  // !ORX_TSAN_BUILD

// Named mutex + CondVar rendezvous under active validation: the
// cross-thread Wait/Signal handoff must leave the held-stack and order
// graph consistent on both threads (a validator bug here would abort).
TEST(MutexTest, ValidatorCleanAcrossCondVarHandoff) {
  const bool was = LockOrderValidationEnabled();
  SetLockOrderValidation(true);
  {
    Mutex stage("test.stage");
    CondVar staged;
    int rendezvous = 0;
    std::thread producer([&] {
      MutexLock lock(stage);
      ++rendezvous;
      staged.Signal();
    });
    {
      MutexLock lock(stage);
      while (rendezvous == 0) staged.Wait(stage);
    }
    producer.join();
  }
  SetLockOrderValidation(was);
  ResetLockOrderGraphForTest();
}

}  // namespace
}  // namespace orx
