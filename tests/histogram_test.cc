#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace orx {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.MeanSeconds(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

TEST(LatencyHistogramTest, SingleSampleLandsInItsBucket) {
  LatencyHistogram h;
  h.Record(0.01);
  EXPECT_EQ(h.TotalCount(), 1u);
  EXPECT_DOUBLE_EQ(h.MeanSeconds(), 0.01);
  // Bucket resolution is 10^(1/10) ≈ 1.26x; the reported percentile is
  // the bucket's geometric midpoint, so it is within ~26% of the sample.
  EXPECT_GT(h.Percentile(50), 0.01 / 1.3);
  EXPECT_LT(h.Percentile(50), 0.01 * 1.3);
  // Every percentile of a single sample is that sample's bucket.
  EXPECT_DOUBLE_EQ(h.Percentile(1), h.Percentile(99));
}

TEST(LatencyHistogramTest, PercentilesOrderAndApproximateRank) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i * 1e-3);  // 1ms .. 100ms
  EXPECT_EQ(h.TotalCount(), 100u);
  const double p50 = h.Percentile(50);
  const double p95 = h.Percentile(95);
  const double p99 = h.Percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GT(p50, 0.050 / 1.3);
  EXPECT_LT(p50, 0.050 * 1.3);
  EXPECT_GT(p99, 0.099 / 1.3);
  EXPECT_LT(p99, 0.100 * 1.3);
  EXPECT_NEAR(h.MeanSeconds(), 0.0505, 1e-9);
}

TEST(LatencyHistogramTest, OutOfRangeSamplesClampIntoEdgeBuckets) {
  LatencyHistogram h;
  h.Record(0.0);
  h.Record(-1.0);  // nonsense input must not crash or corrupt
  h.Record(1e9);
  EXPECT_EQ(h.TotalCount(), 3u);
  EXPECT_GT(h.Percentile(100), 0.0);
  EXPECT_LT(h.Percentile(1),
            LatencyHistogram::BucketLowerBound(1) * 1.01);
}

TEST(LatencyHistogramTest, BucketBoundsGrowMonotonically) {
  for (size_t i = 1; i < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_GT(LatencyHistogram::BucketLowerBound(i),
              LatencyHistogram::BucketLowerBound(i - 1));
  }
}

TEST(LatencyHistogramTest, ResetClearsEverything) {
  LatencyHistogram h;
  h.Record(0.5);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(LatencyHistogramTest, ConcurrentRecordingLosesNoSamples) {
  // The serving pattern: many workers record while a metrics reader
  // polls. Counts must be exact once the writers quiesce.
  LatencyHistogram h;
  ThreadPool pool(8);
  constexpr size_t kPerTask = 5000;
  pool.ParallelFor(16, [&h](size_t task) {
    for (size_t i = 0; i < kPerTask; ++i) {
      h.Record(1e-3 * static_cast<double>(task + 1));
      if (i % 1000 == 0) {
        h.Percentile(50);  // concurrent reads must be safe
        h.MeanSeconds();
      }
    }
  });
  EXPECT_EQ(h.TotalCount(), 16 * kPerTask);
  EXPECT_NEAR(h.TotalSeconds(), kPerTask * 1e-3 * (16 * 17 / 2), 1e-6);
}

}  // namespace
}  // namespace orx
