#include "common/histogram.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/thread_pool.h"

namespace orx {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.MeanSeconds(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

TEST(LatencyHistogramTest, SingleSampleLandsInItsBucket) {
  LatencyHistogram h;
  h.Record(0.01);
  EXPECT_EQ(h.TotalCount(), 1u);
  EXPECT_DOUBLE_EQ(h.MeanSeconds(), 0.01);
  // Bucket resolution is 10^(1/10) ≈ 1.26x; the reported percentile is
  // the bucket's geometric midpoint, so it is within ~26% of the sample.
  EXPECT_GT(h.Percentile(50), 0.01 / 1.3);
  EXPECT_LT(h.Percentile(50), 0.01 * 1.3);
  // Every percentile of a single sample is that sample's bucket.
  EXPECT_DOUBLE_EQ(h.Percentile(1), h.Percentile(99));
}

TEST(LatencyHistogramTest, PercentilesOrderAndApproximateRank) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i * 1e-3);  // 1ms .. 100ms
  EXPECT_EQ(h.TotalCount(), 100u);
  const double p50 = h.Percentile(50);
  const double p95 = h.Percentile(95);
  const double p99 = h.Percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GT(p50, 0.050 / 1.3);
  EXPECT_LT(p50, 0.050 * 1.3);
  EXPECT_GT(p99, 0.099 / 1.3);
  EXPECT_LT(p99, 0.100 * 1.3);
  EXPECT_NEAR(h.MeanSeconds(), 0.0505, 1e-9);
}

TEST(LatencyHistogramTest, OutOfRangeSamplesClampIntoEdgeBuckets) {
  LatencyHistogram h;
  h.Record(0.0);
  h.Record(-1.0);  // nonsense input must not crash or corrupt
  h.Record(1e9);
  EXPECT_EQ(h.TotalCount(), 3u);
  EXPECT_GT(h.Percentile(100), 0.0);
  EXPECT_LT(h.Percentile(1),
            LatencyHistogram::BucketLowerBound(1) * 1.01);
}

TEST(LatencyHistogramTest, BucketBoundsGrowMonotonically) {
  for (size_t i = 1; i < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_GT(LatencyHistogram::BucketLowerBound(i),
              LatencyHistogram::BucketLowerBound(i - 1));
  }
}

TEST(LatencyHistogramTest, ResetClearsEverything) {
  LatencyHistogram h;
  h.Record(0.5);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.MinSeconds(), 0.0);
  EXPECT_EQ(h.MaxSeconds(), 0.0);
}

// Regression: the pre-clamp implementation reported the geometric
// midpoint of the matched bucket unconditionally, so a degenerate
// distribution (every sample identical) over-reported p50/p95/p99 by up
// to half a bucket width (~12%). With min/max tracking the estimate is
// clamped to the recorded range, which pins it exactly.
TEST(LatencyHistogramTest, ConstantDistributionReportsExactValue) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.Record(0.01);
  EXPECT_DOUBLE_EQ(h.MinSeconds(), 0.01);
  EXPECT_DOUBLE_EQ(h.MaxSeconds(), 0.01);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.01);
  EXPECT_DOUBLE_EQ(h.Percentile(95), 0.01);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.01);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 0.01);
}

// Regression: samples below the first bucket bound (100 ns) used to be
// reported as the first bucket's midpoint (~112 ns) — an over-report of
// 10x for a 10 ns sample. The max clamp caps the estimate at the largest
// recorded sample.
TEST(LatencyHistogramTest, SubRangeSamplesClampToRecordedMax) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.Record(1e-8);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 1e-8);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 1e-8);
}

// Regression: the unbounded overflow bucket used to report its
// (meaningless) lower-edge midpoint ~316 s for any sample >= ~398 s.
// It now reports the recorded max.
TEST(LatencyHistogramTest, OverflowBucketReportsRecordedMax) {
  LatencyHistogram h;
  h.Record(1000.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 1000.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1000.0);
}

// Known two-point distribution with exact expected values: 50 samples at
// 1 ms and 50 at 80 ms. 80 ms sits mid-bucket in [79.4 ms, 100 ms),
// whose geometric midpoint ~89.1 ms exceeds every recorded sample, so
// the max clamp must engage. The pre-fix code returns ~0.0891 for p75
// and fails.
TEST(LatencyHistogramTest, KnownDistributionPinsClampedPercentiles) {
  LatencyHistogram h;
  for (int i = 0; i < 50; ++i) h.Record(0.001);
  for (int i = 0; i < 50; ++i) h.Record(0.08);
  EXPECT_DOUBLE_EQ(h.MinSeconds(), 0.001);
  EXPECT_DOUBLE_EQ(h.MaxSeconds(), 0.08);
  // Rank 75 lands in the 80 ms bucket; its midpoint (~0.0891) is above
  // the recorded max, so the clamp pins the estimate to exactly 0.08.
  EXPECT_DOUBLE_EQ(h.Percentile(75), 0.08);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.08);
  // Rank 25 lands in the 1 ms bucket; the midpoint is within the
  // recorded range, so the usual bucket-resolution bound applies and
  // the estimate stays inside the bucket.
  const double p25 = h.Percentile(25);
  EXPECT_GE(p25, 0.001);
  EXPECT_LT(p25, 0.001 * 1.26);
}

TEST(LatencyHistogramTest, NonFiniteSamplesDoNotPoisonMinMax) {
  LatencyHistogram h;
  h.Record(std::numeric_limits<double>::quiet_NaN());
  h.Record(-5.0);
  h.Record(0.01);
  EXPECT_EQ(h.TotalCount(), 3u);
  // Nonsense samples count as 0; min/max stay finite and ordered.
  EXPECT_DOUBLE_EQ(h.MinSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(h.MaxSeconds(), 0.01);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 0.01);
}

TEST(LatencyHistogramTest, ConcurrentRecordingLosesNoSamples) {
  // The serving pattern: many workers record while a metrics reader
  // polls. Counts must be exact once the writers quiesce.
  LatencyHistogram h;
  ThreadPool pool(8);
  constexpr size_t kPerTask = 5000;
  pool.ParallelFor(16, [&h](size_t task) {
    for (size_t i = 0; i < kPerTask; ++i) {
      h.Record(1e-3 * static_cast<double>(task + 1));
      if (i % 1000 == 0) {
        h.Percentile(50);  // concurrent reads must be safe
        h.MeanSeconds();
      }
    }
  });
  EXPECT_EQ(h.TotalCount(), 16 * kPerTask);
  EXPECT_NEAR(h.TotalSeconds(), kPerTask * 1e-3 * (16 * 17 / 2), 1e-6);
}

}  // namespace
}  // namespace orx
