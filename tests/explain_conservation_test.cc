// Flow-conservation laws of the explaining subgraph. Combining
// Equations 5, 7 and 10 gives, for every non-target node v of G_v^Q:
//
//   AdjustedOutFlowSum(v) = sum_j h(j) * Flow_0(v -> j)
//                         = d * r^Q(v) * sum_j h(j) * a(v -> j)
//                         = d * r^Q(v) * h(v).
//
// This file verifies the law on the Figure 1 graph and on generated
// graphs, plus the exact h solution on a DAG (citations only point
// backward in time, so with zero reverse rates the fixpoint must agree
// with reverse-topological evaluation).

#include <gtest/gtest.h>

#include "datasets/dblp_generator.h"
#include "datasets/figure1.h"
#include "core/top_k.h"
#include "explain/explainer.h"
#include "text/query.h"

namespace orx::explain {
namespace {

void CheckConservation(const ExplainingSubgraph& sub,
                       const std::vector<double>& scores, double damping) {
  for (LocalId v = 0; v < sub.num_nodes(); ++v) {
    if (v == sub.target_local()) continue;
    const double expected =
        damping * scores[sub.GlobalId(v)] * sub.ReductionFactor(v);
    EXPECT_NEAR(sub.AdjustedOutFlowSum(v), expected, 1e-9)
        << "node " << v;
  }
}

TEST(ExplainConservationTest, HoldsOnFigure1) {
  datasets::Figure1Dataset fig = datasets::MakeFigure1Dataset();
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(fig.dataset.schema(), fig.types);
  text::QueryVector q(text::ParseQuery("olap"));
  auto base = core::BuildBaseSet(fig.dataset.corpus(), q);
  ASSERT_TRUE(base.ok());
  core::ObjectRankEngine engine(fig.dataset.authority());
  core::ObjectRankOptions or_options;
  or_options.epsilon = 1e-12;
  auto rank = engine.Compute(*base, rates, or_options);

  Explainer explainer(fig.dataset.data(), fig.dataset.authority());
  ExplainOptions options;
  options.radius = 5;
  options.epsilon = 1e-14;
  auto explanation = explainer.Explain(fig.v4_range_queries, *base,
                                       rank.scores, rates, 0.85, options);
  ASSERT_TRUE(explanation.ok());
  CheckConservation(explanation->subgraph, rank.scores, 0.85);
}

TEST(ExplainConservationTest, HoldsOnGeneratedGraphs) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    datasets::DblpDataset dblp = datasets::GenerateDblp(
        datasets::DblpGeneratorConfig::Tiny(/*papers=*/500, seed));
    graph::TransferRates rates =
        datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
    text::QueryVector q(text::ParseQuery("data"));
    auto base = core::BuildBaseSet(dblp.dataset.corpus(), q);
    ASSERT_TRUE(base.ok());
    core::ObjectRankEngine engine(dblp.dataset.authority());
    core::ObjectRankOptions or_options;
    or_options.epsilon = 1e-12;
    auto rank = engine.Compute(*base, rates, or_options);
    auto top = core::TopKOfType(rank.scores, 2, dblp.dataset.data(),
                                dblp.types.paper);
    ASSERT_FALSE(top.empty());

    Explainer explainer(dblp.dataset.data(), dblp.dataset.authority());
    ExplainOptions options;
    options.radius = 3;
    options.epsilon = 1e-14;
    options.max_iterations = 2000;
    auto explanation = explainer.Explain(top[0].node, *base, rank.scores,
                                         rates, 0.85, options);
    ASSERT_TRUE(explanation.ok());
    ASSERT_TRUE(explanation->converged);
    CheckConservation(explanation->subgraph, rank.scores, 0.85);
  }
}

// On a citations-only graph (every reverse rate zero) the explaining
// subgraph is a DAG, so h has an exact solution by processing nodes in
// reverse-topological (here: ascending-id, since citations point to
// *earlier* papers and flow runs old -> ...). Verify the fixpoint agrees.
TEST(ExplainConservationTest, DagFixpointIsExact) {
  datasets::DblpTypes types;
  auto schema = datasets::MakeDblpSchema(&types);
  datasets::Dataset dataset(std::move(schema), "dag");
  graph::DataGraph& data = dataset.mutable_data();

  // A small citation DAG: p0 <- p1 <- p2 <- p3, plus skip edges.
  std::vector<graph::NodeId> papers;
  for (int i = 0; i < 6; ++i) {
    papers.push_back(*data.AddNode(
        types.paper, {{"Title", "olap paper " + std::to_string(i)}}));
  }
  auto cite = [&](int from, int to) {
    ASSERT_TRUE(data.AddEdge(papers[from], papers[to], types.cites).ok());
  };
  cite(1, 0);
  cite(2, 0);
  cite(2, 1);
  cite(3, 1);
  cite(4, 2);
  cite(5, 3);
  cite(5, 0);
  dataset.Finalize();

  graph::TransferRates rates(dataset.schema(), 0.0);
  ASSERT_TRUE(rates.SetBoth(types.cites, 0.7, 0.0).ok());  // DAG: no reverse

  text::QueryVector q(text::ParseQuery("olap"));
  auto base = core::BuildBaseSet(dataset.corpus(), q);
  ASSERT_TRUE(base.ok());
  core::ObjectRankEngine engine(dataset.authority());
  auto rank = engine.Compute(*base, rates, {});

  Explainer explainer(dataset.data(), dataset.authority());
  ExplainOptions options;
  options.radius = 6;
  options.epsilon = 1e-15;
  options.prune_fraction = 0.0;
  auto explanation =
      explainer.Explain(papers[0], *base, rank.scores, rates, 0.85, options);
  ASSERT_TRUE(explanation.ok());
  const ExplainingSubgraph& sub = explanation->subgraph;
  // On a DAG the Jacobi iteration converges exactly within depth+1 passes.
  EXPECT_LE(explanation->iterations, 8);

  // Exact h by processing global ids in ascending order (edges only go
  // from higher ids to lower ids).
  std::vector<double> exact(sub.num_nodes(), 0.0);
  exact[sub.target_local()] = 1.0;
  std::vector<LocalId> order(sub.num_nodes());
  for (LocalId v = 0; v < sub.num_nodes(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](LocalId a, LocalId b) {
    return sub.GlobalId(a) < sub.GlobalId(b);
  });
  for (LocalId v : order) {
    if (v == sub.target_local()) continue;
    double h = 0.0;
    for (uint32_t ei : sub.OutEdgeIndices(v)) {
      h += exact[sub.edges()[ei].to] * sub.edges()[ei].rate;
    }
    exact[v] = h;
  }
  for (LocalId v = 0; v < sub.num_nodes(); ++v) {
    EXPECT_NEAR(sub.ReductionFactor(v), exact[v], 1e-12);
  }
}

}  // namespace
}  // namespace orx::explain
