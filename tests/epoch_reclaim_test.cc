// Stress tests of epoch-based snapshot reclamation (tsan-labeled):
// readers pin old epochs while a publisher races ahead, the live-epoch
// bound holds under backpressure, old epochs are destroyed only after
// their last reader leaves, and the full write path (DeltaLog ->
// SnapshotBuilder -> SearchService hot swap) reclaims every epoch it
// publishes once traffic drains.

#include "mutate/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datasets/dblp_generator.h"
#include "mutate/delta_log.h"
#include "mutate/mutation.h"
#include "mutate/snapshot_builder.h"
#include "serve/search_service.h"
#include "serve/snapshot.h"
#include "text/query.h"

namespace orx::mutate {
namespace {

std::shared_ptr<const serve::ServeSnapshot> MakeSnapshot(
    const std::shared_ptr<datasets::DblpDataset>& owner) {
  graph::TransferRates rates = datasets::DblpGroundTruthRates(
      owner->dataset.schema(), owner->types);
  return std::make_shared<serve::ServeSnapshot>(serve::SnapshotFromOwner(
      owner, owner->dataset.data(), owner->dataset.authority(),
      owner->dataset.corpus(), std::move(rates)));
}

TEST(EpochReclaimTest, ReadersPinOldEpochsUnderRapidPublishes) {
  auto owner = std::make_shared<datasets::DblpDataset>(datasets::GenerateDblp(
      datasets::DblpGeneratorConfig::Tiny(30, 5)));
  EpochManager epochs;
  constexpr uint64_t kMaxLive = 4;
  constexpr int kPublications = 200;

  std::mutex current_mu;
  std::shared_ptr<const serve::ServeSnapshot> current;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        std::shared_ptr<const serve::ServeSnapshot> pinned;
        {
          std::lock_guard<std::mutex> lock(current_mu);
          pinned = current;
        }
        if (pinned != nullptr) {
          // Touch the snapshot while pinned, like a request would.
          ASSERT_TRUE(pinned->Complete());
          reads.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::yield();
      }
    });
  }

  // Publisher: epoch-bounded hot swaps, exactly the builder's discipline.
  for (int i = 0; i < kPublications; ++i) {
    ASSERT_TRUE(epochs.WaitForReclaimUnder(kMaxLive, 30.0))
        << "reclamation stalled at publication " << i;
    auto tracked = epochs.Publish(MakeSnapshot(owner));
    {
      std::lock_guard<std::mutex> lock(current_mu);
      current = std::move(tracked);  // drops the previous epoch's ref
    }
    // live() may transiently count the new epoch on top of the bound the
    // wait established, plus whatever readers still pin.
    EXPECT_LE(epochs.live(), kMaxLive + 4u + 1u);
  }
  // The publish loop can outrun thread startup; `current` stays pinned,
  // so wait until the readers have demonstrably pinned-and-read it.
  for (int spin = 0; spin < 5000 && reads.load() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  {
    std::lock_guard<std::mutex> lock(current_mu);
    current.reset();
  }

  EXPECT_EQ(epochs.published(), static_cast<uint64_t>(kPublications));
  EXPECT_TRUE(epochs.WaitForReclaimUnder(1, 30.0));
  EXPECT_EQ(epochs.reclaimed(), static_cast<uint64_t>(kPublications));
  EXPECT_GT(reads.load(), 0u);
}

TEST(EpochReclaimTest, EpochSurvivesExactlyUntilLastReaderLeaves) {
  auto owner = std::make_shared<datasets::DblpDataset>(datasets::GenerateDblp(
      datasets::DblpGeneratorConfig::Tiny(30, 6)));
  EpochManager epochs;

  auto tracked = epochs.Publish(MakeSnapshot(owner));
  std::atomic<bool> release{false};
  std::atomic<bool> released{false};
  std::thread reader([&, pinned = tracked]() mutable {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    pinned.reset();
    released.store(true, std::memory_order_release);
  });

  tracked.reset();  // publisher's reference gone; reader still pins
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(epochs.reclaimed(), 0u);
  release.store(true, std::memory_order_release);
  EXPECT_TRUE(epochs.WaitForReclaimUnder(1, 30.0));
  reader.join();
  EXPECT_TRUE(released.load());
  EXPECT_EQ(epochs.reclaimed(), 1u);
}

TEST(EpochReclaimTest, FullWritePathReclaimsEverythingAfterDrain) {
  auto owner = std::make_shared<datasets::DblpDataset>(datasets::GenerateDblp(
      datasets::DblpGeneratorConfig::Tiny(60, 7)));
  auto seed = MakeSnapshot(owner);
  EpochManager epochs;
  DeltaLog log(owner->dataset.schema());

  // A paper guaranteed to have text for the query mix.
  graph::NodeId paper = graph::kInvalidNodeId;
  for (graph::NodeId v = 0;
       v < static_cast<graph::NodeId>(owner->dataset.data().num_nodes());
       ++v) {
    if (owner->dataset.data().NodeType(v) == owner->types.paper) {
      paper = v;
      break;
    }
  }
  ASSERT_NE(paper, graph::kInvalidNodeId);

  {
    serve::SearchService service(seed, {});
    SnapshotBuilder::Options options;
    options.max_batches_per_publish = 4;  // force frequent publications
    options.max_live_epochs = 4;
    SnapshotBuilder builder(&service, &log, &epochs, seed, options);
    builder.Start();

    std::atomic<bool> stop{false};
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
      readers.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          serve::ServeRequest request;
          request.query =
              text::QueryVector(text::ParseQuery("reclaimstress"));
          auto response = service.Submit(std::move(request)).get();
          // Until the first write publishes, the term is unknown; both
          // outcomes are fine — the point is pinning snapshots.
          (void)response;
        }
      });
    }

    uint64_t last = 0;
    for (int i = 0; i < 100; ++i) {
      MutationBatch batch;
      batch.mutations.push_back(Mutation::UpdateNodeText(
          paper, {{"title", "reclaimstress rev " + std::to_string(i)}}));
      auto sequence = log.Append(std::move(batch));
      if (sequence.ok()) last = *sequence;  // kUnavailable = backpressure
      if (i % 10 == 9) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    ASSERT_GT(last, 0u);
    ASSERT_TRUE(builder.WaitForSequence(last, 60.0));
    EXPECT_LE(epochs.live(), options.max_live_epochs + 1u);

    stop.store(true, std::memory_order_release);
    for (std::thread& t : readers) t.join();
    builder.Stop();
    EXPECT_GE(builder.stats().publications, 1u);
    EXPECT_GT(epochs.published(), 0u);
  }
  // Service and builder destroyed, every request finished: all epochs
  // must reclaim.
  EXPECT_TRUE(epochs.WaitForReclaimUnder(1, 30.0));
  EXPECT_EQ(epochs.reclaimed(), epochs.published());
}

}  // namespace
}  // namespace orx::mutate
