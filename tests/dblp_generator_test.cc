#include "datasets/dblp_generator.h"

#include <gtest/gtest.h>

#include "graph/conformance.h"
#include "text/query.h"

namespace orx::datasets {
namespace {

TEST(DblpGeneratorTest, NodeCountsMatchConfig) {
  DblpGeneratorConfig config = DblpGeneratorConfig::Tiny(300, 1);
  DblpDataset dblp = GenerateDblp(config);
  const graph::DataGraph& data = dblp.dataset.data();
  const size_t expected_nodes =
      config.num_papers + config.num_authors + config.num_conferences +
      config.num_conferences * config.years_per_conference;
  EXPECT_EQ(data.num_nodes(), expected_nodes);
}

TEST(DblpGeneratorTest, GraphConformsToSchema) {
  DblpDataset dblp = GenerateDblp(DblpGeneratorConfig::Tiny(200, 2));
  EXPECT_TRUE(graph::CheckConformance(dblp.dataset.data(),
                                      dblp.dataset.schema())
                  .ok());
}

TEST(DblpGeneratorTest, DeterministicForSameSeed) {
  DblpDataset a = GenerateDblp(DblpGeneratorConfig::Tiny(150, 33));
  DblpDataset b = GenerateDblp(DblpGeneratorConfig::Tiny(150, 33));
  ASSERT_EQ(a.dataset.data().num_nodes(), b.dataset.data().num_nodes());
  ASSERT_EQ(a.dataset.data().num_edges(), b.dataset.data().num_edges());
  for (size_t i = 0; i < a.dataset.data().edges().size(); ++i) {
    EXPECT_EQ(a.dataset.data().edges()[i].from,
              b.dataset.data().edges()[i].from);
    EXPECT_EQ(a.dataset.data().edges()[i].to, b.dataset.data().edges()[i].to);
  }
  // And text too.
  for (graph::NodeId v = 0; v < 50; ++v) {
    EXPECT_EQ(a.dataset.data().Text(v), b.dataset.data().Text(v));
  }
}

TEST(DblpGeneratorTest, DifferentSeedsDiffer) {
  DblpDataset a = GenerateDblp(DblpGeneratorConfig::Tiny(150, 1));
  DblpDataset b = GenerateDblp(DblpGeneratorConfig::Tiny(150, 2));
  EXPECT_NE(a.dataset.data().num_edges(), b.dataset.data().num_edges());
}

TEST(DblpGeneratorTest, EveryPaperHasVenueAndAuthor) {
  DblpDataset dblp = GenerateDblp(DblpGeneratorConfig::Tiny(120, 4));
  const graph::DataGraph& data = dblp.dataset.data();
  std::vector<int> venue_count(data.num_nodes(), 0);
  std::vector<int> author_count(data.num_nodes(), 0);
  for (const graph::DataEdge& e : data.edges()) {
    if (e.type == dblp.types.contains) ++venue_count[e.to];
    if (e.type == dblp.types.by) ++author_count[e.from];
  }
  for (graph::NodeId v = 0; v < data.num_nodes(); ++v) {
    if (data.NodeType(v) != dblp.types.paper) continue;
    EXPECT_EQ(venue_count[v], 1) << "paper " << v;
    EXPECT_GE(author_count[v], 1) << "paper " << v;
    EXPECT_LE(author_count[v], 4) << "paper " << v;
  }
}

TEST(DblpGeneratorTest, CitationsPointToEarlierPapers) {
  DblpDataset dblp = GenerateDblp(DblpGeneratorConfig::Tiny(200, 9));
  const graph::DataGraph& data = dblp.dataset.data();
  for (const graph::DataEdge& e : data.edges()) {
    if (e.type != dblp.types.cites) continue;
    // Papers are created in chronological order; node ids grow over time
    // within the paper id range, so a citation target precedes its source.
    EXPECT_LT(e.to, e.from);
  }
}

TEST(DblpGeneratorTest, CitationCountRoughlyMatchesConfig) {
  DblpGeneratorConfig config = DblpGeneratorConfig::Tiny(2000, 12);
  config.avg_citations = 4.0;
  DblpDataset dblp = GenerateDblp(config);
  size_t cites = 0;
  for (const graph::DataEdge& e : dblp.dataset.data().edges()) {
    cites += (e.type == dblp.types.cites);
  }
  const double avg = static_cast<double>(cites) / config.num_papers;
  // Dedup and the small prefix lower the mean slightly.
  EXPECT_GT(avg, 2.8);
  EXPECT_LT(avg, 4.5);
}

TEST(DblpGeneratorTest, Table2QueryKeywordsAreSearchable) {
  DblpDataset dblp = GenerateDblp(DblpGeneratorConfig::Tiny(3000, 7));
  const text::Corpus& corpus = dblp.dataset.corpus();
  for (const char* keyword :
       {"olap", "query", "optimization", "xml", "mining", "proximity",
        "search", "indexing", "ranked"}) {
    EXPECT_TRUE(corpus.TermIdOf(keyword).has_value())
        << keyword << " missing from generated corpus";
  }
}

TEST(DblpGeneratorTest, DblpTopPresetApproximatesTable1) {
  // Structural smoke check of the preset arithmetic (nodes are exact,
  // edges are stochastic): 22,653 nodes and ~167 K edges in Table 1.
  DblpGeneratorConfig config = DblpGeneratorConfig::DblpTop();
  const size_t nodes = config.num_papers + config.num_authors +
                       config.num_conferences +
                       config.num_conferences * config.years_per_conference;
  EXPECT_NEAR(static_cast<double>(nodes), 22653.0, 700.0);
}

}  // namespace
}  // namespace orx::datasets
