// Equivalence and regression suite for the fused SpMV power-iteration
// kernel (docs/power_iteration.md): every kernel — sequential push,
// legacy parallel pull, fused at several thread counts — must agree to
// <= 1e-12 L-inf on randomized graphs, base sets, and transfer rates;
// the fused-weight cache must never serve weights for stale rates; and
// the perf_smoke throughput sanity keeps the kernel plumbing honest.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "core/objectrank.h"
#include "datasets/dblp_generator.h"
#include "datasets/dblp_schema.h"
#include "graph/spmv_layout.h"

namespace orx::core {
namespace {

constexpr double kLInfTolerance = 1e-12;

double LInfDistance(const std::vector<double>& a,
                    const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double max = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max = std::max(max, std::fabs(a[i] - b[i]));
  }
  return max;
}

// A synthetic DBLP graph plus randomized rates and base set for one seed.
struct RandomCase {
  datasets::DblpDataset dblp;
  graph::TransferRates rates;
  BaseSet base;
};

RandomCase MakeRandomCase(uint64_t seed, uint32_t papers,
                          size_t base_nodes) {
  RandomCase c{datasets::GenerateDblp(
                   datasets::DblpGeneratorConfig::Tiny(papers, seed)),
               {},
               {}};
  Rng rng(seed * 7919 + 1);

  c.rates = graph::TransferRates(c.dblp.dataset.schema(), 0.0);
  for (uint32_t slot = 0; slot < c.rates.num_slots(); ++slot) {
    c.rates.set_slot(slot, rng.UniformDouble());
  }
  c.rates.CapOutgoingSums(c.dblp.dataset.schema());

  const size_t n = c.dblp.dataset.data().num_nodes();
  std::vector<graph::NodeId> nodes;
  while (nodes.size() < std::min(base_nodes, n)) {
    const auto v = static_cast<graph::NodeId>(rng.UniformInt(n));
    if (std::find(nodes.begin(), nodes.end(), v) == nodes.end()) {
      nodes.push_back(v);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  double total = 0.0;
  std::vector<double> weights;
  for (size_t i = 0; i < nodes.size(); ++i) {
    weights.push_back(rng.UniformDouble() + 0.01);
    total += weights.back();
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    c.base.entries.emplace_back(nodes[i], weights[i] / total);
  }
  return c;
}

ObjectRankOptions FixedWorkOptions(PowerKernel kernel, int threads) {
  ObjectRankOptions options;
  options.epsilon = 0.0;  // run exactly max_iterations in every kernel
  options.max_iterations = 25;
  options.kernel = kernel;
  options.num_threads = threads;
  return options;
}

TEST(SpmvKernelEquivalence, AllKernelsAgreeOnRandomizedInputs) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    RandomCase c = MakeRandomCase(seed, /*papers=*/400 + 150 * seed,
                                  /*base_nodes=*/12);
    ObjectRankEngine engine(c.dblp.dataset.authority());

    const auto reference =
        engine.Compute(c.base, c.rates,
                       FixedWorkOptions(PowerKernel::kSequentialPush, 1));
    ASSERT_EQ(reference.iterations, 25);

    for (const int threads : {1, 2, 4, 8}) {
      const auto fused = engine.Compute(
          c.base, c.rates, FixedWorkOptions(PowerKernel::kFused, threads));
      EXPECT_LE(LInfDistance(reference.scores, fused.scores),
                kLInfTolerance)
          << "fused kernel diverged from sequential push at " << threads
          << " threads (seed " << seed << ")";
    }
    const auto legacy = engine.Compute(
        c.base, c.rates, FixedWorkOptions(PowerKernel::kLegacy, 4));
    EXPECT_LE(LInfDistance(reference.scores, legacy.scores), kLInfTolerance)
        << "legacy parallel pull diverged from sequential push (seed "
        << seed << ")";
  }
}

TEST(SpmvKernelEquivalence, WarmStartedKernelsAgree) {
  RandomCase c = MakeRandomCase(11, /*papers=*/500, /*base_nodes=*/8);
  ObjectRankEngine engine(c.dblp.dataset.authority());

  // A dense warm start drives the fused kernel straight into the pull
  // SpMV; the reference must still match.
  const auto seed_run = engine.Compute(
      c.base, c.rates, FixedWorkOptions(PowerKernel::kSequentialPush, 1));
  const auto reference = engine.Compute(
      c.base, c.rates, FixedWorkOptions(PowerKernel::kSequentialPush, 1),
      &seed_run.scores);
  const auto fused =
      engine.Compute(c.base, c.rates,
                     FixedWorkOptions(PowerKernel::kFused, 4),
                     &seed_run.scores);
  EXPECT_LE(LInfDistance(reference.scores, fused.scores), kLInfTolerance);
}

TEST(SpmvKernelEquivalence, ConvergedRunsAgreeLoosely) {
  // With a real epsilon the kernels may stop one iteration apart, so the
  // comparison is only as tight as the convergence threshold.
  RandomCase c = MakeRandomCase(5, /*papers=*/400, /*base_nodes=*/10);
  ObjectRankEngine engine(c.dblp.dataset.authority());
  ObjectRankOptions push;
  push.epsilon = 1e-10;
  push.kernel = PowerKernel::kSequentialPush;
  ObjectRankOptions fused = push;
  fused.kernel = PowerKernel::kFused;
  fused.num_threads = 4;

  const auto a = engine.Compute(c.base, c.rates, push);
  const auto b = engine.Compute(c.base, c.rates, fused);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_LE(LInfDistance(a.scores, b.scores), 1e-8);
}

// ComputeGlobal (uniform all-nodes base set) starts fully dense, so the
// fused kernel takes the pull path from iteration 1 — a code path the
// sparse-start tests above never pin down globally. All kernels and
// thread counts must agree on it.
TEST(SpmvKernelEquivalence, ComputeGlobalAgreesAcrossKernelsAndThreads) {
  RandomCase c = MakeRandomCase(12, /*papers=*/450, /*base_nodes=*/4);
  ObjectRankEngine engine(c.dblp.dataset.authority());

  const auto reference = engine.ComputeGlobal(
      c.rates, FixedWorkOptions(PowerKernel::kSequentialPush, 1));
  ASSERT_EQ(reference.iterations, 25);
  ASSERT_EQ(reference.scores.size(),
            c.dblp.dataset.authority().num_nodes());

  for (const int threads : {1, 2, 4, 8}) {
    const auto fused = engine.ComputeGlobal(
        c.rates, FixedWorkOptions(PowerKernel::kFused, threads));
    EXPECT_LE(LInfDistance(reference.scores, fused.scores), kLInfTolerance)
        << "fused global rank diverged at " << threads << " threads";
  }
  for (const int threads : {1, 4}) {
    const auto legacy = engine.ComputeGlobal(
        c.rates, FixedWorkOptions(PowerKernel::kLegacy, threads));
    EXPECT_LE(LInfDistance(reference.scores, legacy.scores), kLInfTolerance)
        << "legacy global rank diverged at " << threads << " threads";
  }
}

TEST(SpmvKernelEquivalence, CancellationStopsFusedKernel) {
  RandomCase c = MakeRandomCase(4, /*papers=*/400, /*base_nodes=*/6);
  ObjectRankEngine engine(c.dblp.dataset.authority());
  ObjectRankOptions options = FixedWorkOptions(PowerKernel::kFused, 4);
  int calls = 0;
  options.cancel = [&calls] { return ++calls > 3; };
  const auto result = engine.Compute(c.base, c.rates, options);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.iterations, 3);
}

// A TransferRates change must never be served from a stale fused layout:
// results under rates B (after computing under rates A on the same
// engine) must match a fresh engine that only ever saw B.
TEST(FusedWeightCacheTest, RatesChangeInvalidatesFusedWeights) {
  RandomCase c = MakeRandomCase(6, /*papers=*/400, /*base_nodes=*/10);
  graph::TransferRates rates_b =
      datasets::DblpGroundTruthRates(c.dblp.dataset.schema(), c.dblp.types);
  const ObjectRankOptions options = FixedWorkOptions(PowerKernel::kFused, 2);

  ObjectRankEngine shared_engine(c.dblp.dataset.authority());
  const auto under_a = shared_engine.Compute(c.base, c.rates, options);
  const auto under_b = shared_engine.Compute(c.base, rates_b, options);

  ObjectRankEngine fresh_engine(c.dblp.dataset.authority());
  const auto fresh_b = fresh_engine.Compute(c.base, rates_b, options);
  EXPECT_EQ(LInfDistance(under_b.scores, fresh_b.scores), 0.0)
      << "stale fused weights served after a rates change";
  EXPECT_GT(LInfDistance(under_a.scores, under_b.scores), 0.0)
      << "distinct rates should rank differently";
}

TEST(FusedWeightCacheTest, MemoizesPerFingerprintAndSharesSources) {
  RandomCase c = MakeRandomCase(7, /*papers=*/300, /*base_nodes=*/4);
  const graph::AuthorityGraph& graph = c.dblp.dataset.authority();
  graph::TransferRates rates_b =
      datasets::DblpGroundTruthRates(c.dblp.dataset.schema(), c.dblp.types);

  graph::FusedWeightCache cache;
  const auto a1 = cache.Get(graph, c.rates);
  const auto a2 = cache.Get(graph, c.rates);
  EXPECT_EQ(a1.get(), a2.get()) << "same fingerprint must be memoized";
  EXPECT_EQ(cache.size(), 1u);

  const auto b = cache.Get(graph, rates_b);
  EXPECT_NE(a1.get(), b.get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(a1->rates_fingerprint(), b->rates_fingerprint());
  // The SELL structure is graph-only and shared across rate vectors.
  EXPECT_EQ(a1->shared_structure().get(), b->shared_structure().get());

  // Weights really are alpha * inv_out_deg for their own rates: check the
  // first row's slots against its node's in-edges, then the whole array
  // by mass (padding slots are exactly 0.0, so the sums match).
  const graph::SellStructure& sell = b->structure();
  const auto offsets = graph.in_offsets();
  const auto in_edges = graph.in_edges();
  const uint32_t v = sell.row_order[0];
  const uint64_t deg = offsets[v + 1] - offsets[v];
  ASSERT_GT(deg, 0u);
  for (const uint64_t j : {uint64_t{0}, deg - 1}) {
    EXPECT_DOUBLE_EQ(
        b->weights()[j * graph::SellStructure::kChunkRows],
        graph::AuthorityGraph::EdgeRate(in_edges[offsets[v] + j], rates_b));
  }
  double sell_mass = 0.0;
  for (uint64_t i = 0; i < sell.padded_slots(); ++i) {
    sell_mass += b->weights()[i];
  }
  double edge_mass = 0.0;
  for (const graph::AuthorityEdge& e : in_edges) {
    edge_mass += graph::AuthorityGraph::EdgeRate(e, rates_b);
  }
  EXPECT_NEAR(sell_mass, edge_mass, 1e-9 * edge_mass);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(FusedWeightCacheTest, EvictsLeastRecentlyUsedLayout) {
  RandomCase c = MakeRandomCase(8, /*papers=*/300, /*base_nodes=*/4);
  const graph::AuthorityGraph& graph = c.dblp.dataset.authority();
  graph::FusedWeightCache cache;
  for (uint32_t round = 0; round < 2 * graph::FusedWeightCache::kMaxLayouts;
       ++round) {
    graph::TransferRates rates(c.dblp.dataset.schema(),
                               0.01 + 0.02 * round);
    cache.Get(graph, rates);
  }
  EXPECT_EQ(cache.size(), graph::FusedWeightCache::kMaxLayouts);
}

TEST(BalancedPartitionTest, CoversRangeAndBalancesEdges) {
  RandomCase c = MakeRandomCase(9, /*papers=*/600, /*base_nodes=*/4);
  const graph::AuthorityGraph& graph = c.dblp.dataset.authority();
  const auto offsets = graph.in_offsets();
  const size_t n = graph.num_nodes();
  const uint64_t m = graph.num_edges();

  for (const size_t parts : {size_t{1}, size_t{2}, size_t{5}, size_t{8}}) {
    const auto bounds = graph::BalancedPartition(offsets, parts);
    ASSERT_EQ(bounds.size(), parts + 1);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), n);
    uint64_t max_part = 0;
    for (size_t t = 0; t < parts; ++t) {
      ASSERT_LE(bounds[t], bounds[t + 1]);
      max_part = std::max(max_part,
                          offsets[bounds[t + 1]] - offsets[bounds[t]]);
    }
    // Each part carries at most an even share plus one node's edges.
    uint64_t max_degree = 0;
    for (size_t v = 0; v < n; ++v) {
      max_degree = std::max(max_degree, offsets[v + 1] - offsets[v]);
    }
    EXPECT_LE(max_part, m / parts + max_degree);
  }
}

// perf_smoke: the fused kernel must sustain a (deliberately modest)
// throughput floor so the perf plumbing cannot silently rot — a broken
// dispatch path or accidental per-iteration rebuild shows up here long
// before a real benchmark runs. The floor is far below real hardware
// speed so sanitizer builds still pass.
TEST(SpmvKernelPerfSmoke, FusedKernelSustainsThroughputFloor) {
  RandomCase c = MakeRandomCase(10, /*papers=*/2000, /*base_nodes=*/16);
  ObjectRankEngine engine(c.dblp.dataset.authority());
  ObjectRankOptions options = FixedWorkOptions(PowerKernel::kFused, 2);
  options.max_iterations = 10;

  // Warm the fused layout, then time roughly a second of iterations.
  engine.Compute(c.base, c.rates, options);
  Timer timer;
  long long iterations = 0;
  while (timer.ElapsedSeconds() < 1.0) {
    iterations += engine.Compute(c.base, c.rates, options).iterations;
  }
  const double edges_per_second =
      static_cast<double>(iterations) *
      static_cast<double>(c.dblp.dataset.authority().num_edges()) /
      timer.ElapsedSeconds();
  EXPECT_GT(edges_per_second, 1e4);
}

}  // namespace
}  // namespace orx::core
