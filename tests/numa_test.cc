#include "common/numa.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "common/thread_pool.h"

namespace orx {
namespace {

TEST(ParseCpuListTest, SinglesRangesAndMixes) {
  EXPECT_EQ(ParseCpuList("0"), (std::vector<int>{0}));
  EXPECT_EQ(ParseCpuList("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(ParseCpuList("0-1,4,6-7"), (std::vector<int>{0, 1, 4, 6, 7}));
  // Trailing newline, as sysfs delivers it.
  EXPECT_EQ(ParseCpuList("2-3"), (std::vector<int>{2, 3}));
  // Duplicates collapse, order normalizes.
  EXPECT_EQ(ParseCpuList("3,1,3,1-2"), (std::vector<int>{1, 2, 3}));
}

TEST(ParseCpuListTest, MalformedItemsAreSkippedNotFatal) {
  EXPECT_TRUE(ParseCpuList("").empty());
  EXPECT_TRUE(ParseCpuList("abc").empty());
  EXPECT_TRUE(ParseCpuList("-3").empty());
  EXPECT_TRUE(ParseCpuList("5-2").empty());    // reversed range
  EXPECT_TRUE(ParseCpuList("0-999999").empty());  // absurd width
  EXPECT_EQ(ParseCpuList("x,4,y-z,7"), (std::vector<int>{4, 7}));
}

TEST(TopologyTest, AlwaysAtLeastOneNodeWithCpus) {
  const NumaTopology& topo = Topology();
  ASSERT_GE(topo.num_nodes(), 1u);
  for (size_t n = 0; n < topo.num_nodes(); ++n) {
    EXPECT_FALSE(topo.node_cpus[n].empty()) << "node " << n;
  }
  EXPECT_GE(topo.num_cpus(), 1u);
  EXPECT_NE(topo.ToString().find("node0"), std::string::npos);
}

TEST(TopologyTest, NodeOfCpuCoversListedCpusAndDefaultsToZero) {
  const NumaTopology& topo = Topology();
  for (size_t n = 0; n < topo.num_nodes(); ++n) {
    for (const int cpu : topo.node_cpus[n]) {
      EXPECT_EQ(topo.NodeOfCpu(cpu), static_cast<int>(n));
    }
  }
  EXPECT_EQ(topo.NodeOfCpu(1 << 20), 0);
}

TEST(NodeForWorkerTest, BlocksAreContiguousNodeMajorAndBalanced) {
  NumaTopology topo;
  topo.node_cpus = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {9, 10, 11}};
  // 10 workers on 4 nodes: blocks of 3, 3, 2, 2.
  std::vector<int> nodes;
  for (size_t w = 0; w < 10; ++w) {
    nodes.push_back(NodeForWorker(w, 10, topo));
  }
  EXPECT_EQ(nodes, (std::vector<int>{0, 0, 0, 1, 1, 1, 2, 2, 3, 3}));
  // Node assignments never decrease in worker order (node-major).
  for (size_t w = 1; w < nodes.size(); ++w) {
    EXPECT_GE(nodes[w], nodes[w - 1]);
  }
}

TEST(NodeForWorkerTest, EdgeCases) {
  NumaTopology one;
  one.node_cpus = {{0}};
  EXPECT_EQ(NodeForWorker(0, 4, one), 0);
  EXPECT_EQ(NodeForWorker(3, 4, one), 0);

  NumaTopology four;
  four.node_cpus = {{0}, {1}, {2}, {3}};
  // More nodes than workers: round-robin over the nodes.
  EXPECT_EQ(NodeForWorker(0, 2, four), 0);
  EXPECT_EQ(NodeForWorker(1, 2, four), 1);
  // Exactly one worker per node.
  for (size_t w = 0; w < 4; ++w) {
    EXPECT_EQ(NodeForWorker(w, 4, four), static_cast<int>(w));
  }
  EXPECT_EQ(NodeForWorker(0, 0, four), 0);
}

TEST(PinTest, OutOfRangeNodesAreRejected) {
  EXPECT_FALSE(PinCurrentThreadToNode(-1));
  EXPECT_FALSE(PinCurrentThreadToNode(1 << 20));
}

TEST(PinTest, ScopedAffinityIsBestEffortAndRestores) {
  // On a single-node machine pinning is deliberately a no-op; on a
  // multi-node one it must activate and restore without crashing.
  ScopedNodeAffinity pin(0);
  if (Topology().num_nodes() <= 1) {
    EXPECT_FALSE(pin.active());
  } else {
    EXPECT_TRUE(pin.active());
  }
}

TEST(AllocateFirstTouchTest, ReturnsAlignedZeroedStorage) {
  for (const size_t bytes : {size_t{64}, size_t{4096}, size_t{1} << 21}) {
    std::shared_ptr<void> buf = AllocateFirstTouch(bytes);
    ASSERT_NE(buf, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.get()) % 64, 0u);
    const unsigned char* p = static_cast<const unsigned char*>(buf.get());
    for (size_t i = 0; i < bytes; i += 509) {  // prime stride sample
      ASSERT_EQ(p[i], 0u) << "byte " << i;
    }
    // Writable.
    std::memset(buf.get(), 0xAB, bytes);
  }
}

TEST(ThreadPoolStartHookTest, HookRunsOncePerWorkerBeforeTasks) {
  std::atomic<int> hooks{0};
  std::vector<std::atomic<bool>> seen(4);
  for (auto& s : seen) s.store(false);
  ThreadPool pool(4, [&](size_t worker) {
    ASSERT_LT(worker, 4u);
    EXPECT_FALSE(seen[worker].exchange(true)) << "hook ran twice";
    hooks.fetch_add(1);
  });
  // Tasks observe their worker's hook as already run: the hook is
  // sequenced before WorkerLoop on the same thread.
  std::atomic<int> tasks{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&] {
      EXPECT_GE(hooks.load(), 1);
      tasks.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(tasks.load(), 64);
  EXPECT_EQ(hooks.load(), 4);
}

}  // namespace
}  // namespace orx
