#include <gtest/gtest.h>

#include "text/query.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace orx::text {
namespace {

// ----------------------------------------------------------------------
// Tokenizer
// ----------------------------------------------------------------------

TEST(TokenizerTest, LowercasesAndSplitsOnNonAlnum) {
  EXPECT_EQ(Tokenize("Data Cube: A Relational Aggregation!"),
            (std::vector<std::string>{"data", "cube", "a", "relational",
                                      "aggregation"}));
}

TEST(TokenizerTest, KeepsDigits) {
  EXPECT_EQ(Tokenize("ICDE 1997"),
            (std::vector<std::string>{"icde", "1997"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("!!! --- ...").empty());
}

TEST(TokenizerTest, ForIndexDropsStopwordsAndSingleChars) {
  EXPECT_EQ(TokenizeForIndex("The Range of a Query"),
            (std::vector<std::string>{"range", "query"}));
}

TEST(TokenizerTest, NormalizeTerm) {
  EXPECT_EQ(NormalizeTerm("OLAP!"), "olap");
  EXPECT_EQ(NormalizeTerm("..."), "");
}

// ----------------------------------------------------------------------
// Stopwords
// ----------------------------------------------------------------------

TEST(StopwordsTest, CommonWordsAreStopwords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("and"));
  EXPECT_TRUE(IsStopword("of"));
  EXPECT_FALSE(IsStopword("olap"));
  EXPECT_FALSE(IsStopword("cube"));
  EXPECT_GT(StopwordCount(), 50);
}

// ----------------------------------------------------------------------
// Query / QueryVector
// ----------------------------------------------------------------------

TEST(QueryTest, ParseQuery) {
  EXPECT_EQ(ParseQuery("Query, Optimization"),
            (Query{"query", "optimization"}));
  EXPECT_TRUE(ParseQuery("").empty());
}

TEST(QueryVectorTest, InitialWeightsAreOne) {
  QueryVector q(Query{"olap", "cube"});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_DOUBLE_EQ(q.Weight("olap"), 1.0);
  EXPECT_DOUBLE_EQ(q.Weight("cube"), 1.0);
  EXPECT_DOUBLE_EQ(q.Weight("absent"), 0.0);
  EXPECT_TRUE(q.Contains("olap"));
  EXPECT_FALSE(q.Contains("absent"));
}

TEST(QueryVectorTest, DuplicateKeywordsCollapse) {
  QueryVector q(Query{"olap", "OLAP", "olap"});
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.Weight("olap"), 1.0);
}

TEST(QueryVectorTest, AddWeightInsertsOrBumps) {
  QueryVector q(Query{"olap"});
  q.AddWeight("cubes", 0.5);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_DOUBLE_EQ(q.Weight("cubes"), 0.5);
  q.AddWeight("olap", 1.0);
  EXPECT_DOUBLE_EQ(q.Weight("olap"), 2.0);
  // Term order preserved: original first, expansions appended.
  EXPECT_EQ(q.terms()[0], "olap");
  EXPECT_EQ(q.terms()[1], "cubes");
}

TEST(QueryVectorTest, SetWeightAndScale) {
  QueryVector q(Query{"a1", "b1"});
  q.SetWeight("a1", 3.0);
  q.Scale(0.5);
  EXPECT_DOUBLE_EQ(q.Weight("a1"), 1.5);
  EXPECT_DOUBLE_EQ(q.Weight("b1"), 0.5);
}

TEST(QueryVectorTest, AverageWeight) {
  QueryVector empty;
  EXPECT_DOUBLE_EQ(empty.AverageWeight(), 0.0);
  QueryVector q(Query{"x1", "y1"});
  q.SetWeight("x1", 2.0);
  EXPECT_DOUBLE_EQ(q.AverageWeight(), 1.5);
}

TEST(QueryVectorTest, ToStringFormat) {
  QueryVector q(Query{"olap"});
  q.AddWeight("cubes", 0.99);
  EXPECT_EQ(q.ToString(), "[olap, cubes] = [1.00, 0.99]");
}

}  // namespace
}  // namespace orx::text
