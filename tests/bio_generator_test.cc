#include "datasets/bio_generator.h"

#include <gtest/gtest.h>

#include "graph/conformance.h"
#include "text/tokenizer.h"

namespace orx::datasets {
namespace {

TEST(BioGeneratorTest, NodeCountsMatchConfig) {
  BioGeneratorConfig config = BioGeneratorConfig::Tiny(400, 3);
  BioDataset bio = GenerateBio(config);
  EXPECT_EQ(bio.dataset.data().num_nodes(),
            config.num_pubmed + config.num_genes + config.num_proteins +
                config.num_nucleotides);
}

TEST(BioGeneratorTest, ConformsToSchema) {
  BioDataset bio = GenerateBio(BioGeneratorConfig::Tiny(300, 4));
  EXPECT_TRUE(
      graph::CheckConformance(bio.dataset.data(), bio.dataset.schema()).ok());
}

TEST(BioGeneratorTest, Deterministic) {
  BioDataset a = GenerateBio(BioGeneratorConfig::Tiny(200, 5));
  BioDataset b = GenerateBio(BioGeneratorConfig::Tiny(200, 5));
  EXPECT_EQ(a.dataset.data().num_edges(), b.dataset.data().num_edges());
}

TEST(BioGeneratorTest, EveryNucleotideLinksGeneAndProtein) {
  BioDataset bio = GenerateBio(BioGeneratorConfig::Tiny(150, 6));
  const graph::DataGraph& data = bio.dataset.data();
  std::vector<int> gene_links(data.num_nodes(), 0);
  std::vector<int> protein_links(data.num_nodes(), 0);
  for (const graph::DataEdge& e : data.edges()) {
    if (e.type == bio.types.nucleotide_gene) ++gene_links[e.from];
    if (e.type == bio.types.nucleotide_protein) ++protein_links[e.from];
  }
  for (graph::NodeId v = 0; v < data.num_nodes(); ++v) {
    if (data.NodeType(v) != bio.types.nucleotide) continue;
    EXPECT_EQ(gene_links[v], 1);
    EXPECT_EQ(protein_links[v], 1);
  }
}

TEST(BioGeneratorTest, CancerKeywordExists) {
  BioDataset bio = GenerateBio(BioGeneratorConfig::Tiny(2000, 7));
  EXPECT_TRUE(bio.dataset.corpus().TermIdOf("cancer").has_value());
}

TEST(BioSubsetTest, CancerSubsetIsProperAndSeededCorrectly) {
  BioDataset full = GenerateBio(BioGeneratorConfig::Tiny(2500, 8));
  BioDataset subset = ExtractBioSubset(full, "cancer");

  const graph::DataGraph& sub = subset.dataset.data();
  ASSERT_GT(sub.num_nodes(), 0u);
  EXPECT_LT(sub.num_nodes(), full.dataset.data().num_nodes());
  EXPECT_TRUE(
      graph::CheckConformance(sub, subset.dataset.schema()).ok());

  // Every PubMed node more than one hop from a cancer publication is
  // excluded; conversely every kept non-PubMed entity must touch a cancer
  // publication. Verify the seeding rule: all *seed* docs contain the
  // term; entities were added as 1-hop neighbors.
  auto term = subset.dataset.corpus().TermIdOf("cancer");
  ASSERT_TRUE(term.has_value());

  // Every kept PubMed node IS a cancer publication (the expansion only
  // adds non-publication entities; Section 6's subset rule).
  for (graph::NodeId v = 0; v < sub.num_nodes(); ++v) {
    if (sub.NodeType(v) != subset.types.pubmed) continue;
    bool contains = false;
    for (const text::DocTerm& dt : subset.dataset.corpus().DocTerms(v)) {
      contains |= dt.term == *term;
    }
    EXPECT_TRUE(contains) << "non-cancer publication " << v << " kept";
  }

  // Each kept node is a cancer pub or adjacent to one.
  std::vector<bool> is_cancer_pub(sub.num_nodes(), false);
  for (const text::Posting& p : subset.dataset.corpus().Postings(*term)) {
    if (sub.NodeType(p.doc) == subset.types.pubmed) {
      is_cancer_pub[p.doc] = true;
    }
  }
  std::vector<bool> near(sub.num_nodes(), false);
  for (graph::NodeId v = 0; v < sub.num_nodes(); ++v) {
    if (is_cancer_pub[v]) near[v] = true;
  }
  for (const graph::DataEdge& e : sub.edges()) {
    if (is_cancer_pub[e.from]) near[e.to] = true;
    if (is_cancer_pub[e.to]) near[e.from] = true;
  }
  for (graph::NodeId v = 0; v < sub.num_nodes(); ++v) {
    EXPECT_TRUE(near[v]) << "node " << v
                         << " is not adjacent to any cancer publication";
  }
}

TEST(BioSubsetTest, UnknownKeywordYieldsEmptyDataset) {
  BioDataset full = GenerateBio(BioGeneratorConfig::Tiny(200, 9));
  BioDataset subset = ExtractBioSubset(full, "zzznotaterm");
  EXPECT_EQ(subset.dataset.data().num_nodes(), 0u);
}

TEST(BioGeneratorTest, Ds7PresetNodeArithmetic) {
  BioGeneratorConfig config = BioGeneratorConfig::Ds7();
  const size_t nodes = config.num_pubmed + config.num_genes +
                       config.num_proteins + config.num_nucleotides;
  EXPECT_EQ(nodes, 699'000u);  // Table 1: 699,199
}

}  // namespace
}  // namespace orx::datasets
