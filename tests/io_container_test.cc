#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <string>

#include "core/searcher.h"
#include "datasets/dblp_generator.h"
#include "datasets/dblp_schema.h"
#include "datasets/figure1.h"
#include "io/container.h"
#include "io/snapshot_io.h"
#include "text/query.h"

namespace orx::io {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

ContainerHeader HeaderOf(const std::string& bytes) {
  ContainerHeader h;
  std::memcpy(&h, bytes.data(), sizeof(h));
  return h;
}

void PutHeader(std::string& bytes, const ContainerHeader& h) {
  std::memcpy(bytes.data(), &h, sizeof(h));
}

/// Index of the TOC entry named `name`, or -1.
int FindSection(const std::string& bytes, const char* name) {
  const ContainerHeader h = HeaderOf(bytes);
  for (uint32_t i = 0; i < h.section_count; ++i) {
    SectionEntry e;
    std::memcpy(&e, bytes.data() + h.toc_offset + i * sizeof(SectionEntry),
                sizeof(e));
    if (std::strncmp(e.name, name, sizeof(e.name)) == 0) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

SectionEntry GetSection(const std::string& bytes, int index) {
  SectionEntry e;
  std::memcpy(&e,
              bytes.data() + HeaderOf(bytes).toc_offset +
                  static_cast<size_t>(index) * sizeof(SectionEntry),
              sizeof(e));
  return e;
}

void PutSection(std::string& bytes, int index, const SectionEntry& e) {
  std::memcpy(bytes.data() + HeaderOf(bytes).toc_offset +
                  static_cast<size_t>(index) * sizeof(SectionEntry),
              &e, sizeof(e));
}

/// A Figure 1 dataset written as an ORXD2 container.
struct PackedFigure1 {
  datasets::Figure1Dataset fig;
  graph::TransferRates rates;
  std::string path;
};

PackedFigure1 MakePackedFigure1(const std::string& filename) {
  PackedFigure1 p{datasets::MakeFigure1Dataset(), {}, TempPath(filename)};
  p.rates =
      datasets::DblpGroundTruthRates(p.fig.dataset.schema(), p.fig.types);
  EXPECT_TRUE(WriteDatasetContainer(p.fig.dataset, p.rates, p.path).ok());
  return p;
}

TEST(ContainerFormatTest, HeaderAndEntryAre64Bytes) {
  EXPECT_EQ(sizeof(ContainerHeader), 64u);
  EXPECT_EQ(sizeof(SectionEntry), 64u);
}

TEST(ContainerWriterTest, SectionsAreAlignedAndHashed) {
  const std::string path = TempPath("writer_basic.orxd2");
  std::vector<uint32_t> a = {1, 2, 3};
  std::vector<double> b = {0.5, 0.25};
  ContainerWriter writer(kDatasetMagic);
  writer.Add<uint32_t>("a", a);
  writer.Add<double>("b", b);
  ASSERT_TRUE(writer.WriteTo(path).ok());

  auto mapped = MappedContainer::Open(path, kDatasetMagic);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped->VerifyHashes().ok());
  auto sa = mapped->Section<uint32_t>("a");
  ASSERT_TRUE(sa.ok());
  ASSERT_EQ(sa->size(), 3u);
  EXPECT_EQ((*sa)[2], 3u);
  // Zero-copy: the section aliases the mapping and is 64-byte aligned.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(sa->data()) % kSectionAlign, 0u);
  auto sb = mapped->Section<double>("b");
  ASSERT_TRUE(sb.ok());
  EXPECT_EQ((*sb)[1], 0.25);
  // Wrong element type and missing names are errors, not garbage reads.
  EXPECT_FALSE(mapped->Section<uint64_t>("a").ok());
  EXPECT_EQ(mapped->Bytes("nope").status().code(), StatusCode::kNotFound);
}

TEST(MappedDatasetTest, RoundTripMatchesInMemoryDataset) {
  datasets::DblpDataset dblp = datasets::GenerateDblp(
      datasets::DblpGeneratorConfig::Tiny(/*papers=*/300, /*seed=*/17));
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  const std::string path = TempPath("roundtrip.orxd2");
  ASSERT_TRUE(WriteDatasetContainer(dblp.dataset, rates, path).ok());

  auto mapped = OpenMappedDataset(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const MappedDataset& m = **mapped;
  EXPECT_EQ(m.name(), dblp.dataset.name());

  const graph::DataGraph& a = dblp.dataset.data();
  const graph::DataGraph& b = m.data();
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (graph::NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.NodeType(v), b.NodeType(v));
    ASSERT_EQ(a.Text(v), b.Text(v)) << "node " << v;
  }
  ASSERT_EQ(m.corpus().vocab_size(), dblp.dataset.corpus().vocab_size());
  EXPECT_EQ(m.corpus().avdl(), dblp.dataset.corpus().avdl());
  ASSERT_EQ(m.rates().slots(), rates.slots());

  // The acceptance bar: scores computed over the mmap-attached dataset
  // are bit-identical to the in-memory path (same arrays, same SELL
  // order, -ffp-contract=off kernels).
  core::Searcher original(a, dblp.dataset.authority(),
                          dblp.dataset.corpus());
  core::Searcher loaded(b, m.authority(), m.corpus());
  for (const char* q : {"database", "query optimization", "streams"}) {
    text::QueryVector query(text::ParseQuery(q));
    auto ra = original.Search(query, rates);
    auto rb = loaded.Search(query, rates);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    ASSERT_EQ(ra->scores.size(), rb->scores.size());
    for (size_t v = 0; v < ra->scores.size(); ++v) {
      ASSERT_EQ(ra->scores[v], rb->scores[v]) << "query " << q << " node "
                                              << v;
    }
  }
}

TEST(MappedDatasetTest, SnapshotAliasesMappingAndSeedsWeightCache) {
  PackedFigure1 p = MakePackedFigure1("snapshot.orxd2");
  auto mapped = OpenMappedDataset(p.path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  serve::ServeSnapshot snapshot = SnapshotFromMapped(*mapped);
  ASSERT_TRUE(snapshot.Complete());
  EXPECT_EQ(snapshot.data.get(), &(*mapped)->data());
  // The weight cache hands back the mmap-backed layout for the serving
  // rates without building anything.
  auto layout = snapshot.fused_cache->Get(*snapshot.authority,
                                          snapshot.rates);
  EXPECT_EQ(layout.get(), (*mapped)->layout().get());

  core::Searcher searcher(*snapshot.data, *snapshot.authority,
                          *snapshot.corpus);
  text::QueryVector query(text::ParseQuery("olap"));
  auto result = searcher.Search(query, snapshot.rates);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->scores[p.fig.v7_data_cube], 0.083, 0.001);
}

TEST(MappedDatasetTest, MissingFileIsNotFound) {
  EXPECT_EQ(OpenMappedDataset("/nonexistent/x.orxd2").status().code(),
            StatusCode::kNotFound);
}

TEST(MappedDatasetTest, RejectsWrongMagic) {
  PackedFigure1 p = MakePackedFigure1("wrong_magic.orxd2");
  // An ORXD2 file is not an ORXC2 rank cache.
  EXPECT_EQ(OpenMappedRankCache(p.path).status().code(),
            StatusCode::kDataLoss);
  std::string bytes = ReadFileBytes(p.path);
  bytes[0] = 'X';
  WriteFileBytes(p.path, bytes);
  EXPECT_EQ(OpenMappedDataset(p.path).status().code(),
            StatusCode::kDataLoss);
}

TEST(MappedDatasetTest, RejectsTruncation) {
  PackedFigure1 p = MakePackedFigure1("truncated.orxd2");
  const std::string bytes = ReadFileBytes(p.path);
  for (size_t cut : {size_t{0}, size_t{17}, sizeof(ContainerHeader) - 1,
                     bytes.size() / 2, bytes.size() - 1}) {
    WriteFileBytes(p.path, bytes.substr(0, cut));
    auto result = OpenMappedDataset(p.path);
    ASSERT_FALSE(result.ok()) << "cut at " << cut;
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss)
        << "cut at " << cut;
  }
}

TEST(MappedDatasetTest, RejectsHostileTocOffsets) {
  PackedFigure1 p = MakePackedFigure1("hostile_toc.orxd2");
  const std::string pristine = ReadFileBytes(p.path);

  {
    // TOC offset beyond the file.
    std::string bytes = pristine;
    ContainerHeader h = HeaderOf(bytes);
    h.toc_offset = h.file_size + kSectionAlign;
    PutHeader(bytes, h);
    WriteFileBytes(p.path, bytes);
    EXPECT_EQ(OpenMappedDataset(p.path).status().code(),
              StatusCode::kDataLoss);
  }
  {
    // Misaligned TOC.
    std::string bytes = pristine;
    ContainerHeader h = HeaderOf(bytes);
    h.toc_offset += 8;
    PutHeader(bytes, h);
    WriteFileBytes(p.path, bytes);
    EXPECT_EQ(OpenMappedDataset(p.path).status().code(),
              StatusCode::kDataLoss);
  }
  {
    // Section count engineered so count * sizeof(SectionEntry) overflows
    // if computed naively.
    std::string bytes = pristine;
    ContainerHeader h = HeaderOf(bytes);
    h.section_count = 0x40000000u;
    PutHeader(bytes, h);
    WriteFileBytes(p.path, bytes);
    EXPECT_EQ(OpenMappedDataset(p.path).status().code(),
              StatusCode::kDataLoss);
  }
  {
    // file_size lies about the mapping length.
    std::string bytes = pristine;
    ContainerHeader h = HeaderOf(bytes);
    h.file_size -= 1;
    PutHeader(bytes, h);
    WriteFileBytes(p.path, bytes);
    EXPECT_EQ(OpenMappedDataset(p.path).status().code(),
              StatusCode::kDataLoss);
  }
}

TEST(MappedDatasetTest, RejectsHostileSectionEntries) {
  PackedFigure1 p = MakePackedFigure1("hostile_section.orxd2");
  const std::string pristine = ReadFileBytes(p.path);
  const int edges = FindSection(pristine, "edges");
  ASSERT_GE(edges, 0);

  {
    // Payload escaping the file: offset + size overflows past the end.
    std::string bytes = pristine;
    SectionEntry e = GetSection(bytes, edges);
    e.offset = HeaderOf(bytes).file_size - kSectionAlign;
    PutSection(bytes, edges, e);
    WriteFileBytes(p.path, bytes);
    EXPECT_EQ(OpenMappedDataset(p.path).status().code(),
              StatusCode::kDataLoss);
  }
  {
    // Offset engineered so offset + size wraps around 2^64.
    std::string bytes = pristine;
    SectionEntry e = GetSection(bytes, edges);
    e.offset = ~uint64_t{0} - kSectionAlign + 1;
    PutSection(bytes, edges, e);
    WriteFileBytes(p.path, bytes);
    EXPECT_EQ(OpenMappedDataset(p.path).status().code(),
              StatusCode::kDataLoss);
  }
  {
    // Misaligned payload breaks the zero-copy casts.
    std::string bytes = pristine;
    SectionEntry e = GetSection(bytes, edges);
    e.offset += 4;
    PutSection(bytes, edges, e);
    WriteFileBytes(p.path, bytes);
    EXPECT_EQ(OpenMappedDataset(p.path).status().code(),
              StatusCode::kDataLoss);
  }
  {
    // Element accounting that disagrees with the byte size.
    std::string bytes = pristine;
    SectionEntry e = GetSection(bytes, edges);
    e.elem_count += 1;
    PutSection(bytes, edges, e);
    WriteFileBytes(p.path, bytes);
    EXPECT_EQ(OpenMappedDataset(p.path).status().code(),
              StatusCode::kDataLoss);
  }
  {
    // A name without a NUL terminator must not be read as a string.
    std::string bytes = pristine;
    SectionEntry e = GetSection(bytes, edges);
    std::memset(e.name, 'A', sizeof(e.name));
    PutSection(bytes, edges, e);
    WriteFileBytes(p.path, bytes);
    EXPECT_EQ(OpenMappedDataset(p.path).status().code(),
              StatusCode::kDataLoss);
  }
}

TEST(MappedDatasetTest, DeepValidationCatchesPayloadCorruption) {
  PackedFigure1 p = MakePackedFigure1("corrupt_payload.orxd2");
  std::string bytes = ReadFileBytes(p.path);
  const int edges = FindSection(bytes, "edges");
  ASSERT_GE(edges, 0);
  const SectionEntry e = GetSection(bytes, edges);
  // Flip one payload byte without updating the hash.
  bytes[e.offset] ^= 0x01;
  WriteFileBytes(p.path, bytes);
  auto result = OpenMappedDataset(p.path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(result.status().ToString().find("hash"), std::string::npos);
}

TEST(MappedDatasetTest, DeepValidationCatchesSchemaViolatingEdges) {
  PackedFigure1 p = MakePackedFigure1("bad_edge.orxd2");
  std::string bytes = ReadFileBytes(p.path);
  const int edges = FindSection(bytes, "edges");
  ASSERT_GE(edges, 0);
  SectionEntry e = GetSection(bytes, edges);
  ASSERT_GT(e.elem_count, 0u);
  // Point the first edge's target at a nonexistent node, then recompute
  // the section hash so only the deep per-edge validator can object.
  graph::DataEdge first;
  std::memcpy(&first, bytes.data() + e.offset, sizeof(first));
  first.to = 0xFFFFFF00u;
  std::memcpy(bytes.data() + e.offset, &first, sizeof(first));
  e.hash = Fnv1a({bytes.data() + e.offset, static_cast<size_t>(e.size)});
  PutSection(bytes, edges, e);
  WriteFileBytes(p.path, bytes);

  auto deep = OpenMappedDataset(p.path);
  ASSERT_FALSE(deep.ok());
  // The fast path skips per-edge validation by design (trusted inputs).
  MappedDatasetOptions fast;
  fast.deep_validate = false;
  EXPECT_TRUE(OpenMappedDataset(p.path, fast).ok());
}

TEST(MappedRankCacheTest, RoundTripIsExact) {
  datasets::Figure1Dataset fig = datasets::MakeFigure1Dataset();
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(fig.dataset.schema(), fig.types);
  core::RankCache::Options options;
  core::RankCache cache =
      core::RankCache::Build(fig.dataset.authority(), fig.dataset.corpus(),
                             rates, options);
  ASSERT_GT(cache.Terms().size(), 0u);

  const std::string path = TempPath("cache.orxc2");
  ASSERT_TRUE(WriteRankCacheContainer(cache, path).ok());
  auto loaded = OpenMappedRankCache(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->num_nodes(), cache.num_nodes());
  EXPECT_EQ(loaded->rates_fingerprint(), cache.rates_fingerprint());
  ASSERT_EQ(loaded->Terms(), cache.Terms());
  // Bit-exact: the packed representations must agree float for float.
  const core::RankCache::PackedEntries a = cache.PackEntries();
  const core::RankCache::PackedEntries b = loaded->PackEntries();
  EXPECT_EQ(a.offsets, b.offsets);
  EXPECT_EQ(a.heap, b.heap);
  EXPECT_EQ(a.masses, b.masses);
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (size_t i = 0; i < a.scores.size(); ++i) {
    ASSERT_EQ(a.scores[i], b.scores[i]) << "score " << i;
  }
}

TEST(MappedRankCacheTest, RejectsTruncationAndWrongMagic) {
  datasets::Figure1Dataset fig = datasets::MakeFigure1Dataset();
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(fig.dataset.schema(), fig.types);
  core::RankCache cache =
      core::RankCache::Build(fig.dataset.authority(), fig.dataset.corpus(),
                             rates, core::RankCache::Options());
  const std::string path = TempPath("cache_hostile.orxc2");
  ASSERT_TRUE(WriteRankCacheContainer(cache, path).ok());
  // An ORXC2 file is not a dataset.
  EXPECT_EQ(OpenMappedDataset(path).status().code(), StatusCode::kDataLoss);
  const std::string bytes = ReadFileBytes(path);
  WriteFileBytes(path, bytes.substr(0, bytes.size() / 2));
  EXPECT_EQ(OpenMappedRankCache(path).status().code(),
            StatusCode::kDataLoss);
}

}  // namespace
}  // namespace orx::io
