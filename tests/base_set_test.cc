#include "core/base_set.h"

#include <gtest/gtest.h>

namespace orx::core {
namespace {

class BaseSetTest : public ::testing::Test {
 protected:
  BaseSetTest() {
    paper_ = *schema_.AddNodeType("Paper");
    data_ = std::make_unique<graph::DataGraph>(schema_);
    d0_ = *data_->AddNode(paper_, {{"Title", "olap index selection"}});
    d1_ = *data_->AddNode(paper_, {{"Title", "olap olap range queries"}});
    d2_ = *data_->AddNode(paper_, {{"Title", "unrelated warehouse design"}});
    corpus_ = std::make_unique<text::Corpus>(text::Corpus::Build(*data_));
  }

  graph::SchemaGraph schema_;
  graph::TypeId paper_;
  std::unique_ptr<graph::DataGraph> data_;
  graph::NodeId d0_, d1_, d2_;
  std::unique_ptr<text::Corpus> corpus_;
};

TEST_F(BaseSetTest, MembershipByKeywordContainment) {
  text::QueryVector q(text::Query{"olap"});
  auto base = BuildBaseSet(*corpus_, q);
  ASSERT_TRUE(base.ok());
  ASSERT_EQ(base->size(), 2u);
  EXPECT_EQ(base->entries[0].first, d0_);
  EXPECT_EQ(base->entries[1].first, d1_);
}

TEST_F(BaseSetTest, WeightsSumToOne) {
  text::QueryVector q(text::Query{"olap", "warehouse"});
  auto base = BuildBaseSet(*corpus_, q);
  ASSERT_TRUE(base.ok());
  EXPECT_NEAR(base->WeightSum(), 1.0, 1e-12);
  for (const auto& [node, w] : base->entries) EXPECT_GT(w, 0.0);
}

TEST_F(BaseSetTest, IrWeightingFavorsHigherTf) {
  text::QueryVector q(text::Query{"olap"});
  auto base = BuildBaseSet(*corpus_, q, BaseSetMode::kIrWeighted);
  ASSERT_TRUE(base.ok());
  // d1 has tf=2 vs d0 tf=1 (and d1 is longer; BM25 tf factor still wins).
  double w0 = 0, w1 = 0;
  for (const auto& [node, w] : base->entries) {
    if (node == d0_) w0 = w;
    if (node == d1_) w1 = w;
  }
  EXPECT_GT(w1, w0);
}

TEST_F(BaseSetTest, UniformModeIgnoresScores) {
  text::QueryVector q(text::Query{"olap"});
  auto base = BuildBaseSet(*corpus_, q, BaseSetMode::kUniform);
  ASSERT_TRUE(base.ok());
  for (const auto& [node, w] : base->entries) {
    EXPECT_DOUBLE_EQ(w, 0.5);
  }
}

TEST_F(BaseSetTest, MissingKeywordsError) {
  text::QueryVector q(text::Query{"nonexistentterm"});
  EXPECT_EQ(BuildBaseSet(*corpus_, q).status().code(),
            StatusCode::kNotFound);
}

TEST_F(BaseSetTest, EmptyQueryError) {
  text::QueryVector q;
  EXPECT_EQ(BuildBaseSet(*corpus_, q).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(BaseSetTest, UbiquitousTermStillYieldsValidProbabilities) {
  // A term occurring in every document has tiny-but-positive idf (the
  // smoothed form); the base set must remain a valid distribution, with
  // BM25's length normalization slightly favoring the shorter document.
  graph::DataGraph data(schema_);
  graph::NodeId longer =
      *data.AddNode(paper_, {{"Title", "shared term alphaaaaaa"}});
  graph::NodeId shorter =
      *data.AddNode(paper_, {{"Title", "shared term beta"}});
  text::Corpus corpus = text::Corpus::Build(data);
  text::QueryVector q(text::Query{"shared"});
  auto base = BuildBaseSet(corpus, q, BaseSetMode::kIrWeighted);
  ASSERT_TRUE(base.ok());
  ASSERT_EQ(base->size(), 2u);
  EXPECT_NEAR(base->WeightSum(), 1.0, 1e-12);
  double w_long = 0, w_short = 0;
  for (const auto& [node, w] : base->entries) {
    if (node == longer) w_long = w;
    if (node == shorter) w_short = w;
  }
  EXPECT_GT(w_short, w_long);
  EXPECT_GT(w_long, 0.0);
}

TEST_F(BaseSetTest, GlobalBaseSetIsUniformOverAllNodes) {
  BaseSet global = GlobalBaseSet(4);
  ASSERT_EQ(global.size(), 4u);
  EXPECT_NEAR(global.WeightSum(), 1.0, 1e-12);
  for (const auto& [node, w] : global.entries) EXPECT_DOUBLE_EQ(w, 0.25);
}

TEST_F(BaseSetTest, SingleTermBaseSet) {
  auto base = SingleTermBaseSet(*corpus_, "olap");
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->size(), 2u);
  EXPECT_NEAR(base->WeightSum(), 1.0, 1e-12);
  EXPECT_EQ(SingleTermBaseSet(*corpus_, "zzz").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace orx::core
