#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace orx {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 3);
  pool.Wait();  // idempotent with nothing queued
}

TEST(ThreadPoolTest, WaitWithoutTasksReturnsImmediately) {
  ThreadPool pool(3);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversEachIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSmallRanges) {
  ThreadPool pool(8);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
  std::atomic<int> count{0};
  // Fewer indices than workers.
  pool.ParallelFor(3, [&count](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, DisjointSlotWritesNeedNoSynchronization) {
  // The RankCache build pattern: one output slot per task, merged after
  // Wait. The sum over slots must equal the sequential result.
  ThreadPool pool(4);
  constexpr size_t kN = 500;
  std::vector<long long> slots(kN, 0);
  pool.ParallelFor(kN, [&slots](size_t i) {
    slots[i] = static_cast<long long>(i) * static_cast<long long>(i);
  });
  long long expected = 0;
  for (size_t i = 0; i < kN; ++i) {
    expected += static_cast<long long>(i) * static_cast<long long>(i);
  }
  EXPECT_EQ(std::accumulate(slots.begin(), slots.end(), 0ll), expected);
}

TEST(ThreadPoolTest, TasksMaySubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&pool, &count] {
    count.fetch_add(1);
    pool.Submit([&count] { count.fetch_add(1); });
  });
  pool.Wait();  // must also cover the nested task
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, ZeroRequestsHardwareThreads) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  EXPECT_EQ(pool.num_threads(), ThreadPool::HardwareThreads());
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // No Wait: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

}  // namespace
}  // namespace orx
