#include "text/corpus.h"

#include <gtest/gtest.h>

#include "graph/data_graph.h"

namespace orx::text {
namespace {

class CorpusTest : public ::testing::Test {
 protected:
  CorpusTest() {
    paper_ = *schema_.AddNodeType("Paper");
    data_ = std::make_unique<graph::DataGraph>(schema_);
    d0_ = *data_->AddNode(paper_, {{"Title", "olap cube olap"}});
    d1_ = *data_->AddNode(paper_, {{"Title", "range queries cube"}});
    d2_ = *data_->AddNode(paper_, {{"Title", "the of and"}});  // stopwords
    corpus_ = std::make_unique<Corpus>(Corpus::Build(*data_));
  }

  graph::SchemaGraph schema_;
  graph::TypeId paper_;
  std::unique_ptr<graph::DataGraph> data_;
  graph::NodeId d0_, d1_, d2_;
  std::unique_ptr<Corpus> corpus_;
};

TEST_F(CorpusTest, BasicCounts) {
  EXPECT_EQ(corpus_->num_docs(), 3u);
  // olap, cube, range, queries (stopwords dropped).
  EXPECT_EQ(corpus_->vocab_size(), 4u);
}

TEST_F(CorpusTest, TermLookup) {
  EXPECT_TRUE(corpus_->TermIdOf("olap").has_value());
  EXPECT_TRUE(corpus_->TermIdOf("cube").has_value());
  EXPECT_FALSE(corpus_->TermIdOf("absent").has_value());
  EXPECT_FALSE(corpus_->TermIdOf("the").has_value());  // stopword
  TermId olap = *corpus_->TermIdOf("olap");
  EXPECT_EQ(corpus_->TermString(olap), "olap");
}

TEST_F(CorpusTest, DocumentFrequency) {
  EXPECT_EQ(corpus_->Df(*corpus_->TermIdOf("olap")), 1u);
  EXPECT_EQ(corpus_->Df(*corpus_->TermIdOf("cube")), 2u);
}

TEST_F(CorpusTest, TermFrequency) {
  TermId olap = *corpus_->TermIdOf("olap");
  TermId cube = *corpus_->TermIdOf("cube");
  EXPECT_EQ(corpus_->Tf(d0_, olap), 2u);
  EXPECT_EQ(corpus_->Tf(d0_, cube), 1u);
  EXPECT_EQ(corpus_->Tf(d1_, olap), 0u);
  EXPECT_TRUE(corpus_->DocContains(d0_, olap));
  EXPECT_FALSE(corpus_->DocContains(d1_, olap));
}

TEST_F(CorpusTest, PostingsOrderedByDoc) {
  TermId cube = *corpus_->TermIdOf("cube");
  auto postings = corpus_->Postings(cube);
  ASSERT_EQ(postings.size(), 2u);
  EXPECT_EQ(postings[0].doc, d0_);
  EXPECT_EQ(postings[1].doc, d1_);
  EXPECT_EQ(postings[0].tf, 1u);
}

TEST_F(CorpusTest, ForwardIndexMatchesInvertedIndex) {
  size_t forward_total = 0;
  for (graph::NodeId v = 0; v < corpus_->num_docs(); ++v) {
    forward_total += corpus_->DocTerms(v).size();
  }
  size_t inverted_total = 0;
  for (TermId t = 0; t < corpus_->vocab_size(); ++t) {
    inverted_total += corpus_->Postings(t).size();
  }
  EXPECT_EQ(forward_total, inverted_total);
}

TEST_F(CorpusTest, DocLengthInCharacters) {
  // dl is measured in characters (Equation 3's definition).
  EXPECT_EQ(corpus_->DocLengthChars(d0_), std::string("olap cube olap").size());
  const double expected_avdl =
      (std::string("olap cube olap").size() +
       std::string("range queries cube").size() +
       std::string("the of and").size()) /
      3.0;
  EXPECT_DOUBLE_EQ(corpus_->avdl(), expected_avdl);
}

TEST_F(CorpusTest, StopwordOnlyDocHasNoTerms) {
  EXPECT_TRUE(corpus_->DocTerms(d2_).empty());
}

TEST(CorpusEmptyTest, EmptyGraph) {
  graph::SchemaGraph schema;
  *schema.AddNodeType("Paper");
  graph::DataGraph data(schema);
  Corpus corpus = Corpus::Build(data);
  EXPECT_EQ(corpus.num_docs(), 0u);
  EXPECT_EQ(corpus.vocab_size(), 0u);
  EXPECT_DOUBLE_EQ(corpus.avdl(), 0.0);
}

TEST(CorpusMetadataTest, AttributeNamesIndexedOnRequest) {
  graph::SchemaGraph schema;
  graph::TypeId year = *schema.AddNodeType("Year");
  graph::DataGraph data(schema);
  graph::NodeId v = *data.AddNode(
      year, {{"Location", "Birmingham"}, {"Forum", "ICDE"}});

  // Default: only values are keywords.
  Corpus plain = Corpus::Build(data);
  EXPECT_FALSE(plain.TermIdOf("location").has_value());
  EXPECT_TRUE(plain.TermIdOf("birmingham").has_value());

  // With metadata indexing, attribute names become keywords too
  // (Section 2's "richer semantics").
  CorpusOptions options;
  options.include_attribute_names = true;
  Corpus rich = Corpus::Build(data, options);
  ASSERT_TRUE(rich.TermIdOf("location").has_value());
  ASSERT_TRUE(rich.TermIdOf("forum").has_value());
  EXPECT_TRUE(rich.DocContains(v, *rich.TermIdOf("location")));
  // Document length grows accordingly.
  EXPECT_GT(rich.DocLengthChars(v), plain.DocLengthChars(v));
}

TEST(CorpusMultiAttrTest, AllAttributeValuesAreIndexed) {
  graph::SchemaGraph schema;
  graph::TypeId year = *schema.AddNodeType("Year");
  graph::DataGraph data(schema);
  graph::NodeId v = *data.AddNode(
      year, {{"Name", "ICDE"}, {"Year", "1997"}, {"Location", "Birmingham"}});
  Corpus corpus = Corpus::Build(data);
  // The node's keyword set is {icde, 1997, birmingham} (Section 2 example).
  EXPECT_TRUE(corpus.TermIdOf("icde").has_value());
  EXPECT_TRUE(corpus.TermIdOf("1997").has_value());
  EXPECT_TRUE(corpus.TermIdOf("birmingham").has_value());
  EXPECT_EQ(corpus.DocTerms(v).size(), 3u);
}

}  // namespace
}  // namespace orx::text
