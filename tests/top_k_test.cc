#include "core/top_k.h"

#include <gtest/gtest.h>

namespace orx::core {
namespace {

TEST(TopKTest, ReturnsDescendingScores) {
  std::vector<double> scores{0.1, 0.5, 0.3, 0.9, 0.2};
  auto top = TopK(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].node, 3u);
  EXPECT_EQ(top[1].node, 1u);
  EXPECT_EQ(top[2].node, 2u);
}

TEST(TopKTest, KLargerThanInput) {
  std::vector<double> scores{0.2, 0.1};
  auto top = TopK(scores, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].node, 0u);
}

TEST(TopKTest, KZeroAndEmptyInput) {
  EXPECT_TRUE(TopK({0.5}, 0).empty());
  EXPECT_TRUE(TopK({}, 5).empty());
}

TEST(TopKTest, TiesBreakByAscendingNodeId) {
  std::vector<double> scores{0.5, 0.5, 0.5, 0.5};
  auto top = TopK(scores, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].node, 0u);
  EXPECT_EQ(top[1].node, 1u);
}

TEST(TopKTest, LargeInputCoversEveryIndex) {
  // Regression for the heap loop's index type: it iterated with a
  // graph::NodeId (uint32_t) compared against scores.size() (size_t),
  // which warned under -Wsign-compare/-Wconversion contexts and would
  // wrap on inputs exceeding the NodeId range. The loop now runs over
  // size_t and casts per index; the best element must be found wherever
  // it sits, including the very last slot of a large vector.
  constexpr size_t kN = 100'000;
  std::vector<double> scores(kN, 0.1);
  scores[kN - 1] = 0.9;
  scores[kN / 2] = 0.5;
  auto top = TopK(scores, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].node, static_cast<graph::NodeId>(kN - 1));
  EXPECT_EQ(top[1].node, static_cast<graph::NodeId>(kN / 2));
}

class TopKTypedTest : public ::testing::Test {
 protected:
  TopKTypedTest() {
    paper_ = *schema_.AddNodeType("Paper");
    author_ = *schema_.AddNodeType("Author");
    data_ = std::make_unique<graph::DataGraph>(schema_);
    // Even ids papers, odd ids authors.
    for (int i = 0; i < 6; ++i) {
      *data_->AddNode(i % 2 == 0 ? paper_ : author_, {});
    }
  }

  graph::SchemaGraph schema_;
  graph::TypeId paper_, author_;
  std::unique_ptr<graph::DataGraph> data_;
};

TEST_F(TopKTypedTest, TypeFilter) {
  std::vector<double> scores{0.1, 0.9, 0.2, 0.8, 0.3, 0.7};
  auto top = TopKOfType(scores, 2, *data_, paper_);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].node, 4u);  // best paper
  EXPECT_EQ(top[1].node, 2u);
  // Nullopt type = unfiltered.
  auto all = TopKOfType(scores, 1, *data_, std::nullopt);
  EXPECT_EQ(all[0].node, 1u);
}

TEST_F(TopKTypedTest, ExclusionFilter) {
  std::vector<double> scores{0.1, 0.9, 0.2, 0.8, 0.3, 0.7};
  std::vector<bool> excluded(6, false);
  excluded[4] = true;  // remove the best paper
  auto top = TopKOfTypeExcluding(scores, 2, *data_, paper_, excluded);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].node, 2u);
  EXPECT_EQ(top[1].node, 0u);
}

TEST_F(TopKTypedTest, ExclusionVectorShorterThanScoresIsSafe) {
  std::vector<double> scores{0.1, 0.9, 0.2, 0.8, 0.3, 0.7};
  std::vector<bool> excluded(2, true);  // only covers nodes 0, 1
  auto top = TopKOfTypeExcluding(scores, 10, *data_, std::nullopt, excluded);
  EXPECT_EQ(top.size(), 4u);
}

}  // namespace
}  // namespace orx::core
