#include "explain/explainer.h"

#include <gtest/gtest.h>

#include "datasets/dblp_generator.h"
#include "datasets/figure1.h"
#include "text/query.h"

namespace orx::explain {
namespace {

class ExplainFigure1Test : public ::testing::Test {
 protected:
  ExplainFigure1Test()
      : fig_(datasets::MakeFigure1Dataset()),
        rates_(datasets::DblpGroundTruthRates(fig_.dataset.schema(),
                                              fig_.types)),
        engine_(fig_.dataset.authority()),
        explainer_(fig_.dataset.data(), fig_.dataset.authority()) {
    text::QueryVector q(text::ParseQuery("olap"));
    base_ = *core::BuildBaseSet(fig_.dataset.corpus(), q);
    core::ObjectRankOptions options;
    options.epsilon = 1e-10;
    scores_ = engine_.Compute(base_, rates_, options).scores;
  }

  StatusOr<Explanation> ExplainV4(ExplainOptions options = {}) {
    return explainer_.Explain(fig_.v4_range_queries, base_, scores_, rates_,
                              0.85, options);
  }

  datasets::Figure1Dataset fig_;
  graph::TransferRates rates_;
  core::ObjectRankEngine engine_;
  Explainer explainer_;
  core::BaseSet base_;
  std::vector<double> scores_;
};

// Example 1 (Section 4): the explaining subgraph of v4 contains v1..v6 but
// NOT the "Data Cube" paper v7, because no authority flows from v7 to v4.
TEST_F(ExplainFigure1Test, Example1NodeSet) {
  ExplainOptions options;
  options.radius = 5;
  auto explanation = ExplainV4(options);
  ASSERT_TRUE(explanation.ok());
  const ExplainingSubgraph& sub = explanation->subgraph;
  EXPECT_EQ(sub.num_nodes(), 6u);
  EXPECT_TRUE(sub.Contains(fig_.v1_index_selection));
  EXPECT_TRUE(sub.Contains(fig_.v2_icde));
  EXPECT_TRUE(sub.Contains(fig_.v3_icde1997));
  EXPECT_TRUE(sub.Contains(fig_.v4_range_queries));
  EXPECT_TRUE(sub.Contains(fig_.v5_modeling));
  EXPECT_TRUE(sub.Contains(fig_.v6_agrawal));
  EXPECT_FALSE(sub.Contains(fig_.v7_data_cube));
  EXPECT_EQ(sub.target_global(), fig_.v4_range_queries);
}

TEST_F(ExplainFigure1Test, TargetReductionFactorIsOne) {
  ExplainOptions options;
  options.radius = 5;
  auto explanation = ExplainV4(options);
  ASSERT_TRUE(explanation.ok());
  EXPECT_DOUBLE_EQ(explanation->subgraph.ReductionFactor(
                       explanation->subgraph.target_local()),
                   1.0);
  EXPECT_TRUE(explanation->converged);
  EXPECT_GT(explanation->iterations, 0);
}

// "Note that the flow on edges v_i -> v, i.e., edges that end at v, are
// not adjusted" (Section 4).
TEST_F(ExplainFigure1Test, IncomingFlowsOfTargetAreUnadjusted) {
  ExplainOptions options;
  options.radius = 5;
  auto explanation = ExplainV4(options);
  ASSERT_TRUE(explanation.ok());
  const ExplainingSubgraph& sub = explanation->subgraph;
  for (uint32_t ei : sub.InEdgeIndices(sub.target_local())) {
    const ExplainEdge& e = sub.edges()[ei];
    EXPECT_DOUBLE_EQ(e.adjusted_flow, e.original_flow);
  }
}

// The h fixpoint (Equation 10) must be satisfied at convergence.
TEST_F(ExplainFigure1Test, ReductionFactorsSatisfyEquation10) {
  ExplainOptions options;
  options.radius = 5;
  options.epsilon = 1e-12;
  auto explanation = ExplainV4(options);
  ASSERT_TRUE(explanation.ok());
  const ExplainingSubgraph& sub = explanation->subgraph;
  for (LocalId v = 0; v < sub.num_nodes(); ++v) {
    if (v == sub.target_local()) continue;
    double expected = 0.0;
    for (uint32_t ei : sub.OutEdgeIndices(v)) {
      const ExplainEdge& e = sub.edges()[ei];
      expected += sub.ReductionFactor(e.to) * e.rate;
    }
    EXPECT_NEAR(sub.ReductionFactor(v), expected, 1e-9);
  }
}

TEST_F(ExplainFigure1Test, AdjustedFlowsFollowEquation7) {
  ExplainOptions options;
  options.radius = 5;
  auto explanation = ExplainV4(options);
  ASSERT_TRUE(explanation.ok());
  const ExplainingSubgraph& sub = explanation->subgraph;
  for (const ExplainEdge& e : sub.edges()) {
    EXPECT_NEAR(e.adjusted_flow,
                sub.ReductionFactor(e.to) * e.original_flow, 1e-12);
    EXPECT_GE(e.adjusted_flow, 0.0);
    EXPECT_LE(e.adjusted_flow, e.original_flow + 1e-12);
    // Original flows follow Equation 5.
    EXPECT_NEAR(e.original_flow,
                0.85 * e.rate * scores_[sub.GlobalId(e.from)], 1e-12);
  }
}

TEST_F(ExplainFigure1Test, DistancesToTarget) {
  ExplainOptions options;
  options.radius = 5;
  auto explanation = ExplainV4(options);
  ASSERT_TRUE(explanation.ok());
  const ExplainingSubgraph& sub = explanation->subgraph;
  auto dist = [&](graph::NodeId v) {
    return sub.DistanceToTarget(sub.LocalOf(v));
  };
  EXPECT_EQ(dist(fig_.v4_range_queries), 0);
  EXPECT_EQ(dist(fig_.v6_agrawal), 1);    // author -> paper (AP)
  EXPECT_EQ(dist(fig_.v5_modeling), 2);   // modeling -> author -> paper
  EXPECT_EQ(dist(fig_.v3_icde1997), 3);   // year -> modeling -> author -> v4
  EXPECT_EQ(dist(fig_.v1_index_selection), 4);
  EXPECT_EQ(dist(fig_.v2_icde), 4);
}

TEST_F(ExplainFigure1Test, RadiusLimitsTheSubgraph) {
  ExplainOptions options;
  options.radius = 2;
  auto explanation = ExplainV4(options);
  ASSERT_TRUE(explanation.ok());
  const ExplainingSubgraph& sub = explanation->subgraph;
  // Within radius 2 only v4, v6 (dist 1) and v5 (dist 2) are reachable.
  EXPECT_TRUE(sub.Contains(fig_.v4_range_queries));
  EXPECT_TRUE(sub.Contains(fig_.v6_agrawal));
  EXPECT_FALSE(sub.Contains(fig_.v3_icde1997));
  EXPECT_FALSE(sub.Contains(fig_.v1_index_selection));
}

TEST_F(ExplainFigure1Test, SourceFlags) {
  ExplainOptions options;
  options.radius = 5;
  auto explanation = ExplainV4(options);
  ASSERT_TRUE(explanation.ok());
  const ExplainingSubgraph& sub = explanation->subgraph;
  // Base set = {v1, v4}; both are in the subgraph and flagged as sources.
  EXPECT_TRUE(sub.IsSource(sub.LocalOf(fig_.v1_index_selection)));
  EXPECT_TRUE(sub.IsSource(sub.LocalOf(fig_.v4_range_queries)));
  EXPECT_FALSE(sub.IsSource(sub.LocalOf(fig_.v6_agrawal)));
}

TEST_F(ExplainFigure1Test, ErrorsOnBadInput) {
  EXPECT_EQ(explainer_.Explain(999, base_, scores_, rates_, 0.85, {})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  std::vector<double> short_scores(3, 0.0);
  EXPECT_EQ(explainer_
                .Explain(fig_.v4_range_queries, base_, short_scores, rates_,
                         0.85, {})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  ExplainOptions bad_radius;
  bad_radius.radius = 0;
  EXPECT_EQ(ExplainV4(bad_radius).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ExplainFigure1Test, UnreachableTargetIsNotFound) {
  // With zero rates nothing flows anywhere: no node can be explained.
  graph::TransferRates zero(fig_.dataset.schema(), 0.0);
  auto result = explainer_.Explain(fig_.v7_data_cube, base_, scores_, zero,
                                   0.85, {});
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(ExplainFigure1Test, ToStringMentionsTargetAndFlows) {
  auto explanation = ExplainV4({});
  ASSERT_TRUE(explanation.ok());
  const std::string s =
      explanation->subgraph.ToString(fig_.dataset.data());
  EXPECT_NE(s.find("Range Queries"), std::string::npos);
  EXPECT_NE(s.find("flow="), std::string::npos);
}

TEST_F(ExplainFigure1Test, ToDotRendersValidGraphviz) {
  explain::ExplainOptions options;
  options.radius = 5;
  auto explanation = ExplainV4(options);
  ASSERT_TRUE(explanation.ok());
  const ExplainingSubgraph& sub = explanation->subgraph;
  const std::string dot = sub.ToDot(fig_.dataset.data());
  EXPECT_NE(dot.find("digraph explaining_subgraph"), std::string::npos);
  // The target is double-circled; base-set sources are shaded.
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightgray"), std::string::npos);
  // One node statement per node, one edge statement per edge.
  size_t arrows = 0;
  for (size_t p = dot.find("->"); p != std::string::npos;
       p = dot.find("->", p + 2)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, sub.num_edges());
  EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST_F(ExplainFigure1Test, ToDotEscapesQuotes) {
  // A title with a quote must not break the DOT syntax.
  datasets::DblpTypes types;
  auto schema = datasets::MakeDblpSchema(&types);
  datasets::Dataset dataset(std::move(schema), "quote-test");
  graph::DataGraph& data = dataset.mutable_data();
  graph::NodeId a = *data.AddNode(
      types.paper, {{"Title", "A \"quoted\" olap title"}});
  graph::NodeId b = *data.AddNode(types.paper, {{"Title", "plain olap"}});
  ASSERT_TRUE(data.AddEdge(b, a, types.cites).ok());
  dataset.Finalize();

  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dataset.schema(), types);
  core::ObjectRankEngine engine(dataset.authority());
  text::QueryVector q(text::ParseQuery("olap"));
  auto base = core::BuildBaseSet(dataset.corpus(), q);
  ASSERT_TRUE(base.ok());
  auto rank = engine.Compute(*base, rates, {});
  Explainer explainer(dataset.data(), dataset.authority());
  auto explanation = explainer.Explain(a, *base, rank.scores, rates, 0.85,
                                       {});
  ASSERT_TRUE(explanation.ok());
  const std::string dot = explanation->subgraph.ToDot(dataset.data());
  EXPECT_NE(dot.find("\\\"quoted\\\""), std::string::npos);
}

// On a larger generated graph, the explaining fixpoint converges in a few
// iterations (Table 3 reports 4-11) and every invariant holds.
TEST(ExplainGeneratedTest, InvariantsOnGeneratedDblp) {
  datasets::DblpDataset dblp = datasets::GenerateDblp(
      datasets::DblpGeneratorConfig::Tiny(/*papers=*/600, /*seed=*/17));
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  text::QueryVector q(text::ParseQuery("data"));
  auto base = core::BuildBaseSet(dblp.dataset.corpus(), q);
  ASSERT_TRUE(base.ok());
  core::ObjectRankEngine engine(dblp.dataset.authority());
  auto rank = engine.Compute(*base, rates, {});

  // Explain the top-ranked paper.
  graph::NodeId best = 0;
  for (graph::NodeId v = 1; v < rank.scores.size(); ++v) {
    if (dblp.dataset.data().NodeType(v) == dblp.types.paper &&
        rank.scores[v] > rank.scores[best]) {
      best = v;
    }
  }
  Explainer explainer(dblp.dataset.data(), dblp.dataset.authority());
  ExplainOptions options;
  options.radius = 3;
  auto explanation =
      explainer.Explain(best, *base, rank.scores, rates, 0.85, options);
  ASSERT_TRUE(explanation.ok());
  EXPECT_TRUE(explanation->converged);
  EXPECT_GE(explanation->iterations, 1);
  EXPECT_LE(explanation->iterations, 200);
  const ExplainingSubgraph& sub = explanation->subgraph;
  EXPECT_GT(sub.num_nodes(), 1u);
  EXPECT_GT(sub.num_edges(), 0u);
  for (LocalId v = 0; v < sub.num_nodes(); ++v) {
    const double h = sub.ReductionFactor(v);
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, 1.0 + 1e-9);  // rates sum <= 1 per type, so h <= 1
    // Every node reaches the target (flow pruning removes dead ends). The
    // distance can exceed the radius: the radius bounds the candidate
    // ball, and pruning may leave only a longer high-flow path.
    EXPECT_GE(sub.DistanceToTarget(v), 0);
  }
}

}  // namespace
}  // namespace orx::explain
