#include "core/rank_cache.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/searcher.h"
#include "datasets/dblp_generator.h"
#include "datasets/figure1.h"
#include "text/query.h"

namespace orx::core {

// Test-only backdoor for forging invalid internal states (entry vectors
// whose length disagrees with num_nodes_) that the public API rejects.
struct RankCacheTestPeer {
  static void AppendScore(RankCache& cache, const std::string& term) {
    cache.entries_.at(term).scores.mut().push_back(0.0f);
  }
};

namespace {

class RankCacheTest : public ::testing::Test {
 protected:
  RankCacheTest()
      : dblp_(datasets::GenerateDblp(
            datasets::DblpGeneratorConfig::Tiny(/*papers=*/800,
                                                /*seed=*/55))),
        rates_(datasets::DblpGroundTruthRates(dblp_.dataset.schema(),
                                              dblp_.types)) {
    options_.objectrank.epsilon = 1e-9;
  }

  // Direct (uncached) scores for a query.
  std::vector<double> DirectScores(const text::QueryVector& query) {
    Searcher searcher(dblp_.dataset.data(), dblp_.dataset.authority(),
                      dblp_.dataset.corpus());
    SearchOptions search_options;
    search_options.objectrank = options_.objectrank;
    search_options.bm25 = options_.bm25;
    search_options.use_warm_start = false;
    auto result = searcher.Search(query, rates_, search_options);
    EXPECT_TRUE(result.ok());
    return result->scores;
  }

  datasets::DblpDataset dblp_;
  graph::TransferRates rates_;
  RankCache::Options options_;
};

TEST_F(RankCacheTest, SingleTermMatchesDirectSearch) {
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_, {"data"},
      options_);
  ASSERT_TRUE(cache.Contains("data"));

  text::QueryVector query(text::ParseQuery("data"));
  auto cached = cache.Query(query);
  ASSERT_TRUE(cached.ok());
  auto direct = DirectScores(query);
  ASSERT_EQ(cached->scores.size(), direct.size());
  for (size_t v = 0; v < direct.size(); ++v) {
    EXPECT_NEAR(cached->scores[v], direct[v], 1e-5);
  }
  EXPECT_TRUE(cached->missing_terms.empty());
}

TEST_F(RankCacheTest, MultiTermLinearCombinationIsExact) {
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_,
      {"data", "query", "systems"}, options_);

  text::QueryVector query(text::ParseQuery("data query systems"));
  auto cached = cache.Query(query);
  ASSERT_TRUE(cached.ok());
  auto direct = DirectScores(query);
  for (size_t v = 0; v < direct.size(); ++v) {
    EXPECT_NEAR(cached->scores[v], direct[v], 1e-5);
  }
}

TEST_F(RankCacheTest, WeightedQueryVectorsWork) {
  // Content-reformulated queries have non-uniform weights; the cache must
  // still be exact (the query-side BM25 factor is applied at combine
  // time).
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_,
      {"data", "mining"}, options_);

  text::QueryVector query;
  query.SetWeight("data", 2.0);
  query.SetWeight("mining", 0.4);
  auto cached = cache.Query(query);
  ASSERT_TRUE(cached.ok());
  auto direct = DirectScores(query);
  for (size_t v = 0; v < direct.size(); ++v) {
    EXPECT_NEAR(cached->scores[v], direct[v], 1e-5);
  }
}

TEST_F(RankCacheTest, MissingTermsAreReported) {
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_, {"data"},
      options_);
  text::QueryVector query(text::ParseQuery("data mining"));
  auto cached = cache.Query(query);
  ASSERT_TRUE(cached.ok());
  ASSERT_EQ(cached->missing_terms.size(), 1u);
  EXPECT_EQ(cached->missing_terms[0], "mining");
}

TEST_F(RankCacheTest, ErrorsOnUncachedOrEmptyQueries) {
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_, {"data"},
      options_);
  text::QueryVector unknown(text::ParseQuery("mining"));
  EXPECT_EQ(cache.Query(unknown).status().code(), StatusCode::kNotFound);
  text::QueryVector empty;
  EXPECT_EQ(cache.Query(empty).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RankCacheTest, BuildRespectsDfFloorAndTermCap) {
  RankCache::Options options = options_;
  options.min_df = 5;
  options.max_terms = 10;
  RankCache cache = RankCache::Build(dblp_.dataset.authority(),
                                     dblp_.dataset.corpus(), rates_,
                                     options);
  EXPECT_LE(cache.num_terms(), 10u);
  EXPECT_GT(cache.num_terms(), 0u);
  // Only frequent terms made it.
  EXPECT_TRUE(cache.Contains("data"));  // most popular vocab term
  EXPECT_GT(cache.MemoryFootprintBytes(),
            cache.num_terms() * cache.num_nodes() * sizeof(float));
}

TEST_F(RankCacheTest, UnknownTermsAreSkippedAtBuild) {
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_,
      {"zzznotaword", "data"}, options_);
  EXPECT_EQ(cache.num_terms(), 1u);
  EXPECT_FALSE(cache.Contains("zzznotaword"));
}

TEST_F(RankCacheTest, SerializationRoundTrip) {
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_,
      {"data", "mining"}, options_);
  std::stringstream stream;
  ASSERT_TRUE(cache.Serialize(stream).ok());
  auto loaded = RankCache::Deserialize(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_terms(), cache.num_terms());
  EXPECT_EQ(loaded->num_nodes(), cache.num_nodes());

  text::QueryVector query(text::ParseQuery("data mining"));
  auto original = cache.Query(query);
  auto reloaded = loaded->Query(query);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(original->scores, reloaded->scores);

  // Serialization is byte-stable.
  std::stringstream second;
  ASSERT_TRUE(loaded->Serialize(second).ok());
  EXPECT_EQ(stream.str(), second.str());
}

TEST_F(RankCacheTest, DeserializeRejectsCorruptStreams) {
  std::stringstream bad("JUNK");
  EXPECT_EQ(RankCache::Deserialize(bad).status().code(),
            StatusCode::kDataLoss);

  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_, {"data"},
      options_);
  std::stringstream stream;
  ASSERT_TRUE(cache.Serialize(stream).ok());
  const std::string bytes = stream.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_EQ(RankCache::Deserialize(truncated).status().code(),
            StatusCode::kDataLoss);
}

TEST_F(RankCacheTest, CorruptedFixturesFailWithByteOffsets) {
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_, {"data"},
      options_);
  std::stringstream stream;
  ASSERT_TRUE(cache.Serialize(stream).ok());
  const std::string bytes = stream.str();
  // Layout: magic(4) version(4) num_nodes(4) fingerprint(8) bm25(24)
  // num_entries(4) = 48-byte header, then per entry: u32 term length.
  auto patch_u32 = [&](size_t at, uint32_t v) {
    std::string copy = bytes;
    for (int i = 0; i < 4; ++i) {
      copy[at + static_cast<size_t>(i)] =
          static_cast<char>((v >> (8 * i)) & 0xFF);
    }
    return copy;
  };

  {
    // Oversized node count: rejected before any per-entry allocation.
    std::stringstream s(patch_u32(8, 0xFFFFFFFFu));
    auto result = RankCache::Deserialize(s);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
    EXPECT_NE(result.status().message().find("implausible"),
              std::string::npos);
    EXPECT_NE(result.status().message().find("at byte 8"),
              std::string::npos);
  }
  {
    // Oversized term length field.
    std::stringstream s(patch_u32(48, 0xFFFFFFFFu));
    auto result = RankCache::Deserialize(s);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
    EXPECT_NE(result.status().message().find("term"), std::string::npos);
  }
  {
    // Entry count far beyond the stream: the chunked reads must fail at
    // end-of-stream instead of allocating for the claimed entries.
    std::stringstream s(patch_u32(44, 1u << 26));
    auto result = RankCache::Deserialize(s);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  }
  {
    // Zero-length term (found by rank_cache_fuzz): Serialize never writes
    // one, and an empty map key would shadow real lookups — reject it.
    std::stringstream s(patch_u32(48, 0));
    auto result = RankCache::Deserialize(s);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
    EXPECT_NE(result.status().message().find("empty"), std::string::npos)
        << result.status().message();
  }
  // Truncation at every byte boundary: always kDataLoss naming the
  // offset where the stream ran dry, never a crash (the suite runs under
  // ASan in CI).
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::stringstream truncated(bytes.substr(0, cut));
    auto result = RankCache::Deserialize(truncated);
    ASSERT_FALSE(result.ok()) << "cut at " << cut;
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss)
        << "cut at " << cut;
    EXPECT_NE(result.status().message().find("at byte"), std::string::npos)
        << "cut at " << cut << ": " << result.status().message();
  }
}

TEST_F(RankCacheTest, FileSaveAndLoad) {
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_, {"data"},
      options_);
  const std::string path = ::testing::TempDir() + "/orx_cache.orxc";
  ASSERT_TRUE(cache.Save(path).ok());
  auto loaded = RankCache::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->Contains("data"));
  EXPECT_EQ(RankCache::Load("/nonexistent/c.orxc").status().code(),
            StatusCode::kNotFound);
}

TEST_F(RankCacheTest, SearcherAnswersFromAttachedCache) {
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_,
      {"data", "mining"}, options_);
  Searcher searcher(dblp_.dataset.data(), dblp_.dataset.authority(),
                    dblp_.dataset.corpus());
  searcher.AttachRankCache(&cache);

  SearchOptions search_options;
  search_options.objectrank = options_.objectrank;
  text::QueryVector query(text::ParseQuery("data mining"));

  // Fully-cached query with matching rates: served from the cache.
  auto cached = searcher.Search(query, rates_, search_options);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->from_cache);
  EXPECT_EQ(cached->iterations, 0);
  auto direct = DirectScores(query);
  for (size_t v = 0; v < direct.size(); ++v) {
    EXPECT_NEAR(cached->scores[v], direct[v], 1e-5);
  }

  // A query with an uncached term falls back to the power iteration.
  searcher.ResetSession();
  text::QueryVector partial(text::ParseQuery("data systems"));
  auto fallback = searcher.Search(partial, rates_, search_options);
  ASSERT_TRUE(fallback.ok());
  EXPECT_FALSE(fallback->from_cache);
  EXPECT_GT(fallback->iterations, 0);

  // Changed rates (structure reformulation) invalidate the cache.
  graph::TransferRates other = rates_;
  ASSERT_TRUE(other.Set(dblp_.types.cites, graph::Direction::kForward,
                        0.65).ok());
  EXPECT_NE(other.Fingerprint(), rates_.Fingerprint());
  searcher.ResetSession();
  searcher.AttachRankCache(&cache);
  auto stale = searcher.Search(query, other, search_options);
  ASSERT_TRUE(stale.ok());
  EXPECT_FALSE(stale->from_cache);

  // Detaching restores plain behavior.
  searcher.AttachRankCache(nullptr);
  auto detached = searcher.Search(query, rates_, search_options);
  ASSERT_TRUE(detached.ok());
  EXPECT_FALSE(detached->from_cache);
}

TEST_F(RankCacheTest, FingerprintSurvivesSerialization) {
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_, {"data"},
      options_);
  EXPECT_EQ(cache.rates_fingerprint(), rates_.Fingerprint());
  std::stringstream stream;
  ASSERT_TRUE(cache.Serialize(stream).ok());
  auto loaded = RankCache::Deserialize(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rates_fingerprint(), cache.rates_fingerprint());
}

TEST_F(RankCacheTest, SerializeRejectsLengthMismatchedEntry) {
  // Regression: Serialize used to write entry.scores.size() floats while
  // Deserialize reads exactly num_nodes — a mismatched entry silently
  // shifted every subsequent entry in the stream. It must be an error.
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_,
      {"data", "mining"}, options_);
  RankCacheTestPeer::AppendScore(cache, "data");
  std::stringstream stream;
  Status status = cache.Serialize(stream);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("data"), std::string::npos);
}

TEST_F(RankCacheTest, ZeroCoefficientTermIsReportedMissing) {
  // Regression: a cached term whose combination coefficient is <= 0
  // (zero/negative query weight) was silently dropped, so callers took
  // the partial combination for the exact answer.
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_,
      {"data", "mining"}, options_);
  text::QueryVector query;
  query.SetWeight("data", 1.0);
  query.SetWeight("mining", 0.0);
  auto cached = cache.Query(query);
  ASSERT_TRUE(cached.ok());
  ASSERT_EQ(cached->missing_terms.size(), 1u);
  EXPECT_EQ(cached->missing_terms[0], "mining");

  // All coefficients non-positive: an error, with a message that no
  // longer claims the terms were uncached.
  text::QueryVector zeros;
  zeros.SetWeight("data", 0.0);
  zeros.SetWeight("mining", -1.0);
  auto none = cache.Query(zeros);
  EXPECT_EQ(none.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(none.status().message().find("no query term is cached"),
            std::string::npos);
}

TEST_F(RankCacheTest, SearcherFallsBackOnZeroCoefficientTerm) {
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_,
      {"data", "mining"}, options_);
  Searcher searcher(dblp_.dataset.data(), dblp_.dataset.authority(),
                    dblp_.dataset.corpus());
  searcher.AttachRankCache(&cache);
  SearchOptions search_options;
  search_options.objectrank = options_.objectrank;
  search_options.use_warm_start = false;

  text::QueryVector query;
  query.SetWeight("data", 1.0);
  query.SetWeight("mining", 0.0);
  auto result = searcher.Search(query, rates_, search_options);
  ASSERT_TRUE(result.ok());
  // The cache cannot cover the zero-weight term; the searcher must run
  // the exact power iteration instead of serving the partial combination.
  EXPECT_FALSE(result->from_cache);
  EXPECT_GT(result->iterations, 0);
}

TEST_F(RankCacheTest, SearcherRejectsCacheWithMismatchedBm25) {
  // Regression: the searcher compared only the rates fingerprint, so a
  // cache built under different Okapi parameters silently served stale
  // scores.
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_,
      {"data", "mining"}, options_);
  Searcher searcher(dblp_.dataset.data(), dblp_.dataset.authority(),
                    dblp_.dataset.corpus());
  searcher.AttachRankCache(&cache);
  text::QueryVector query(text::ParseQuery("data mining"));

  SearchOptions search_options;
  search_options.objectrank = options_.objectrank;
  search_options.use_warm_start = false;
  search_options.bm25.k1 = options_.bm25.k1 + 0.6;  // different Okapi k1
  auto mismatched = searcher.Search(query, rates_, search_options);
  ASSERT_TRUE(mismatched.ok());
  EXPECT_FALSE(mismatched->from_cache);
  EXPECT_GT(mismatched->iterations, 0);

  // Restoring the build-time parameters restores the cache hit.
  search_options.bm25 = options_.bm25;
  searcher.ResetSession();
  auto matched = searcher.Search(query, rates_, search_options);
  ASSERT_TRUE(matched.ok());
  EXPECT_TRUE(matched->from_cache);
}

TEST_F(RankCacheTest, MatchesBm25ComparesAllParameters) {
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_, {"data"},
      options_);
  EXPECT_TRUE(cache.MatchesBm25(options_.bm25));
  text::Bm25Params other = options_.bm25;
  other.b += 0.1;
  EXPECT_FALSE(cache.MatchesBm25(other));
  other = options_.bm25;
  other.k3 += 1.0;
  EXPECT_FALSE(cache.MatchesBm25(other));
}

TEST_F(RankCacheTest, ParallelBuildSerializesByteIdentically) {
  const std::vector<std::string> terms = {"data",    "mining", "query",
                                          "systems", "web",    "xml",
                                          "database", "search"};
  RankCache::Options sequential = options_;
  sequential.build_threads = 1;
  RankCache::BuildStats seq_stats;
  RankCache a = RankCache::BuildForTerms(dblp_.dataset.authority(),
                                         dblp_.dataset.corpus(), rates_,
                                         terms, sequential, &seq_stats);

  RankCache::Options parallel = options_;
  parallel.build_threads = 4;
  RankCache::BuildStats par_stats;
  RankCache b = RankCache::BuildForTerms(dblp_.dataset.authority(),
                                         dblp_.dataset.corpus(), rates_,
                                         terms, parallel, &par_stats);

  std::stringstream sa, sb;
  ASSERT_TRUE(a.Serialize(sa).ok());
  ASSERT_TRUE(b.Serialize(sb).ok());
  EXPECT_EQ(sa.str(), sb.str());

  EXPECT_EQ(seq_stats.threads, 1);
  EXPECT_EQ(par_stats.threads, 4);
  EXPECT_EQ(seq_stats.terms_built, par_stats.terms_built);
  EXPECT_EQ(seq_stats.total_iterations, par_stats.total_iterations);
}

TEST_F(RankCacheTest, BuildStatsCountsSkippedAndBuiltTerms) {
  RankCache::BuildStats stats;
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_,
      {"data", "data", "zzznotaword", "mining"}, options_, &stats);
  EXPECT_EQ(cache.num_terms(), 2u);
  EXPECT_EQ(stats.terms_requested, 4u);
  EXPECT_EQ(stats.terms_built, 2u);
  EXPECT_EQ(stats.terms_skipped, 2u);  // the duplicate and the unknown
  EXPECT_GT(stats.total_iterations, 0);
  EXPECT_EQ(stats.terms_not_converged, 0u);
  EXPECT_GE(stats.wall_seconds, 0.0);
  EXPECT_GE(stats.term_seconds_p95, stats.term_seconds_p50);
  EXPECT_NE(stats.ToString().find("built 2/4"), std::string::npos);
}

TEST(RankCacheFigure1Test, ReproducesGoldenVector) {
  datasets::Figure1Dataset fig = datasets::MakeFigure1Dataset();
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(fig.dataset.schema(), fig.types);
  RankCache::Options options;
  options.objectrank.epsilon = 1e-10;
  RankCache cache = RankCache::BuildForTerms(
      fig.dataset.authority(), fig.dataset.corpus(), rates, {"olap"},
      options);
  text::QueryVector query(text::ParseQuery("olap"));
  auto cached = cache.Query(query);
  ASSERT_TRUE(cached.ok());
  EXPECT_NEAR(cached->scores[fig.v7_data_cube], 0.083, 0.001);
  EXPECT_NEAR(cached->scores[fig.v1_index_selection], 0.076, 0.001);
}

}  // namespace
}  // namespace orx::core
