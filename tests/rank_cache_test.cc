#include "core/rank_cache.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/searcher.h"
#include "datasets/dblp_generator.h"
#include "datasets/figure1.h"
#include "text/query.h"

namespace orx::core {
namespace {

class RankCacheTest : public ::testing::Test {
 protected:
  RankCacheTest()
      : dblp_(datasets::GenerateDblp(
            datasets::DblpGeneratorConfig::Tiny(/*papers=*/800,
                                                /*seed=*/55))),
        rates_(datasets::DblpGroundTruthRates(dblp_.dataset.schema(),
                                              dblp_.types)) {
    options_.objectrank.epsilon = 1e-9;
  }

  // Direct (uncached) scores for a query.
  std::vector<double> DirectScores(const text::QueryVector& query) {
    Searcher searcher(dblp_.dataset.data(), dblp_.dataset.authority(),
                      dblp_.dataset.corpus());
    SearchOptions search_options;
    search_options.objectrank = options_.objectrank;
    search_options.bm25 = options_.bm25;
    search_options.use_warm_start = false;
    auto result = searcher.Search(query, rates_, search_options);
    EXPECT_TRUE(result.ok());
    return result->scores;
  }

  datasets::DblpDataset dblp_;
  graph::TransferRates rates_;
  RankCache::Options options_;
};

TEST_F(RankCacheTest, SingleTermMatchesDirectSearch) {
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_, {"data"},
      options_);
  ASSERT_TRUE(cache.Contains("data"));

  text::QueryVector query(text::ParseQuery("data"));
  auto cached = cache.Query(query);
  ASSERT_TRUE(cached.ok());
  auto direct = DirectScores(query);
  ASSERT_EQ(cached->scores.size(), direct.size());
  for (size_t v = 0; v < direct.size(); ++v) {
    EXPECT_NEAR(cached->scores[v], direct[v], 1e-5);
  }
  EXPECT_TRUE(cached->missing_terms.empty());
}

TEST_F(RankCacheTest, MultiTermLinearCombinationIsExact) {
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_,
      {"data", "query", "systems"}, options_);

  text::QueryVector query(text::ParseQuery("data query systems"));
  auto cached = cache.Query(query);
  ASSERT_TRUE(cached.ok());
  auto direct = DirectScores(query);
  for (size_t v = 0; v < direct.size(); ++v) {
    EXPECT_NEAR(cached->scores[v], direct[v], 1e-5);
  }
}

TEST_F(RankCacheTest, WeightedQueryVectorsWork) {
  // Content-reformulated queries have non-uniform weights; the cache must
  // still be exact (the query-side BM25 factor is applied at combine
  // time).
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_,
      {"data", "mining"}, options_);

  text::QueryVector query;
  query.SetWeight("data", 2.0);
  query.SetWeight("mining", 0.4);
  auto cached = cache.Query(query);
  ASSERT_TRUE(cached.ok());
  auto direct = DirectScores(query);
  for (size_t v = 0; v < direct.size(); ++v) {
    EXPECT_NEAR(cached->scores[v], direct[v], 1e-5);
  }
}

TEST_F(RankCacheTest, MissingTermsAreReported) {
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_, {"data"},
      options_);
  text::QueryVector query(text::ParseQuery("data mining"));
  auto cached = cache.Query(query);
  ASSERT_TRUE(cached.ok());
  ASSERT_EQ(cached->missing_terms.size(), 1u);
  EXPECT_EQ(cached->missing_terms[0], "mining");
}

TEST_F(RankCacheTest, ErrorsOnUncachedOrEmptyQueries) {
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_, {"data"},
      options_);
  text::QueryVector unknown(text::ParseQuery("mining"));
  EXPECT_EQ(cache.Query(unknown).status().code(), StatusCode::kNotFound);
  text::QueryVector empty;
  EXPECT_EQ(cache.Query(empty).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RankCacheTest, BuildRespectsDfFloorAndTermCap) {
  RankCache::Options options = options_;
  options.min_df = 5;
  options.max_terms = 10;
  RankCache cache = RankCache::Build(dblp_.dataset.authority(),
                                     dblp_.dataset.corpus(), rates_,
                                     options);
  EXPECT_LE(cache.num_terms(), 10u);
  EXPECT_GT(cache.num_terms(), 0u);
  // Only frequent terms made it.
  EXPECT_TRUE(cache.Contains("data"));  // most popular vocab term
  EXPECT_GT(cache.MemoryFootprintBytes(),
            cache.num_terms() * cache.num_nodes() * sizeof(float));
}

TEST_F(RankCacheTest, UnknownTermsAreSkippedAtBuild) {
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_,
      {"zzznotaword", "data"}, options_);
  EXPECT_EQ(cache.num_terms(), 1u);
  EXPECT_FALSE(cache.Contains("zzznotaword"));
}

TEST_F(RankCacheTest, SerializationRoundTrip) {
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_,
      {"data", "mining"}, options_);
  std::stringstream stream;
  ASSERT_TRUE(cache.Serialize(stream).ok());
  auto loaded = RankCache::Deserialize(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_terms(), cache.num_terms());
  EXPECT_EQ(loaded->num_nodes(), cache.num_nodes());

  text::QueryVector query(text::ParseQuery("data mining"));
  auto original = cache.Query(query);
  auto reloaded = loaded->Query(query);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(original->scores, reloaded->scores);

  // Serialization is byte-stable.
  std::stringstream second;
  ASSERT_TRUE(loaded->Serialize(second).ok());
  EXPECT_EQ(stream.str(), second.str());
}

TEST_F(RankCacheTest, DeserializeRejectsCorruptStreams) {
  std::stringstream bad("JUNK");
  EXPECT_EQ(RankCache::Deserialize(bad).status().code(),
            StatusCode::kDataLoss);

  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_, {"data"},
      options_);
  std::stringstream stream;
  ASSERT_TRUE(cache.Serialize(stream).ok());
  const std::string bytes = stream.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_EQ(RankCache::Deserialize(truncated).status().code(),
            StatusCode::kDataLoss);
}

TEST_F(RankCacheTest, FileSaveAndLoad) {
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_, {"data"},
      options_);
  const std::string path = ::testing::TempDir() + "/orx_cache.orxc";
  ASSERT_TRUE(cache.Save(path).ok());
  auto loaded = RankCache::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->Contains("data"));
  EXPECT_EQ(RankCache::Load("/nonexistent/c.orxc").status().code(),
            StatusCode::kNotFound);
}

TEST_F(RankCacheTest, SearcherAnswersFromAttachedCache) {
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_,
      {"data", "mining"}, options_);
  Searcher searcher(dblp_.dataset.data(), dblp_.dataset.authority(),
                    dblp_.dataset.corpus());
  searcher.AttachRankCache(&cache);

  SearchOptions search_options;
  search_options.objectrank = options_.objectrank;
  text::QueryVector query(text::ParseQuery("data mining"));

  // Fully-cached query with matching rates: served from the cache.
  auto cached = searcher.Search(query, rates_, search_options);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->from_cache);
  EXPECT_EQ(cached->iterations, 0);
  auto direct = DirectScores(query);
  for (size_t v = 0; v < direct.size(); ++v) {
    EXPECT_NEAR(cached->scores[v], direct[v], 1e-5);
  }

  // A query with an uncached term falls back to the power iteration.
  searcher.ResetSession();
  text::QueryVector partial(text::ParseQuery("data systems"));
  auto fallback = searcher.Search(partial, rates_, search_options);
  ASSERT_TRUE(fallback.ok());
  EXPECT_FALSE(fallback->from_cache);
  EXPECT_GT(fallback->iterations, 0);

  // Changed rates (structure reformulation) invalidate the cache.
  graph::TransferRates other = rates_;
  ASSERT_TRUE(other.Set(dblp_.types.cites, graph::Direction::kForward,
                        0.65).ok());
  EXPECT_NE(other.Fingerprint(), rates_.Fingerprint());
  searcher.ResetSession();
  searcher.AttachRankCache(&cache);
  auto stale = searcher.Search(query, other, search_options);
  ASSERT_TRUE(stale.ok());
  EXPECT_FALSE(stale->from_cache);

  // Detaching restores plain behavior.
  searcher.AttachRankCache(nullptr);
  auto detached = searcher.Search(query, rates_, search_options);
  ASSERT_TRUE(detached.ok());
  EXPECT_FALSE(detached->from_cache);
}

TEST_F(RankCacheTest, FingerprintSurvivesSerialization) {
  RankCache cache = RankCache::BuildForTerms(
      dblp_.dataset.authority(), dblp_.dataset.corpus(), rates_, {"data"},
      options_);
  EXPECT_EQ(cache.rates_fingerprint(), rates_.Fingerprint());
  std::stringstream stream;
  ASSERT_TRUE(cache.Serialize(stream).ok());
  auto loaded = RankCache::Deserialize(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rates_fingerprint(), cache.rates_fingerprint());
}

TEST(RankCacheFigure1Test, ReproducesGoldenVector) {
  datasets::Figure1Dataset fig = datasets::MakeFigure1Dataset();
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(fig.dataset.schema(), fig.types);
  RankCache::Options options;
  options.objectrank.epsilon = 1e-10;
  RankCache cache = RankCache::BuildForTerms(
      fig.dataset.authority(), fig.dataset.corpus(), rates, {"olap"},
      options);
  text::QueryVector query(text::ParseQuery("olap"));
  auto cached = cache.Query(query);
  ASSERT_TRUE(cached.ok());
  EXPECT_NEAR(cached->scores[fig.v7_data_cube], 0.083, 0.001);
  EXPECT_NEAR(cached->scores[fig.v1_index_selection], 0.076, 0.001);
}

}  // namespace
}  // namespace orx::core
