#include "graph/transfer_rates.h"

#include <gtest/gtest.h>

#include "datasets/dblp_schema.h"

namespace orx::graph {
namespace {

struct Fixture {
  Fixture() : schema(datasets::MakeDblpSchema(&types)) {}
  datasets::DblpTypes types;
  std::unique_ptr<SchemaGraph> schema;
};

TEST(TransferRatesTest, InitialValueFillsAllSlots) {
  Fixture f;
  TransferRates rates(*f.schema, 0.3);
  EXPECT_EQ(rates.num_slots(), f.schema->num_rate_slots());
  for (uint32_t s = 0; s < rates.num_slots(); ++s) {
    EXPECT_DOUBLE_EQ(rates.slot(s), 0.3);
  }
}

TEST(TransferRatesTest, SetAndGet) {
  Fixture f;
  TransferRates rates(*f.schema, 0.0);
  ASSERT_TRUE(rates.Set(f.types.cites, Direction::kForward, 0.7).ok());
  EXPECT_DOUBLE_EQ(rates.Get(f.types.cites, Direction::kForward), 0.7);
  EXPECT_DOUBLE_EQ(rates.Get(f.types.cites, Direction::kBackward), 0.0);
}

TEST(TransferRatesTest, RejectsOutOfRange) {
  Fixture f;
  TransferRates rates(*f.schema, 0.0);
  EXPECT_EQ(rates.Set(f.types.cites, Direction::kForward, 1.5)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(rates.Set(f.types.cites, Direction::kForward, -0.1)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(rates.Set(999, Direction::kForward, 0.5).code(),
            StatusCode::kInvalidArgument);
}

TEST(TransferRatesTest, GroundTruthOutgoingSums) {
  Fixture f;
  TransferRates rates = datasets::DblpGroundTruthRates(*f.schema, f.types);
  // Paper's outgoing slots: PP (0.7) + PF (0.0) + PA (0.2) + PY (0.1) = 1.0.
  EXPECT_NEAR(rates.OutgoingSum(*f.schema, f.types.paper), 1.0, 1e-12);
  // Author: AP only (0.2). Year: YC + YP = 0.6. Conference: CY = 0.3.
  EXPECT_NEAR(rates.OutgoingSum(*f.schema, f.types.author), 0.2, 1e-12);
  EXPECT_NEAR(rates.OutgoingSum(*f.schema, f.types.year), 0.6, 1e-12);
  EXPECT_NEAR(rates.OutgoingSum(*f.schema, f.types.conference), 0.3, 1e-12);
}

TEST(TransferRatesTest, CapOutgoingSumsScalesOnlyViolators) {
  Fixture f;
  TransferRates rates(*f.schema, 0.9);  // every node type's sum exceeds 1
  const int scaled = rates.CapOutgoingSums(*f.schema);
  EXPECT_GT(scaled, 0);
  for (TypeId t = 0; t < f.schema->num_node_types(); ++t) {
    EXPECT_LE(rates.OutgoingSum(*f.schema, t), 1.0 + 1e-9);
  }
  // A compliant vector is untouched.
  TransferRates ok_rates = datasets::DblpGroundTruthRates(*f.schema, f.types);
  EXPECT_EQ(ok_rates.CapOutgoingSums(*f.schema), 0);
  EXPECT_DOUBLE_EQ(ok_rates.Get(f.types.cites, Direction::kForward), 0.7);
}

TEST(TransferRatesTest, DblpRateVectorOrder) {
  Fixture f;
  TransferRates rates = datasets::DblpGroundTruthRates(*f.schema, f.types);
  const std::vector<double> expected{0.7, 0.0, 0.2, 0.2, 0.3, 0.3, 0.3, 0.1};
  EXPECT_EQ(datasets::DblpRateVector(rates, f.types), expected);
  EXPECT_EQ(datasets::DblpRateVectorNames().size(), expected.size());
}

TEST(TransferRatesTest, ToStringMentionsRoles) {
  Fixture f;
  TransferRates rates = datasets::DblpGroundTruthRates(*f.schema, f.types);
  const std::string s = rates.ToString(*f.schema);
  EXPECT_NE(s.find("cites"), std::string::npos);
  EXPECT_NE(s.find("0.700"), std::string::npos);
}

TEST(TransferRatesTest, DefaultConstructedIsEmpty) {
  TransferRates rates;
  EXPECT_EQ(rates.num_slots(), 0u);
}

}  // namespace
}  // namespace orx::graph
