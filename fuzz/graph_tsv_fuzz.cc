// Fuzz target for the TSV graph interchange parser (io/graph_tsv.h).
// Properties checked beyond "no crash / no sanitizer report":
//  * any accepted input yields a dataset whose authority graph passes
//    the structural validator;
//  * the writer/parser round-trip law holds — re-parsing what
//    WriteGraphTsv emits for an accepted dataset must succeed (the
//    writer escapes nothing, so this catches values the parser admits
//    but the format cannot represent).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "graph/validate.h"
#include "io/graph_tsv.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  auto parsed = orx::io::ParseGraphTsv(text);
  if (!parsed.ok()) return 0;
  if (!orx::graph::ValidateInvariants(parsed->authority(),
                                      parsed->schema().num_rate_slots())
           .ok()) {
    __builtin_trap();
  }
  const std::string rewritten = orx::io::WriteGraphTsv(*parsed);
  if (!orx::io::ParseGraphTsv(rewritten).ok()) __builtin_trap();
  return 0;
}
