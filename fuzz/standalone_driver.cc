// Minimal libFuzzer-compatible runner for toolchains without
// -fsanitize=fuzzer (GCC has no libFuzzer runtime). Linked into every
// harness when fuzz/CMakeLists.txt detects the flag is unsupported, so
// the harnesses themselves stay byte-for-byte libFuzzer harnesses
// (extern "C" LLVMFuzzerTestOneInput) and move to clang unchanged.
//
// Behavior, mirroring the libFuzzer flags the scripts use:
//   driver [corpus dir|file]... [-max_total_time=S] [-runs=N] [-seed=N]
//
// 1. Replay: every corpus file is fed to the harness once (this alone is
//    a regression test — previously-found crashers live in the corpus).
// 2. Mutate: a deterministic xorshift-seeded loop picks a corpus input,
//    applies a handful of structure-blind mutations (bit flips, byte
//    edits, truncation, duplication, cross-seed splices), and feeds the
//    result to the harness until -runs or -max_total_time is exhausted.
//
// A finding is a sanitizer abort / __builtin_trap in the harness, which
// kills the process non-zero; the driver itself always exits 0. Unlike
// libFuzzer there is no coverage feedback — the corpus carries the
// structure, the mutator only perturbs it. Crashing inputs are written
// to crash-<run>.bin in the working directory before the trap fires?
// No — the run is deterministic (fixed -seed), so a crash is reproduced
// by rerunning with the same arguments; the driver prints the run index
// as it goes for bisection.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

// Mutated inputs never grow beyond this (the harnesses also cap what
// they accept; oversized inputs only waste time).
constexpr size_t kMaxInputBytes = 1 << 20;

struct Xorshift {
  uint64_t state;
  explicit Xorshift(uint64_t seed) : state(seed ? seed : 0x9e3779b97f4a7c15ull) {}
  uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  size_t Below(size_t n) { return n == 0 ? 0 : Next() % n; }
};

std::vector<uint8_t> ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void Mutate(std::vector<uint8_t>& input,
            const std::vector<std::vector<uint8_t>>& pool, Xorshift& rng) {
  const size_t edits = 1 + rng.Below(8);
  for (size_t i = 0; i < edits; ++i) {
    switch (rng.Below(6)) {
      case 0:  // flip one bit
        if (!input.empty()) {
          input[rng.Below(input.size())] ^=
              static_cast<uint8_t>(1u << rng.Below(8));
        }
        break;
      case 1:  // overwrite a byte with an interesting value
        if (!input.empty()) {
          static constexpr uint8_t kInteresting[] = {0x00, 0x01, 0x7F, 0x80,
                                                     0xFF, '<',  '>',  '\t',
                                                     '\n', '&'};
          input[rng.Below(input.size())] =
              kInteresting[rng.Below(sizeof(kInteresting))];
        }
        break;
      case 2:  // insert a random byte
        if (input.size() < kMaxInputBytes) {
          input.insert(input.begin() + static_cast<ptrdiff_t>(
                                           rng.Below(input.size() + 1)),
                       static_cast<uint8_t>(rng.Next()));
        }
        break;
      case 3:  // erase a short range (includes truncation at the tail)
        if (!input.empty()) {
          const size_t at = rng.Below(input.size());
          const size_t len = 1 + rng.Below(std::min<size_t>(
                                     input.size() - at, 64));
          input.erase(input.begin() + static_cast<ptrdiff_t>(at),
                      input.begin() + static_cast<ptrdiff_t>(at + len));
        }
        break;
      case 4:  // duplicate a short range in place
        if (!input.empty() && input.size() < kMaxInputBytes) {
          const size_t at = rng.Below(input.size());
          const size_t len = 1 + rng.Below(std::min<size_t>(
                                     input.size() - at, 64));
          std::vector<uint8_t> chunk(input.begin() + static_cast<ptrdiff_t>(at),
                                     input.begin() +
                                         static_cast<ptrdiff_t>(at + len));
          input.insert(input.begin() + static_cast<ptrdiff_t>(at),
                       chunk.begin(), chunk.end());
        }
        break;
      case 5:  // splice a range from another corpus input
        if (!pool.empty() && input.size() < kMaxInputBytes) {
          const std::vector<uint8_t>& other = pool[rng.Below(pool.size())];
          if (!other.empty()) {
            const size_t at = rng.Below(other.size());
            const size_t len = 1 + rng.Below(std::min<size_t>(
                                       other.size() - at, 256));
            input.insert(
                input.begin() + static_cast<ptrdiff_t>(
                                    rng.Below(input.size() + 1)),
                other.begin() + static_cast<ptrdiff_t>(at),
                other.begin() + static_cast<ptrdiff_t>(at + len));
          }
        }
        break;
    }
  }
  if (input.size() > kMaxInputBytes) input.resize(kMaxInputBytes);
}

}  // namespace

int main(int argc, char** argv) {
  double max_total_time = 0.0;  // 0 = no time budget
  long long max_runs = -1;      // -1 = no run budget
  uint64_t seed = 1;
  std::vector<std::filesystem::path> corpus_paths;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "-max_total_time=", 16) == 0) {
      max_total_time = std::atof(arg + 16);
    } else if (std::strncmp(arg, "-runs=", 6) == 0) {
      max_runs = std::atoll(arg + 6);
    } else if (std::strncmp(arg, "-seed=", 6) == 0) {
      seed = static_cast<uint64_t>(std::atoll(arg + 6));
    } else if (arg[0] == '-') {
      // Unknown libFuzzer flags (e.g. -artifact_prefix=) are accepted
      // and ignored so scripts written for libFuzzer keep working.
      std::fprintf(stderr, "standalone driver: ignoring flag %s\n", arg);
    } else {
      corpus_paths.emplace_back(arg);
    }
  }

  // Gather the corpus: files directly, directories one level deep.
  std::vector<std::vector<uint8_t>> pool;
  for (const auto& path : corpus_paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry :
           std::filesystem::directory_iterator(path, ec)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());  // deterministic replay order
      for (const auto& file : files) pool.push_back(ReadFile(file));
    } else if (std::filesystem::is_regular_file(path, ec)) {
      pool.push_back(ReadFile(path));
    } else {
      std::fprintf(stderr, "standalone driver: no such corpus path: %s\n",
                   path.string().c_str());
      return 2;
    }
  }

  std::printf("standalone driver: replaying %zu corpus inputs\n",
              pool.size());
  std::fflush(stdout);
  for (const std::vector<uint8_t>& input : pool) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }

  if (max_total_time <= 0.0 && max_runs < 0) {
    std::printf("standalone driver: replay only (no -max_total_time/-runs)"
                "\n");
    return 0;
  }

  Xorshift rng(seed);
  const auto start = std::chrono::steady_clock::now();
  long long runs = 0;
  std::vector<uint8_t> input;
  while (true) {
    if (max_runs >= 0 && runs >= max_runs) break;
    if (max_total_time > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (elapsed >= max_total_time) break;
    }
    if (pool.empty()) {
      input.clear();
      const size_t len = rng.Below(256);
      for (size_t i = 0; i < len; ++i) {
        input.push_back(static_cast<uint8_t>(rng.Next()));
      }
    } else {
      input = pool[rng.Below(pool.size())];
    }
    Mutate(input, pool, rng);
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++runs;
    if (runs % 4096 == 0) {
      std::printf("standalone driver: %lld runs\n", runs);
      std::fflush(stdout);
    }
  }
  std::printf("standalone driver: done, %lld mutation runs (seed %llu)\n",
              runs, static_cast<unsigned long long>(seed));
  return 0;
}
