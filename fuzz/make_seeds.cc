// Regenerates the binary seed corpora under fuzz/corpus/: the "ORXD"
// dataset seed and the "ORXC" rank-cache seed are opaque bytes, so they
// are produced by the real serializers from the Figure 1 dataset rather
// than hand-maintained. Usage:
//
//   make_fuzz_seeds <corpus-root>   # e.g. make_fuzz_seeds fuzz/corpus
//
// writes <root>/dataset_io/figure1.orxd and
// <root>/rank_cache/figure1.orxc. Rerun after a format version bump and
// commit the refreshed files (the text seeds — XML, TSV, queries — are
// edited directly).

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/check.h"
#include "core/rank_cache.h"
#include "datasets/figure1.h"
#include "graph/transfer_rates.h"
#include "io/dataset_io.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  std::filesystem::create_directories(root / "dataset_io");
  std::filesystem::create_directories(root / "rank_cache");

  orx::datasets::Figure1Dataset fig = orx::datasets::MakeFigure1Dataset();
  ORX_CHECK_OK(orx::io::SaveDataset(fig.dataset,
                                    (root / "dataset_io" / "figure1.orxd")
                                        .string()));

  const orx::graph::TransferRates rates =
      orx::datasets::DblpGroundTruthRates(fig.dataset.schema(), fig.types);
  orx::core::RankCache cache = orx::core::RankCache::BuildForTerms(
      fig.dataset.authority(), fig.dataset.corpus(), rates,
      {"olap", "data", "cube"}, orx::core::RankCache::Options{});
  ORX_CHECK_OK(cache.Save((root / "rank_cache" / "figure1.orxc").string()));

  std::printf("seeds written under %s\n", root.string().c_str());
  return 0;
}
