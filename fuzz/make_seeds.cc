// Regenerates the binary seed corpora under fuzz/corpus/: the "ORXD"
// dataset seed and the "ORXC" rank-cache seed are opaque bytes, so they
// are produced by the real serializers from the Figure 1 dataset rather
// than hand-maintained. Usage:
//
//   make_fuzz_seeds <corpus-root>   # e.g. make_fuzz_seeds fuzz/corpus
//
// writes <root>/dataset_io/figure1.orxd and
// <root>/rank_cache/figure1.orxc. Rerun after a format version bump and
// commit the refreshed files (the text seeds — XML, TSV, queries — are
// edited directly).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/check.h"
#include "core/rank_cache.h"
#include "datasets/figure1.h"
#include "graph/transfer_rates.h"
#include "io/dataset_io.h"
#include "io/snapshot_io.h"
#include "net/frame.h"

namespace {

void WriteSeed(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ORX_CHECK_MSG(out.good(), "cannot open seed file");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ORX_CHECK_MSG(out.good(), "seed write failed");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  std::filesystem::create_directories(root / "dataset_io");
  std::filesystem::create_directories(root / "rank_cache");

  orx::datasets::Figure1Dataset fig = orx::datasets::MakeFigure1Dataset();
  ORX_CHECK_OK(orx::io::SaveDataset(fig.dataset,
                                    (root / "dataset_io" / "figure1.orxd")
                                        .string()));

  const orx::graph::TransferRates rates =
      orx::datasets::DblpGroundTruthRates(fig.dataset.schema(), fig.types);
  orx::core::RankCache cache = orx::core::RankCache::BuildForTerms(
      fig.dataset.authority(), fig.dataset.corpus(), rates,
      {"olap", "data", "cube"}, orx::core::RankCache::Options{});
  ORX_CHECK_OK(cache.Save((root / "rank_cache" / "figure1.orxc").string()));

  // Mmap-container seeds ("ORXD2"/"ORXC2"): valid containers from the
  // same dataset, so the container fuzzer's mutations start from inputs
  // that pass every structural check.
  std::filesystem::create_directories(root / "container");
  ORX_CHECK_OK(orx::io::WriteDatasetContainer(
      fig.dataset, rates, (root / "container" / "figure1.orxd2").string()));
  ORX_CHECK_OK(orx::io::WriteRankCacheContainer(
      cache, (root / "container" / "figure1.orxc2").string()));

  // ORXN wire-protocol seeds: one representative frame per op so the
  // net_frame fuzzer starts from structurally valid inputs.
  std::filesystem::create_directories(root / "net_frame");
  {
    using namespace orx::net;
    WriteSeed(root / "net_frame" / "ping.bin",
              EncodeFrame(Op::kPing, 1, std::string()));
    WriteSeed(root / "net_frame" / "search_request.bin",
              EncodeFrame(Op::kSearch, 2,
                          EncodeSearchRequest({"data cube olap", 10, 0.5})));
    SearchResponse search;
    search.results.push_back({42, 0.125, "paper", "Data Cube"});
    search.results.push_back({7, 0.0625, "author", "Gray"});
    search.iterations = 12;
    search.snapshot_version = 1;
    WriteSeed(root / "net_frame" / "search_response.bin",
              EncodeFrame(Op::kSearch, 2, EncodeSearchResponse(search)));
    WriteSeed(root / "net_frame" / "explain_request.bin",
              EncodeFrame(Op::kExplain, 3,
                          EncodeExplainRequest({"data cube", 2})));
    WriteSeed(root / "net_frame" / "reformulate_request.bin",
              EncodeFrame(Op::kReformulate, 4,
                          EncodeReformulateRequest({"data", {1, 3}})));
    ReformulateResponse reform;
    reform.reformulated_query = "data mining:0.5";
    reform.top_expansion_terms = {{"mining", 0.5}};
    WriteSeed(root / "net_frame" / "reformulate_response.bin",
              EncodeFrame(Op::kReformulate, 4,
                          EncodeReformulateResponse(reform)));
    WriteSeed(root / "net_frame" / "validate_response.bin",
              EncodeFrame(Op::kValidate, 5,
                          EncodeValidateResponse({true, "snapshot OK"})));
    MetricsResponse metrics;
    metrics.serve.submitted = 100;
    metrics.serve.completed = 99;
    metrics.frames_received = 123;
    WriteSeed(root / "net_frame" / "metrics_response.bin",
              EncodeFrame(Op::kMetrics, 6, EncodeMetricsResponse(metrics)));
    WriteSeed(root / "net_frame" / "error_response.bin",
              EncodeErrorFrame(7, orx::UnavailableError("queue full")));

    // Mutation-path seeds: the same valid batch feeds both fuzzers —
    // framed for net_frame, bare payload for the mutation harness.
    std::filesystem::create_directories(root / "mutation");
    MutateRequest mutate;
    mutate.batch.mutations.push_back(orx::mutate::Mutation::AddNode(
        fig.types.paper, {{"title", "Fuzzed Cube Paper"}}));
    mutate.batch.mutations.push_back(orx::mutate::Mutation::AddEdge(
        static_cast<orx::graph::NodeId>(fig.dataset.data().num_nodes()),
        fig.v7_data_cube, fig.types.cites));
    mutate.batch.mutations.push_back(orx::mutate::Mutation::UpdateNodeText(
        fig.v1_index_selection, {{"title", "Index Selection rev"}}));
    mutate.batch.mutations.push_back(orx::mutate::Mutation::RemoveEdge(
        fig.v4_range_queries, fig.v5_modeling, fig.types.cites));
    const std::string mutate_payload = EncodeMutateRequest(mutate);
    WriteSeed(root / "net_frame" / "mutate_request.bin",
              EncodeFrame(Op::kMutate, 8, mutate_payload));
    WriteSeed(root / "net_frame" / "mutate_response.bin",
              EncodeFrame(Op::kMutate, 8, EncodeMutateResponse({41, 3})));
    WriteSeed(root / "mutation" / "mutate_request.bin", mutate_payload);
    WriteSeed(root / "mutation" / "mutate_response.bin",
              EncodeMutateResponse({41, 3}));
  }

  std::printf("seeds written under %s\n", root.string().c_str());
  return 0;
}
