// Regenerates the binary seed corpora under fuzz/corpus/: the "ORXD"
// dataset seed and the "ORXC" rank-cache seed are opaque bytes, so they
// are produced by the real serializers from the Figure 1 dataset rather
// than hand-maintained. Usage:
//
//   make_fuzz_seeds <corpus-root>   # e.g. make_fuzz_seeds fuzz/corpus
//
// writes <root>/dataset_io/figure1.orxd and
// <root>/rank_cache/figure1.orxc. Rerun after a format version bump and
// commit the refreshed files (the text seeds — XML, TSV, queries — are
// edited directly).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/rank_cache.h"
#include "datasets/dblp_generator.h"
#include "datasets/figure1.h"
#include "graph/transfer_rates.h"
#include "io/dataset_io.h"
#include "io/snapshot_io.h"
#include "net/frame.h"

namespace {

void WriteSeed(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ORX_CHECK_MSG(out.good(), "cannot open seed file");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ORX_CHECK_MSG(out.good(), "seed write failed");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  std::filesystem::create_directories(root / "dataset_io");
  std::filesystem::create_directories(root / "rank_cache");

  orx::datasets::Figure1Dataset fig = orx::datasets::MakeFigure1Dataset();
  ORX_CHECK_OK(orx::io::SaveDataset(fig.dataset,
                                    (root / "dataset_io" / "figure1.orxd")
                                        .string()));

  const orx::graph::TransferRates rates =
      orx::datasets::DblpGroundTruthRates(fig.dataset.schema(), fig.types);
  orx::core::RankCache cache = orx::core::RankCache::BuildForTerms(
      fig.dataset.authority(), fig.dataset.corpus(), rates,
      {"olap", "data", "cube"}, orx::core::RankCache::Options{});
  ORX_CHECK_OK(cache.Save((root / "rank_cache" / "figure1.orxc").string()));

  // Mmap-container seeds ("ORXD2"/"ORXC2"): valid containers from the
  // same dataset, so the container fuzzer's mutations start from inputs
  // that pass every structural check.
  std::filesystem::create_directories(root / "container");
  ORX_CHECK_OK(orx::io::WriteDatasetContainer(
      fig.dataset, rates, (root / "container" / "figure1.orxd2").string()));
  ORX_CHECK_OK(orx::io::WriteRankCacheContainer(
      cache, (root / "container" / "figure1.orxc2").string()));

  // Compressed rank-cache seeds: a Compress() over a generated DBLP so
  // the seed actually carries quantized-tail sections (head + u16 tail +
  // drop bound), giving the fuzzers a foothold on the compressed decode
  // path (hostile quantization scales, tail-mass overflow) in both the
  // stream and the container format. The Figure 1 graph is too small for
  // compression to ever win — the fixed section overhead exceeds the
  // dense vectors — so this seed comes from a 200-paper synthetic DBLP.
  const orx::datasets::DblpDataset gen = orx::datasets::GenerateDblp(
      orx::datasets::DblpGeneratorConfig::Tiny(200, 1));
  const orx::graph::TransferRates gen_rates =
      orx::datasets::DblpGroundTruthRates(gen.dataset.schema(), gen.types);
  std::vector<std::pair<uint32_t, std::string>> by_df;
  const orx::text::Corpus& gen_corpus = gen.dataset.corpus();
  for (orx::text::TermId t = 0; t < gen_corpus.vocab_size(); ++t) {
    if (gen_corpus.Df(t) >= 3) {
      by_df.emplace_back(gen_corpus.Df(t), gen_corpus.TermString(t));
    }
  }
  std::sort(by_df.begin(), by_df.end());
  ORX_CHECK_MSG(by_df.size() >= 3, "generated corpus has too few terms");
  const std::vector<std::string> seed_terms = {
      by_df.back().second, by_df[by_df.size() / 2].second,
      by_df.front().second};
  orx::core::RankCache compressed = orx::core::RankCache::BuildForTerms(
      gen.dataset.authority(), gen_corpus, gen_rates, seed_terms,
      orx::core::RankCache::Options{});
  orx::core::RankCache::CompressionOptions squeeze;
  squeeze.head = 2;
  squeeze.drop_threshold = 1e-3;
  squeeze.min_ratio = 1.0;
  const orx::core::RankCache::CompressionStats squeezed =
      compressed.Compress(squeeze);
  ORX_CHECK_MSG(squeezed.terms_compressed > 0,
                "compressed seed carries no compressed terms");
  ORX_CHECK_OK(compressed.Save(
      (root / "rank_cache" / "dblp_compressed.orxc").string()));
  ORX_CHECK_OK(orx::io::WriteRankCacheContainer(
      compressed,
      (root / "container" / "dblp_compressed.orxc2").string()));

  // ORXN wire-protocol seeds: one representative frame per op so the
  // net_frame fuzzer starts from structurally valid inputs.
  std::filesystem::create_directories(root / "net_frame");
  {
    using namespace orx::net;
    WriteSeed(root / "net_frame" / "ping.bin",
              EncodeFrame(Op::kPing, 1, std::string()));
    WriteSeed(root / "net_frame" / "search_request.bin",
              EncodeFrame(Op::kSearch, 2,
                          EncodeSearchRequest({"data cube olap", 10, 0.5})));
    // Tier-bearing request: the trailing tier byte set to a non-default
    // value so mutations explore the tier validation path (values > 3
    // must decode as kDataLoss, not reach the handler).
    SearchRequest tiered{"data cube olap", 10, 0.5};
    tiered.tier = 2;  // approximate
    WriteSeed(root / "net_frame" / "search_request_tier.bin",
              EncodeFrame(Op::kSearch, 9, EncodeSearchRequest(tiered)));
    SearchResponse search;
    search.results.push_back({42, 0.125, "paper", "Data Cube"});
    search.results.push_back({7, 0.0625, "author", "Gray"});
    search.iterations = 12;
    search.snapshot_version = 1;
    search.tier_used = 2;  // approximate, with a live error bound
    search.error_bound = 1.5e-6;
    search.certified = true;
    search.escalated = false;
    WriteSeed(root / "net_frame" / "search_response.bin",
              EncodeFrame(Op::kSearch, 2, EncodeSearchResponse(search)));
    WriteSeed(root / "net_frame" / "explain_request.bin",
              EncodeFrame(Op::kExplain, 3,
                          EncodeExplainRequest({"data cube", 2})));
    WriteSeed(root / "net_frame" / "reformulate_request.bin",
              EncodeFrame(Op::kReformulate, 4,
                          EncodeReformulateRequest({"data", {1, 3}})));
    ReformulateResponse reform;
    reform.reformulated_query = "data mining:0.5";
    reform.top_expansion_terms = {{"mining", 0.5}};
    WriteSeed(root / "net_frame" / "reformulate_response.bin",
              EncodeFrame(Op::kReformulate, 4,
                          EncodeReformulateResponse(reform)));
    WriteSeed(root / "net_frame" / "validate_response.bin",
              EncodeFrame(Op::kValidate, 5,
                          EncodeValidateResponse({true, "snapshot OK"})));
    MetricsResponse metrics;
    metrics.serve.submitted = 100;
    metrics.serve.completed = 99;
    metrics.serve.tier_exact = 60;
    metrics.serve.tier_approximate = 30;
    metrics.serve.tier_cached = 9;
    metrics.serve.escalations = 4;
    metrics.serve.tier_approximate_p50 = 0.002;
    metrics.frames_received = 123;
    WriteSeed(root / "net_frame" / "metrics_response.bin",
              EncodeFrame(Op::kMetrics, 6, EncodeMetricsResponse(metrics)));
    WriteSeed(root / "net_frame" / "error_response.bin",
              EncodeErrorFrame(7, orx::UnavailableError("queue full")));

    // Mutation-path seeds: the same valid batch feeds both fuzzers —
    // framed for net_frame, bare payload for the mutation harness.
    std::filesystem::create_directories(root / "mutation");
    MutateRequest mutate;
    mutate.batch.mutations.push_back(orx::mutate::Mutation::AddNode(
        fig.types.paper, {{"title", "Fuzzed Cube Paper"}}));
    mutate.batch.mutations.push_back(orx::mutate::Mutation::AddEdge(
        static_cast<orx::graph::NodeId>(fig.dataset.data().num_nodes()),
        fig.v7_data_cube, fig.types.cites));
    mutate.batch.mutations.push_back(orx::mutate::Mutation::UpdateNodeText(
        fig.v1_index_selection, {{"title", "Index Selection rev"}}));
    mutate.batch.mutations.push_back(orx::mutate::Mutation::RemoveEdge(
        fig.v4_range_queries, fig.v5_modeling, fig.types.cites));
    const std::string mutate_payload = EncodeMutateRequest(mutate);
    WriteSeed(root / "net_frame" / "mutate_request.bin",
              EncodeFrame(Op::kMutate, 8, mutate_payload));
    WriteSeed(root / "net_frame" / "mutate_response.bin",
              EncodeFrame(Op::kMutate, 8, EncodeMutateResponse({41, 3})));
    WriteSeed(root / "mutation" / "mutate_request.bin", mutate_payload);
    WriteSeed(root / "mutation" / "mutate_response.bin",
              EncodeMutateResponse({41, 3}));
  }

  std::printf("seeds written under %s\n", root.string().c_str());
  return 0;
}
