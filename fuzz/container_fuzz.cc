// Fuzz target for the mmap container loaders (io/container.h +
// io/snapshot_io.h, "ORXD2"/"ORXC2" formats). These face arbitrary
// on-disk bytes through OpenMappedDataset / OpenMappedRankCache, and the
// attack surface is different from the streamed deserializers: hostile
// section offsets/sizes/counts must be rejected by bounds arithmetic
// before any typed span is formed, because a bad span is an out-of-bounds
// *read through the mapping*, not a short stream. The harness materializes
// the input as a memfd (the loaders only speak paths) and asserts:
//  * no crash / sanitizer report on any input;
//  * anything the deep-validating open accepts also passes the structural
//    validator cross-checks (trap otherwise);
//  * the fast path (deep_validate=false) accepts a superset of what the
//    deep path accepts — deep validation only ever tightens.

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/status.h"
#include "core/rank_cache.h"
#include "io/container.h"
#include "io/snapshot_io.h"
#include "text/query.h"

#ifdef __linux__
#include <sys/mman.h>
#endif

namespace {

/// Writes the input where MmapFile::Open can reach it. memfd keeps the
/// whole round-trip in memory; the /tmp fallback covers kernels without
/// memfd_create.
std::string MaterializeInput(const uint8_t* data, size_t size) {
#ifdef __linux__
  const int fd = memfd_create("container_fuzz", 0);
  if (fd >= 0) {
    size_t written = 0;
    while (written < size) {
      const ssize_t n = write(fd, data + written, size - written);
      if (n <= 0) break;
      written += static_cast<size_t>(n);
    }
    if (written == size) {
      return "/proc/self/fd/" + std::to_string(fd);
    }
    close(fd);
  }
#endif
  std::string path =
      "/tmp/orx_container_fuzz_" + std::to_string(getpid()) + ".bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return std::string();
  std::fwrite(data, 1, size, f);
  std::fclose(f);
  return path;
}

void ReleaseInput(const std::string& path) {
  if (path.rfind("/proc/self/fd/", 0) == 0) {
    close(std::atoi(path.c_str() + sizeof("/proc/self/fd/") - 1));
  } else if (!path.empty()) {
    std::remove(path.c_str());
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (4u << 20)) return 0;
  const std::string path = MaterializeInput(data, size);
  if (path.empty()) return 0;

  // Structural layer alone: hostile TOC/section arithmetic, hash checks.
  for (const auto* magic : {&orx::io::kDatasetMagic,
                            &orx::io::kRankCacheMagic}) {
    auto container = orx::io::MappedContainer::Open(path, *magic);
    if (container.ok()) orx::IgnoreError(container->VerifyHashes());
  }

  orx::io::MappedDatasetOptions fast;
  fast.deep_validate = false;
  fast.advise = false;

  if (size >= 5 && std::memcmp(data, "ORXD2", 5) == 0) {
    auto deep = orx::io::OpenMappedDataset(path);
    auto shallow = orx::io::OpenMappedDataset(path, fast);
    // Deep validation only tightens: it must never accept a container
    // the shape-check-only path rejects.
    if (deep.ok() && !shallow.ok()) __builtin_trap();
    if (deep.ok()) {
      const auto& d = **deep;
      if (d.data().num_nodes() != d.authority().num_nodes()) {
        __builtin_trap();
      }
      if (d.layout() == nullptr) __builtin_trap();
    }
  } else if (size >= 5 && std::memcmp(data, "ORXC2", 5) == 0) {
    auto deep = orx::io::OpenMappedRankCache(path);
    auto shallow = orx::io::OpenMappedRankCache(path, fast);
    if (deep.ok() && !shallow.ok()) __builtin_trap();
    if (shallow.ok()) {
      // Value-level garbage (NaN scores) is reachable on the fast path;
      // Query must degrade to a Status, never crash.
      orx::text::QueryVector query(orx::text::ParseQuery("olap data cube"));
      orx::IgnoreError(shallow->Query(query));
    }
  }

  ReleaseInput(path);
  return 0;
}
