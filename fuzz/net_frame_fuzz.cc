// Fuzz target for the ORXN wire protocol (net/frame.h) — the surface
// every network peer crosses. The input is treated as one frame: header
// bytes first, remainder as payload. Properties trapped on:
//  * DecodeHeader never accepts a payload_size above kMaxPayload;
//  * every payload decoder either round-trips or fails kDataLoss —
//    no crash, no sanitizer report, no oversized allocation (hostile
//    counts are bounded before any reserve);
//  * a decoded value re-encodes and re-decodes to an equal value
//    (decode/encode/decode fixpoint, same as the dataset deserializer).

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/frame.h"

namespace {

using orx::net::DecodeErrorResponse;
using orx::net::DecodeExplainRequest;
using orx::net::DecodeExplainResponse;
using orx::net::DecodeMetricsResponse;
using orx::net::DecodeReformulateRequest;
using orx::net::DecodeReformulateResponse;
using orx::net::DecodeSearchRequest;
using orx::net::DecodeSearchResponse;
using orx::net::DecodeValidateResponse;

/// Re-encoding a successfully decoded payload must produce bytes that
/// decode to the same value (checked via second-round byte equality).
template <typename Decode, typename Encode>
void CheckFixpoint(const std::string& payload, Decode decode,
                   Encode encode) {
  auto first = decode(payload);
  if (!first.ok()) return;
  const std::string reencoded = encode(*first);
  auto second = decode(reencoded);
  if (!second.ok()) __builtin_trap();
  if (encode(*second) != reencoded) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;
  const std::string input(reinterpret_cast<const char*>(data), size);

  if (input.size() >= orx::net::kHeaderSize) {
    auto header = orx::net::DecodeHeader(input.data());
    if (header.ok() && header->payload_size > orx::net::kMaxPayload) {
      __builtin_trap();
    }
  }

  // Run every payload decoder over the bytes after the header (or the
  // whole input when it is shorter than a header) — each must be total.
  const std::string payload = input.size() > orx::net::kHeaderSize
                                  ? input.substr(orx::net::kHeaderSize)
                                  : input;
  CheckFixpoint(payload, DecodeSearchRequest,
                orx::net::EncodeSearchRequest);
  CheckFixpoint(payload, DecodeSearchResponse,
                orx::net::EncodeSearchResponse);
  CheckFixpoint(payload, DecodeExplainRequest,
                orx::net::EncodeExplainRequest);
  CheckFixpoint(payload, DecodeExplainResponse,
                orx::net::EncodeExplainResponse);
  CheckFixpoint(payload, DecodeReformulateRequest,
                orx::net::EncodeReformulateRequest);
  CheckFixpoint(payload, DecodeReformulateResponse,
                orx::net::EncodeReformulateResponse);
  CheckFixpoint(payload, DecodeValidateResponse,
                orx::net::EncodeValidateResponse);
  CheckFixpoint(payload, DecodeMetricsResponse,
                orx::net::EncodeMetricsResponse);
  orx::IgnoreError(DecodeErrorResponse(payload).status());
  return 0;
}
