// Fuzz target for the mutation ingest path — the bytes a write client
// sends cross DecodeMutateRequest, static validation, the delta log, and
// the atomic batch apply, in that order, and every stage must be total
// on hostile input. Properties trapped on:
//  * DecodeMutateRequest/DecodeMutateResponse never crash and never make
//    an oversized allocation, and a successful decode re-encodes to a
//    byte-stable fixpoint;
//  * a batch that passes ValidateStatic and DeltaLog::Append either
//    applies atomically or leaves the graph byte-for-byte untouched —
//    a failed apply must not leak partial edges or nodes;
//  * after a successful apply the graph is still structurally sound
//    (every edge endpoint in range, every reported new node allocated)
//    and the reported effects are consistent with the batch.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "datasets/figure1.h"
#include "graph/data_graph.h"
#include "mutate/delta_log.h"
#include "mutate/mutation.h"
#include "net/frame.h"

namespace {

/// Re-encoding a successfully decoded payload must produce bytes that
/// decode to the same value (same contract as net_frame_fuzz).
template <typename Decode, typename Encode>
void CheckFixpoint(const std::string& payload, Decode decode,
                   Encode encode) {
  auto first = decode(payload);
  if (!first.ok()) return;
  const std::string reencoded = encode(*first);
  auto second = decode(reencoded);
  if (!second.ok()) __builtin_trap();
  if (encode(*second) != reencoded) __builtin_trap();
}

bool GraphsEqual(const orx::graph::DataGraph& a,
                 const orx::graph::DataGraph& b) {
  if (a.num_nodes() != b.num_nodes()) return false;
  if (a.edges().size() != b.edges().size()) return false;
  for (size_t i = 0; i < a.edges().size(); ++i) {
    const orx::graph::DataEdge& ea = a.edges()[i];
    const orx::graph::DataEdge& eb = b.edges()[i];
    if (ea.from != eb.from || ea.to != eb.to || ea.type != eb.type) {
      return false;
    }
  }
  for (orx::graph::NodeId v = 0;
       v < static_cast<orx::graph::NodeId>(a.num_nodes()); ++v) {
    if (a.NodeType(v) != b.NodeType(v) || a.Text(v) != b.Text(v)) {
      return false;
    }
  }
  return true;
}

void CheckStructure(const orx::graph::DataGraph& graph,
                    const orx::mutate::ApplyEffects& effects) {
  const auto num_nodes = static_cast<orx::graph::NodeId>(graph.num_nodes());
  for (const orx::graph::DataEdge& e : graph.edges()) {
    if (e.from >= num_nodes || e.to >= num_nodes) __builtin_trap();
  }
  for (const orx::graph::NodeId v : effects.new_nodes) {
    if (v >= num_nodes) __builtin_trap();
  }
  for (const orx::graph::NodeId v : effects.edge_endpoints) {
    if (v >= num_nodes) __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;
  const std::string input(reinterpret_cast<const char*>(data), size);

  CheckFixpoint(input, orx::net::DecodeMutateRequest,
                orx::net::EncodeMutateRequest);
  CheckFixpoint(input, orx::net::DecodeMutateResponse,
                orx::net::EncodeMutateResponse);

  auto request = orx::net::DecodeMutateRequest(input);
  if (!request.ok()) return 0;

  // One-time pristine world; each run mutates a private copy of it.
  static const orx::datasets::Figure1Dataset* fig =
      new orx::datasets::Figure1Dataset(orx::datasets::MakeFigure1Dataset());
  const orx::graph::SchemaGraph& schema = fig->dataset.schema();

  // The server's exact admission order: static validation via the log,
  // then apply. The decoded batch is attacker-controlled but structurally
  // parseable, exactly the bytes an authenticated hostile client could
  // land in the log.
  orx::mutate::DeltaLog::Options log_options;
  log_options.capacity = 4;
  orx::mutate::DeltaLog log(schema, log_options);
  auto sequence = log.Append(request->batch);
  if (!sequence.ok()) {
    if (orx::mutate::ValidateStatic(request->batch, schema).ok()) {
      __builtin_trap();  // log rejected a statically valid batch
    }
    return 0;
  }

  std::vector<orx::mutate::DeltaLog::PendingBatch> drained = log.Drain(4);
  if (drained.size() != 1 || drained[0].sequence != *sequence) {
    __builtin_trap();
  }

  orx::graph::DataGraph graph = fig->dataset.data();
  const orx::graph::DataGraph before = graph;
  orx::mutate::ApplyEffects effects;
  const orx::Status applied =
      orx::mutate::ApplyBatch(graph, drained[0].batch, &effects);
  if (applied.ok()) {
    CheckStructure(graph, effects);
    bool has_add_node = false;
    for (const orx::mutate::Mutation& m : drained[0].batch.mutations) {
      has_add_node |= m.kind == orx::mutate::MutationKind::kAddNode;
    }
    if (has_add_node != !effects.new_nodes.empty()) __builtin_trap();
  } else if (!GraphsEqual(graph, before)) {
    __builtin_trap();  // failed apply leaked a partial mutation
  }
  return 0;
}
