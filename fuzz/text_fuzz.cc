// Fuzz target for the text pipeline (text/tokenizer.h, text/query.h) —
// the surface every user-typed query crosses. Properties trapped on:
//  * every token is non-empty, lowercase ASCII alphanumeric (the
//    documented contract the corpus index relies on);
//  * indexed tokens are never single characters;
//  * NormalizeTerm is idempotent;
//  * ParseQuery on arbitrary bytes produces only normalized terms, and
//    the QueryVector built from it answers weight lookups for each.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "text/query.h"
#include "text/tokenizer.h"

namespace {

bool IsIndexableToken(const std::string& token) {
  if (token.empty()) return false;
  for (const char c : token) {
    const bool lower_alnum =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
    if (!lower_alnum) return false;
  }
  return true;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  for (const std::string& token : orx::text::Tokenize(text)) {
    if (!IsIndexableToken(token)) __builtin_trap();
  }
  for (const std::string& token : orx::text::TokenizeForIndex(text)) {
    if (!IsIndexableToken(token) || token.size() < 2) __builtin_trap();
  }

  const std::string normalized = orx::text::NormalizeTerm(text);
  if (orx::text::NormalizeTerm(normalized) != normalized) __builtin_trap();

  const orx::text::Query parsed = orx::text::ParseQuery(text);
  for (const std::string& term : parsed) {
    if (!IsIndexableToken(term)) __builtin_trap();
  }
  orx::text::QueryVector query(parsed);
  for (const std::string& term : parsed) {
    if (query.Weight(term) <= 0.0) __builtin_trap();
  }
  if (!parsed.empty() && query.ToString().empty()) __builtin_trap();
  return 0;
}
