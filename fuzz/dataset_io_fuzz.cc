// Fuzz target for the binary dataset deserializer (io/dataset_io.h,
// "ORXD" format). The deserializer faces arbitrary on-disk bytes, so it
// must reject anything malformed with a Status — never crash, never
// allocate unboundedly from a hostile length field (the harness runs
// under ASan+UBSan, which turn both into hard failures). Any stream it
// accepts must finalize into a dataset whose authority graph passes the
// structural validator.

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "graph/validate.h"
#include "io/dataset_io.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;
  std::stringstream stream(
      std::string(reinterpret_cast<const char*>(data), size));
  auto dataset = orx::io::DeserializeDataset(stream);
  if (!dataset.ok()) return 0;
  if (!orx::graph::ValidateInvariants(dataset->authority(),
                                      dataset->schema().num_rate_slots())
           .ok()) {
    __builtin_trap();
  }
  return 0;
}
