// Fuzz target for the DBLP XML shredder (datasets/dblp_xml.h), the
// parser that ingests the real downloaded DBLP dump — the least trusted
// input surface in the system. Property checked on top of
// "no crash / no sanitizer report": any input the parser accepts must
// produce a dataset whose authority graph passes the deep structural
// validator; a violation means the parser built corrupt state instead
// of rejecting the input, and trips a trap the driver reports.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "datasets/dblp_xml.h"
#include "graph/validate.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;
  const std::string_view xml(reinterpret_cast<const char*>(data), size);
  auto parsed = orx::datasets::ParseDblpXml(xml);
  if (!parsed.ok()) return 0;
  const auto& dataset = parsed->dataset;
  if (!orx::graph::ValidateInvariants(dataset.authority(),
                                      dataset.schema().num_rate_slots())
           .ok()) {
    __builtin_trap();
  }
  return 0;
}
