// Fuzz target for the rank-cache deserializer (core/rank_cache.h,
// "ORXC" format). Beyond "no crash / no sanitizer report":
//  * Deserialize's structural promises are asserted with a trap — every
//    accepted entry has a non-empty unique term and exactly num_nodes
//    scores (a violation would make Query read out of bounds);
//  * value-level state (masses/scores may be NaN/Inf from hostile float
//    bytes) is exercised through ValidateInvariants and Query, which
//    must degrade to a Status, never crash.

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "common/status.h"
#include "core/rank_cache.h"
#include "text/query.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;
  std::stringstream stream(
      std::string(reinterpret_cast<const char*>(data), size));
  auto cache = orx::core::RankCache::Deserialize(stream);
  if (!cache.ok()) return 0;
  orx::Status valid = cache->ValidateInvariants();
  // Structural violations are deserializer bugs; value-level ones
  // ("mass"/"score" out of range) are reachable from hostile bytes and
  // merely exercised.
  if (!valid.ok() && valid.message().find("scores") != std::string::npos) {
    __builtin_trap();
  }
  if (!valid.ok() && valid.message().find("empty term") != std::string::npos) {
    __builtin_trap();
  }
  orx::text::QueryVector query(orx::text::ParseQuery("olap data cube"));
  orx::IgnoreError(cache->Query(query));
  return 0;
}
